//! The workspace item graph: every file parsed, every cross-crate
//! reference resolved to a short crate name, every public item indexed
//! against the identifiers the rest of the workspace mentions.
//!
//! Two rule passes live directly on the graph:
//!
//! | rule | severity | what it catches |
//! |------|----------|-----------------|
//! | `L1` | deny | a crate referencing a workspace crate the `lint.toml` layering contract does not grant it |
//! | `P1` | warn | a `pub` item whose name no other file in the workspace (tests included) mentions |
//!
//! `E1` (error flow) and `K1` (lock order) also consume the graph; see
//! [`crate::error_flow`] and [`crate::locks`].

use crate::config::Config;
use crate::findings::{Finding, Severity};
use crate::lexer::{lex, TokenKind};
use crate::parser::{parse_file, Item, ItemKind, ParsedFile};
use crate::rules::FileClass;
use std::collections::{BTreeMap, BTreeSet};

/// One source file with everything the graph passes need.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Parsed item tree.
    pub parsed: ParsedFile,
    /// Short crate name: the directory under `crates/`, or `aipan` for
    /// the umbrella package rooted at `src/`/`tests/`/`examples/`.
    pub crate_name: String,
    /// Target classification (library / test / binary), as for the token
    /// rules.
    pub class: FileClass,
    /// Every identifier the file mentions — code idents plus words inside
    /// comments (so doc examples keep their subjects alive for `P1`).
    pub mentions: BTreeSet<String>,
    /// Workspace-crate references: `(short name, line, col)` for every
    /// `aipan_*` identifier in code.
    pub crate_refs: Vec<(String, u32, u32)>,
    /// Source lines, for finding snippets.
    pub lines: Vec<String>,
}

impl AnalyzedFile {
    /// Trimmed source line for a 1-based line number.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// The whole workspace, parsed and indexed.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All analyzed files, in the (sorted) order they were supplied.
    pub files: Vec<AnalyzedFile>,
}

/// Short crate name for a workspace-relative path.
pub(crate) fn crate_of(rel_path: &str) -> String {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("aipan")
        .to_string()
}

impl Workspace {
    /// Parse and index a set of `(rel_path, source)` files.
    pub fn build(files: &[(String, String)]) -> Workspace {
        let analyzed = files
            .iter()
            .map(|(rel_path, src)| {
                let parsed = parse_file(rel_path, src);
                let mut mentions = BTreeSet::new();
                let mut crate_refs = Vec::new();
                for tok in lex(src) {
                    match tok.kind {
                        TokenKind::Ident => {
                            let name = tok.text.strip_prefix("r#").unwrap_or(tok.text);
                            mentions.insert(name.to_string());
                            if let Some(short) = name.strip_prefix("aipan_") {
                                crate_refs.push((short.to_string(), tok.line, tok.col));
                            }
                        }
                        TokenKind::LineComment | TokenKind::BlockComment => {
                            for word in tok
                                .text
                                .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                            {
                                if !word.is_empty() {
                                    mentions.insert(word.to_string());
                                }
                            }
                        }
                        _ => {}
                    }
                }
                AnalyzedFile {
                    crate_name: crate_of(rel_path),
                    class: FileClass::classify(rel_path),
                    mentions,
                    crate_refs,
                    lines: src.lines().map(str::to_string).collect(),
                    parsed,
                }
            })
            .collect();
        Workspace { files: analyzed }
    }

    /// `L1`: every `aipan_*` reference must be granted by the layering
    /// contract, and every scanned crate must be declared in it.
    pub fn check_layering(&self, config: &Config) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut undeclared: BTreeMap<&str, &str> = BTreeMap::new();
        for file in &self.files {
            if !config.declares(&file.crate_name) {
                undeclared
                    .entry(file.crate_name.as_str())
                    .or_insert(file.parsed.rel_path.as_str());
                continue;
            }
            for (target, line, col) in &file.crate_refs {
                if !config.allows(&file.crate_name, target) {
                    findings.push(Finding::at(
                        "L1",
                        Severity::Deny,
                        &file.parsed.rel_path,
                        *line,
                        *col,
                        format!(
                            "crate `{}` references `aipan_{target}`, which the lint.toml \
                             layering contract does not grant it; either the dependency is an \
                             architecture violation or the contract needs a deliberate update",
                            file.crate_name
                        ),
                        file.snippet(*line),
                    ));
                }
            }
        }
        for (crate_name, first_file) in undeclared {
            findings.push(Finding::at(
                "L1",
                Severity::Deny,
                first_file,
                0,
                0,
                format!(
                    "crate `{crate_name}` is not declared in the lint.toml [layering] table; \
                     every scanned crate must state what it may import"
                ),
                String::new(),
            ));
        }
        findings
    }

    /// `P1`: dead public API surface, by mark-and-sweep.
    ///
    /// An item is *alive* when some other file in the workspace mentions
    /// its name (code, tests, or comments), or when an alive non-test item
    /// in the same file mentions it — so a row/return type nobody spells
    /// but every caller reaches through an alive fn survives, while a
    /// cluster of pub items that only reference each other (or are used
    /// solely by their own unit tests) is reported. Fix by deleting,
    /// shrinking visibility to `pub(crate)`, wiring the item in, or
    /// justifying the surface in `lint.allow`.
    pub fn check_dead_pub(&self) -> Vec<Finding> {
        // How many files mention each identifier, so "mentioned by another
        // file" is one lookup instead of a scan per candidate.
        let mut file_count: BTreeMap<&str, usize> = BTreeMap::new();
        for file in &self.files {
            for name in &file.mentions {
                *file_count.entry(name.as_str()).or_insert(0) += 1;
            }
        }
        let mentioned_elsewhere = |file: &AnalyzedFile, name: &str| {
            let total = file_count.get(name).copied().unwrap_or(0);
            let here = usize::from(file.mentions.contains(name));
            total > here
        };

        let mut findings = Vec::new();
        for file in &self.files {
            if !file.class.is_library_code() {
                continue;
            }
            // Propagation units: named non-test items. Containers are
            // excluded — a `mod`'s or `impl`'s span covers its children,
            // which propagate individually — as are `use` declarations
            // (an import is not a use; the item consuming it propagates).
            let units: Vec<&Item> = file
                .parsed
                .all_items()
                .into_iter()
                .filter(|i| {
                    !i.cfg_test
                        && !i.name.is_empty()
                        && !matches!(
                            i.kind,
                            ItemKind::Mod | ItemKind::Impl { .. } | ItemKind::Use { .. }
                        )
                })
                .collect();
            let mut alive: Vec<bool> = units
                .iter()
                .map(|i| mentioned_elsewhere(file, &i.name))
                .collect();
            // Fixpoint: names referenced by alive units wake further units.
            loop {
                let alive_names: BTreeSet<&str> = units
                    .iter()
                    .zip(&alive)
                    .filter(|(_, &a)| a)
                    .flat_map(|(i, _)| i.idents.iter().map(String::as_str))
                    .collect();
                let mut changed = false;
                for (k, unit) in units.iter().enumerate() {
                    if !alive[k] && alive_names.contains(unit.name.as_str()) {
                        alive[k] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let alive_names: BTreeSet<&str> = units
                .iter()
                .zip(&alive)
                .filter(|(_, &a)| a)
                .map(|(i, _)| i.name.as_str())
                .collect();

            for candidate in pub_item_candidates(&file.parsed.items) {
                let name = candidate.name.as_str();
                if mentioned_elsewhere(file, name) || alive_names.contains(name) {
                    continue;
                }
                findings.push(Finding::at(
                    "P1",
                    Severity::Warn,
                    &file.parsed.rel_path,
                    candidate.line,
                    candidate.col,
                    format!(
                        "pub {} `{name}` is dead API surface: no other file mentions it and \
                         no live item in this file uses it (own unit tests do not count); \
                         delete it, reduce its visibility, or justify it in lint.allow",
                        kind_word(&candidate.kind)
                    ),
                    file.snippet(candidate.line),
                ));
            }
        }
        findings
    }
}

/// Collect `P1` candidates: pub items at module level (outside
/// `#[cfg(test)]`), plus pub fns in inherent impls. Trait-impl members are
/// excluded (their names are dictated by the trait), as are `main` and
/// underscore-prefixed names.
fn pub_item_candidates(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    collect_candidates(items, &mut out);
    out
}

fn collect_candidates<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match &item.kind {
            ItemKind::Mod => collect_candidates(&item.children, out),
            ItemKind::Impl { of_trait, .. } => {
                if !of_trait {
                    for child in &item.children {
                        if child.is_pub
                            && matches!(child.kind, ItemKind::Fn(_))
                            && !child.cfg_test
                            && eligible_name(&child.name)
                        {
                            out.push(child);
                        }
                    }
                }
            }
            ItemKind::Fn(_)
            | ItemKind::Struct { .. }
            | ItemKind::Enum
            | ItemKind::Trait
            | ItemKind::Const
            | ItemKind::TypeAlias => {
                if item.is_pub && eligible_name(&item.name) {
                    out.push(item);
                }
            }
            ItemKind::Use { .. } | ItemKind::MacroDef => {}
        }
    }
}

fn eligible_name(name: &str) -> bool {
    !name.is_empty() && name != "main" && !name.starts_with('_')
}

fn kind_word(kind: &ItemKind) -> &'static str {
    match kind {
        ItemKind::Fn(_) => "fn",
        ItemKind::Struct { .. } => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Trait => "trait",
        ItemKind::Const => "const",
        ItemKind::TypeAlias => "type alias",
        _ => "item",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    fn contract(text: &str) -> Config {
        Config::parse(text).expect("test contract parses")
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/net/src/url.rs"), "net");
        assert_eq!(crate_of("crates/lint/tests/t.rs"), "lint");
        assert_eq!(crate_of("src/lib.rs"), "aipan");
        assert_eq!(crate_of("tests/end_to_end.rs"), "aipan");
    }

    #[test]
    fn l1_fires_on_undeclared_import() {
        let w = ws(&[(
            "crates/taxonomy/src/lib.rs",
            "use aipan_crawler::Client;\npub fn f() {}\n",
        )]);
        let c = contract("[layering]\ntaxonomy = []\ncrawler = [\"taxonomy\"]\n");
        let f = w.check_layering(&c);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("L1", 1));
        assert!(f[0].message.contains("aipan_crawler"));
    }

    #[test]
    fn l1_allows_contracted_and_self_imports() {
        let w = ws(&[
            (
                "crates/crawler/src/lib.rs",
                "use aipan_taxonomy::Aspect;\npub fn f() {}\n",
            ),
            (
                "crates/crawler/tests/t.rs",
                "use aipan_crawler::f;\n#[test]\nfn t() { f(); }\n",
            ),
        ]);
        let c = contract("[layering]\ntaxonomy = []\ncrawler = [\"taxonomy\"]\n");
        assert!(w.check_layering(&c).is_empty());
    }

    #[test]
    fn l1_flags_undeclared_crate() {
        let w = ws(&[("crates/ghost/src/lib.rs", "pub fn f() {}\n")]);
        let c = contract("[layering]\ntaxonomy = []\n");
        let f = w.check_layering(&c);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not declared"));
    }

    #[test]
    fn p1_fires_only_when_nothing_else_references() {
        let w = ws(&[
            (
                "crates/x/src/lib.rs",
                "pub fn used() {}\npub fn orphan() {}\n",
            ),
            (
                "crates/x/tests/t.rs",
                "#[test]\nfn t() { aipan_x::used(); }\n",
            ),
        ]);
        let f = w.check_dead_pub();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "P1");
        assert!(f[0].message.contains("orphan"), "{}", f[0].message);
    }

    #[test]
    fn p1_comment_mentions_keep_items_alive() {
        let w = ws(&[
            ("crates/x/src/lib.rs", "pub fn exemplar() {}\n"),
            (
                "crates/x/src/other.rs",
                "// See `exemplar` for the canonical pattern.\npub fn f() { g(); }\nfn g() {}\n",
            ),
            (
                "crates/y/src/lib.rs",
                "pub fn h() { aipan_x::f(); }\nfn i() { h(); }\n",
            ),
        ]);
        // `exemplar` survives via the comment, `f` via `aipan_x::f`; `h` is
        // referenced only inside its own file, which does not count.
        let f = w.check_dead_pub();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`h`"));
    }

    #[test]
    fn p1_skips_trait_impls_tests_and_main() {
        let w = ws(&[(
            "crates/x/src/lib.rs",
            "pub struct S;\nimpl Clone for S { fn clone(&self) -> S { S } }\n\
             #[cfg(test)]\nmod tests { pub fn helper() {} }\n",
        )]);
        // S itself is unreferenced; clone (trait impl) and helper (cfg_test)
        // must not appear as separate findings.
        let f = w.check_dead_pub();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`S`"));
    }
}
