//! `M1`/`M2`: lock-guard liveness across expensive calls and loops.
//!
//! The pool's slower-than-serial cells come from exactly one shape: a
//! `Mutex`/`RwLock` guard that stays live across work that does not need
//! the lock. This pass recognizes guard *acquisitions* — `let g =
//! <lock>.lock()` (or `.read()`/`.write()` on a receiver the `K1`
//! registry or the local type environment proves is a lock) — and runs a
//! forward may-held dataflow over the CFG: a guard enters the fact at
//! its bind, leaves it at `drop(g)` or a rebinding, and is additionally
//! clipped to its lexical scope (the last source line of the statement
//! list that declared it), so a guard confined to an inner block never
//! leaks into sibling statements.
//!
//! **`M1` lock-held-across-expensive-call** (Deny): some guard is live
//! at a call into the `fetch`/`complete`/`annotate` family, or into any
//! workspace fn whose interprocedural cost summary (from
//! [`crate::cost`]) exceeds a threshold. Holding a lock across I/O- or
//! annotation-shaped work serializes every sibling worker.
//!
//! **`M2` guard-across-loop-iteration** (Warn): a guard bound outside a
//! loop whose every use sits strictly inside the loop — the lock is held
//! for all iterations when per-iteration acquisition (or dropping
//! before the loop) would do.
//!
//! Approximations, in the conservative direction for each rule: guard
//! recognition needs a provable lock receiver, so guards behind type
//! inference the parser cannot see are missed (fewer findings);
//! scope-end clipping is line-based, so a block that shares its closing
//! line with a later call can under-clip (more findings, caught by the
//! fix-or-allowlist gate); `drop(g)` kills the guard on every path even
//! when conditional, which under-approximates liveness but matches the
//! "was it ever provably released" question `M1` asks.

use crate::callgraph::{CallGraph, FnNode, Resolution};
use crate::cfg::{Cfg, Step};
use crate::cost::{loop_depths, CostModel};
use crate::dataflow::{replay, solve, Analysis};
use crate::expr::{child_blocks, for_each_child, Expr, ExprKind, Pat, Stmt};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::parser::{CallSite, ItemKind};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that acquire a lock guard.
pub(crate) const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Interprocedural cost above which a callee counts as expensive for
/// `M1` even outside the fetch/complete/annotate families.
const EXPENSIVE_TOTAL: u64 = 4096;

/// Call-name prefixes that are expensive by contract: network fetches,
/// chatbot completions, and annotation drivers.
const EXPENSIVE_PREFIXES: &[&str] = &["fetch", "complete", "annotate"];

/// Lock registry: `(crate, struct) -> lock-typed field names` (the same
/// parser-level registry `K1` builds).
pub(crate) fn lock_registry(ws: &Workspace) -> BTreeMap<(String, String), BTreeSet<String>> {
    let mut registry: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for file in &ws.files {
        for item in file.parsed.all_items() {
            if item.cfg_test {
                continue;
            }
            if let ItemKind::Struct { fields } = &item.kind {
                let locks: BTreeSet<String> = fields
                    .iter()
                    .filter(|f| f.is_lock)
                    .map(|f| f.name.clone())
                    .collect();
                if !locks.is_empty() {
                    registry.insert((file.crate_name.clone(), item.name.clone()), locks);
                }
            }
        }
    }
    registry
}

/// Whether a type-token list names a lock type.
fn ty_is_lock(ty: &[String]) -> bool {
    ty.iter().any(|t| t == "Mutex" || t == "RwLock")
}

/// Whether an expression tree mentions a lock type constructor
/// (`Mutex::new(..)`, `RwLock::new(..)`, or a path through one).
fn init_mentions_lock(e: &Expr) -> bool {
    let own = match &e.kind {
        ExprKind::Path(segs) => segs.iter().any(|s| s == "Mutex" || s == "RwLock"),
        ExprKind::StructLit { path, .. } => path.iter().any(|s| s == "Mutex" || s == "RwLock"),
        _ => false,
    };
    if own {
        return true;
    }
    let mut found = false;
    for_each_child(e, &mut |c| {
        if !found {
            found = init_mentions_lock(c);
        }
    });
    found
}

/// Per-fn environment of names provably bound to lock values: params and
/// lets whose declared type or initializer names `Mutex`/`RwLock`.
pub(crate) fn lock_locals(node: &FnNode<'_>, cfg: &Cfg<'_>) -> BTreeSet<String> {
    let mut locals: BTreeSet<String> = node
        .info
        .params
        .iter()
        .filter(|p| ty_is_lock(&p.ty))
        .map(|p| p.name.clone())
        .collect();
    for block in &cfg.nodes {
        for step in &block.steps {
            let Step::Bind {
                pat: Pat::Ident { name, .. },
                ty,
                init,
                ..
            } = step
            else {
                continue;
            };
            if ty_is_lock(ty) || init.is_some_and(init_mentions_lock) {
                locals.insert(name.clone());
            }
        }
    }
    locals
}

/// Whether `recv` is a provable lock place for an acquisition method:
/// `self.<field>` with the field registered, or a path rooted at a local
/// the environment proves is a lock.
pub(crate) fn recv_is_lock(
    recv: &Expr,
    method: &str,
    fields: Option<&BTreeSet<String>>,
    locals: &BTreeSet<String>,
) -> bool {
    let _ = method;
    match &recv.kind {
        ExprKind::Path(segs) => matches!(segs.as_slice(), [one] if locals.contains(one)),
        ExprKind::Field { base, name } => {
            if matches!(&base.kind, ExprKind::Path(segs) if segs.as_slice() == ["self"]) {
                fields.is_some_and(|f| f.contains(name))
            } else {
                // A nested place (`shared.inner`): accept when the root
                // local is a proven lock holder — `.lock()` only; for
                // `.read()`/`.write()` the field itself must be registered.
                false
            }
        }
        _ => false,
    }
}

/// The guard acquisition inside a bind initializer, if any: returns the
/// acquisition method name.
pub(crate) fn acquisition_in(
    init: &Expr,
    fields: Option<&BTreeSet<String>>,
    locals: &BTreeSet<String>,
) -> Option<String> {
    if let ExprKind::MethodCall { recv, name, .. } = &init.kind {
        if ACQUIRE_METHODS.contains(&name.as_str()) && recv_is_lock(recv, name, fields, locals) {
            return Some(name.clone());
        }
    }
    let mut found = None;
    for_each_child(init, &mut |c| {
        if found.is_none() {
            found = acquisition_in(c, fields, locals);
        }
    });
    found
}

/// One recognized guard binding.
struct Guard {
    name: String,
    method: String,
    line: u32,
    col: u32,
    /// CFG node holding the bind.
    node: usize,
    /// Last source line of the statement list that declared it.
    scope_end: u32,
}

/// Maximum source line spanned by an expression (including nested
/// blocks).
fn expr_max_line(e: &Expr) -> u32 {
    let mut max = e.line;
    for_each_child(e, &mut |c| max = max.max(expr_max_line(c)));
    for block in child_blocks(e) {
        for stmt in block {
            max = max.max(stmt_max_line(stmt));
        }
    }
    max
}

fn stmt_max_line(stmt: &Stmt) -> u32 {
    match stmt {
        Stmt::Let {
            init,
            else_block,
            line,
            ..
        } => {
            let mut max = *line;
            if let Some(e) = init {
                max = max.max(expr_max_line(e));
            }
            for s in else_block.iter().flatten() {
                max = max.max(stmt_max_line(s));
            }
            max
        }
        Stmt::Expr { expr, .. } => expr_max_line(expr),
    }
}

/// Last line of the scope that declares the `let` at `(line, col)`: the
/// maximum line spanned by the remainder of its statement list. Falls
/// back to `u32::MAX` (no clipping) when the statement is not found.
pub(crate) fn scope_end_of(body: &[Stmt], line: u32, col: u32) -> u32 {
    fn search(stmts: &[Stmt], line: u32, col: u32) -> Option<u32> {
        for (i, stmt) in stmts.iter().enumerate() {
            if let Stmt::Let {
                line: l, col: c, ..
            } = stmt
            {
                if *l == line && *c == col {
                    let mut max = line;
                    for later in stmts.iter().skip(i) {
                        max = max.max(stmt_max_line(later));
                    }
                    return Some(max);
                }
            }
            let found = match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => init
                    .as_ref()
                    .and_then(|e| search_expr(e, line, col))
                    .or_else(|| else_block.as_ref().and_then(|b| search(b, line, col))),
                Stmt::Expr { expr, .. } => search_expr(expr, line, col),
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    fn search_expr(e: &Expr, line: u32, col: u32) -> Option<u32> {
        for block in child_blocks(e) {
            if let Some(end) = search(block, line, col) {
                return Some(end);
            }
        }
        let mut found = None;
        for_each_child(e, &mut |c| {
            if found.is_none() {
                found = search_expr(c, line, col);
            }
        });
        found
    }
    search(body, line, col).unwrap_or(u32::MAX)
}

/// Guard-liveness dataflow: the set of guards that may be held, mapped
/// to their acquisition sites.
struct GuardLive {
    /// Bind sites `(line, col) -> guard name` recognized as acquisitions.
    acquisitions: BTreeMap<(u32, u32), String>,
}

impl<'a> Analysis<'a> for GuardLive {
    type Fact = BTreeMap<String, (u32, u32)>;

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) {
        for (name, site) in other {
            acc.entry(name.clone()).or_insert(*site);
        }
    }

    fn step(&self, step: &Step<'a>, fact: &mut Self::Fact) {
        match *step {
            Step::Bind { pat, line, col, .. } => {
                // Any rebinding releases the old guard (shadow or move);
                // a recognized acquisition re-arms it.
                let mut names = Vec::new();
                pat.bound_names(&mut names);
                for name in &names {
                    fact.remove(name);
                }
                if let Some(g) = self.acquisitions.get(&(line, col)) {
                    fact.insert(g.clone(), (line, col));
                }
            }
            Step::PatBind { pat, .. } => {
                let mut names = Vec::new();
                pat.bound_names(&mut names);
                for name in &names {
                    fact.remove(name);
                }
            }
            Step::Eval(e) => {
                if let Some(dropped) = dropped_guard(e) {
                    fact.remove(&dropped);
                }
            }
            _ => {}
        }
    }
}

/// The guard released by a top-level `drop(g)` / `mem::drop(g)` call.
fn dropped_guard(e: &Expr) -> Option<String> {
    let ExprKind::Call { callee, args } = &e.kind else {
        return None;
    };
    let ExprKind::Path(segs) = &callee.kind else {
        return None;
    };
    if segs.last().map(String::as_str) != Some("drop") {
        return None;
    }
    let [arg] = args.as_slice() else {
        return None;
    };
    match &arg.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [one] => Some(one.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Why a call counts as expensive for `M1`.
fn expensive_reason(
    graph: &CallGraph<'_>,
    model: &CostModel,
    file: usize,
    self_ty: Option<&str>,
    call: &CallSite,
) -> Option<String> {
    if ACQUIRE_METHODS.contains(&call.name.as_str()) || call.name == "drop" {
        return None;
    }
    if EXPENSIVE_PREFIXES.iter().any(|p| call.name.starts_with(p)) {
        return Some(format!(
            "`{}` is in the fetch/complete/annotate family",
            call.name
        ));
    }
    let Resolution::Fns(ids) = graph.resolve(file, self_ty, call) else {
        return None;
    };
    let worst = ids
        .iter()
        .filter_map(|&id| model.total.get(id).copied())
        .max()
        .unwrap_or(0);
    if worst >= EXPENSIVE_TOTAL {
        Some(format!(
            "its interprocedural cost summary ({worst}) exceeds the hot-path \
             threshold ({EXPENSIVE_TOTAL})"
        ))
    } else {
        None
    }
}

/// Mentions of a plain name in an expression tree.
fn mentions_name(e: &Expr, name: &str) -> bool {
    if matches!(&e.kind, ExprKind::Path(segs) if segs.as_slice() == [name]) {
        return true;
    }
    let mut found = false;
    for_each_child(e, &mut |c| {
        if !found {
            found = mentions_name(c, name);
        }
    });
    found
}

/// Run the `M1`/`M2` passes over an analyzed workspace.
pub fn check_guards(ws: &Workspace, graph: &CallGraph<'_>, model: &CostModel) -> Vec<Finding> {
    let registry = lock_registry(ws);
    let mut findings = Vec::new();
    for node in &graph.fns {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let fields = node
            .self_ty
            .and_then(|ty| registry.get(&(node.crate_name.to_string(), ty.to_string())));
        let cfg = Cfg::build(&node.info.body);
        let locals = lock_locals(node, &cfg);

        // Recognized guard binds.
        let mut guards: Vec<Guard> = Vec::new();
        for (nid, block) in cfg.nodes.iter().enumerate() {
            for step in &block.steps {
                let Step::Bind {
                    pat: Pat::Ident { name, .. },
                    init: Some(init),
                    line,
                    col,
                    ..
                } = step
                else {
                    continue;
                };
                let Some(method) = acquisition_in(init, fields, &locals) else {
                    continue;
                };
                guards.push(Guard {
                    name: name.clone(),
                    method,
                    line: *line,
                    col: *col,
                    node: nid,
                    scope_end: scope_end_of(&node.info.body, *line, *col),
                });
            }
        }
        if guards.is_empty() {
            continue;
        }

        let acquisitions: BTreeMap<(u32, u32), String> = guards
            .iter()
            .map(|g| ((g.line, g.col), g.name.clone()))
            .collect();
        let analysis = GuardLive { acquisitions };
        let in_facts = solve(&cfg, &analysis);

        // Guards live per line (fact *before* each step, scope-clipped).
        let mut live_at_line: BTreeMap<u32, BTreeMap<String, (u32, u32)>> = BTreeMap::new();
        for (nid, block) in cfg.nodes.iter().enumerate() {
            let Some(fact_in) = in_facts.get(nid).and_then(|f| f.as_ref()) else {
                continue;
            };
            replay(&analysis, &block.steps, fact_in, &mut |step, fact| {
                let (line, _) = step.pos();
                let slot = live_at_line.entry(line).or_default();
                for (g, site) in fact {
                    let in_scope = guards.iter().any(|gd| {
                        gd.name == *g && (gd.line, gd.col) == *site && line <= gd.scope_end
                    });
                    if in_scope {
                        slot.entry(g.clone()).or_insert(*site);
                    }
                }
            });
        }

        // M1: expensive call while a guard is live.
        for call in &node.info.calls {
            let Some(reason) = expensive_reason(graph, model, node.file, node.self_ty, call) else {
                continue;
            };
            let Some(live) = live_at_line.get(&call.line) else {
                continue;
            };
            if live.is_empty() {
                continue;
            }
            let held: Vec<String> = live
                .iter()
                .map(|(g, (l, _))| format!("`{g}` (acquired at line {l})"))
                .collect();
            findings.push(Finding::at(
                "M1",
                Severity::Deny,
                &file.parsed.rel_path,
                call.line,
                call.col,
                format!(
                    "`{}` is called while {} is still held — {reason}; release the \
                     guard (drop it or narrow its scope) before the expensive call",
                    call.name,
                    held.join(" and ")
                ),
                file.snippet(call.line),
            ));
        }

        // M2: guard bound outside a loop but only used inside one.
        let depths = loop_depths(&cfg);
        for guard in &guards {
            let bind_depth = depths.get(guard.node).copied().unwrap_or(0);
            let mut shallow_use = false;
            let mut deep_use = false;
            let mut dropped = false;
            for (nid, block) in cfg.nodes.iter().enumerate() {
                let d = depths.get(nid).copied().unwrap_or(0);
                for step in &block.steps {
                    if let Step::Bind { line, col, .. } = step {
                        if (*line, *col) == (guard.line, guard.col) {
                            continue;
                        }
                    }
                    for e in crate::cost::step_exprs(step) {
                        if !mentions_name(e, &guard.name) {
                            continue;
                        }
                        if dropped_guard(e).as_deref() == Some(guard.name.as_str()) {
                            dropped = true;
                        }
                        if d > bind_depth {
                            deep_use = true;
                        } else {
                            shallow_use = true;
                        }
                    }
                }
            }
            if deep_use && !shallow_use && !dropped {
                findings.push(Finding::at(
                    "M2",
                    Severity::Warn,
                    &file.parsed.rel_path,
                    guard.line,
                    guard.col,
                    format!(
                        "guard `{}` (`.{}()`) is acquired outside a loop but only \
                         used inside it, holding the lock for every iteration; \
                         acquire it per iteration or drop it before the loop",
                        guard.name, guard.method
                    ),
                    file.snippet(guard.line),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = Workspace::build(&owned);
        let graph = CallGraph::build(&ws);
        let model = CostModel::build(&ws, &graph);
        check_guards(&ws, &graph, &model)
    }

    const SHARED: &str = "pub struct Shared {\n\
         \x20   jobs: Mutex<Vec<u32>>,\n\
         }\n";

    #[test]
    fn lock_across_fetch_fires_m1() {
        let src = format!(
            "{SHARED}impl Shared {{\n\
             \x20   pub fn go(&self) {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       let page = fetch_page(g.first());\n\
             \x20       use_it(page);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = scan(&[("crates/crawler/src/pool.rs", &src)]);
        assert!(
            f.iter()
                .any(|f| f.rule == "M1" && f.message.contains("fetch_page")),
            "{f:?}"
        );
    }

    #[test]
    fn dropped_guard_before_fetch_is_clean() {
        let src = format!(
            "{SHARED}impl Shared {{\n\
             \x20   pub fn go(&self) {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       let first = g.first();\n\
             \x20       drop(g);\n\
             \x20       let page = fetch_page(first);\n\
             \x20       use_it(page);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = scan(&[("crates/crawler/src/pool.rs", &src)]);
        assert!(f.iter().all(|f| f.rule != "M1"), "{f:?}");
    }

    #[test]
    fn block_scoped_guard_is_clean() {
        let src = format!(
            "{SHARED}impl Shared {{\n\
             \x20   pub fn go(&self) {{\n\
             \x20       let first = {{\n\
             \x20           let g = self.jobs.lock();\n\
             \x20           g.first()\n\
             \x20       }};\n\
             \x20       let page = fetch_page(first);\n\
             \x20       use_it(page);\n\
             \x20   }}\n\
             }}\n"
        );
        let f = scan(&[("crates/crawler/src/pool.rs", &src)]);
        assert!(f.iter().all(|f| f.rule != "M1"), "{f:?}");
    }

    #[test]
    fn guard_used_only_inside_loop_fires_m2() {
        let src = format!(
            "{SHARED}impl Shared {{\n\
             \x20   pub fn go(&self, items: Vec<u32>) {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       for item in items {{\n\
             \x20           use_it(g.first(), item);\n\
             \x20       }}\n\
             \x20   }}\n\
             }}\n"
        );
        let f = scan(&[("crates/crawler/src/pool.rs", &src)]);
        assert!(f.iter().any(|f| f.rule == "M2"), "{f:?}");
    }

    #[test]
    fn guard_used_before_loop_is_clean_for_m2() {
        let src = format!(
            "{SHARED}impl Shared {{\n\
             \x20   pub fn go(&self, items: Vec<u32>) {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       seed(g.first());\n\
             \x20       for item in items {{\n\
             \x20           use_it(g.first(), item);\n\
             \x20       }}\n\
             \x20   }}\n\
             }}\n"
        );
        let f = scan(&[("crates/crawler/src/pool.rs", &src)]);
        assert!(f.iter().all(|f| f.rule != "M2"), "{f:?}");
    }

    #[test]
    fn plain_read_receiver_is_not_a_guard() {
        let src = "pub fn go(file: Handle) {\n\
             \x20   let data = file.read();\n\
             \x20   let page = fetch_page(data);\n\
             \x20   use_it(page);\n\
             }\n";
        let f = scan(&[("crates/net/src/io.rs", src)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
