//! `--incremental`: content-hash cache so re-lints only pay for what
//! changed.
//!
//! The cache (`target/aipan-lint-cache.json`, sorted JSON) stores, per
//! workspace file, an FNV-1a content hash and that file's *raw* layer-1
//! token findings, plus the finished report of the last run. A warm run
//! over an unchanged tree replays the cached report without lexing or
//! parsing anything — the output is byte-identical to a cold run because
//! both render the same [`Report`](crate::scan::Report) through the same
//! deterministic renderers. When files did change, the cached token
//! findings of unchanged files are reused (layer 1 is per-file by
//! construction) and the whole-workspace graph layer is recomputed; the
//! dirty crate set plus its reverse-dependency closure over crate
//! references is reported in the stats, and the graph re-run
//! over-approximates that closure (see DESIGN.md §6a — soundness first:
//! a cross-crate pass may produce findings outside the closure, so the
//! closure bounds *reporting*, not *recomputation*).
//!
//! The cache embeds [`CACHE_SCHEMA`], [`report::SCHEMA_VERSION`], and a
//! signature over `lint.toml` + the allowlist text, so a rule-vocabulary
//! or config change invalidates it wholesale. Cache reads and writes are
//! soft: any mismatch or I/O failure degrades to a cold run, never to an
//! error.

use crate::allow::Allowlist;
use crate::findings::Finding;
use crate::graph::crate_of;
use crate::report;
use crate::scan::{self, Report};
use serde::{Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// Cache layout version; bump when the cache shape itself changes.
pub const CACHE_SCHEMA: u64 = 1;

/// Cache location relative to the workspace root (`target/` is never
/// scanned, so the cache can never lint itself).
pub const CACHE_REL_PATH: &str = "target/aipan-lint-cache.json";

/// What the incremental driver did, for the stderr summary line.
#[derive(Debug)]
pub struct IncrementalStats {
    /// Files in the scan set.
    pub total_files: usize,
    /// Files whose content hash differs from the cache (or were absent).
    pub changed_files: usize,
    /// Files whose layer-1 token findings were reused from the cache.
    pub reused_token_files: usize,
    /// Whole cached report replayed (unchanged tree, no parsing at all).
    pub replayed: bool,
    /// Crates owning changed files, plus their reverse-dependency
    /// closure over crate references; empty on a replay.
    pub dirty_closure: Vec<String>,
}

impl IncrementalStats {
    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        if self.replayed {
            format!(
                "warm: {} file(s) unchanged, report replayed from cache",
                self.total_files
            )
        } else {
            format!(
                "cold/partial: {}/{} file(s) changed, {} token pass(es) reused, \
                 dirty crate closure: [{}]",
                self.changed_files,
                self.total_files,
                self.reused_token_files,
                self.dirty_closure.join(", ")
            )
        }
    }
}

/// FNV-1a 64-bit hash, rendered as fixed-width hex. Deterministic across
/// platforms and runs — the whole point.
fn fnv64_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Signature over everything that affects findings besides file
/// contents: the layering config, the allowlist, the schema numbers,
/// and the type-layer generation ([`crate::types::TYPES_SCHEMA`]) —
/// the `N1`/`N2`/`A1` passes consume inferred type facts, so a change
/// to how those are built must invalidate warm replays wholesale.
fn config_signature(root: &Path, allow_path: &Path) -> String {
    let lint_toml = std::fs::read_to_string(root.join("lint.toml")).unwrap_or_default();
    let allow = std::fs::read_to_string(allow_path).unwrap_or_default();
    let blob = format!(
        "{CACHE_SCHEMA}\u{0}{}\u{0}{}\u{0}{lint_toml}\u{0}{allow}",
        report::SCHEMA_VERSION,
        crate::types::TYPES_SCHEMA
    );
    fnv64_hex(blob.as_bytes())
}

/// Parsed cache contents.
struct Cache {
    /// rel path → (content hash, raw token findings).
    files: BTreeMap<String, (String, Vec<Finding>)>,
    /// The finished report of the run that wrote the cache.
    report: Report,
}

/// Load and validate the cache; `None` means cold (missing, unreadable,
/// or written under a different schema/config).
fn load_cache(root: &Path, sig: &str) -> Option<Cache> {
    let text = std::fs::read_to_string(root.join(CACHE_REL_PATH)).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    if v.get("cache_schema")?.as_u64()? != CACHE_SCHEMA {
        return None;
    }
    if v.get("schema_version")?.as_u64()? != report::SCHEMA_VERSION {
        return None;
    }
    if v.get("config_sig")?.as_str()? != sig {
        return None;
    }
    let mut files = BTreeMap::new();
    let Value::Object(members) = v.get("files")? else {
        return None;
    };
    for (rel, entry) in members {
        let hash = entry.get("hash")?.as_str()?.to_string();
        let token = report::findings_from_value(entry.get("token")?)?;
        files.insert(rel.clone(), (hash, token));
    }
    let rep = v.get("report")?;
    let cached_report = Report {
        findings: report::findings_from_value(rep.get("findings")?)?,
        suppressed: report::findings_from_value(rep.get("suppressed")?)?,
        files_scanned: rep.get("files_scanned")?.as_u64()? as usize,
    };
    Some(Cache {
        files,
        report: cached_report,
    })
}

/// Write the cache; failures are deliberately swallowed (a read-only
/// checkout must still lint).
fn store_cache(
    root: &Path,
    sig: &str,
    hashes: &BTreeMap<String, String>,
    token: &BTreeMap<String, Vec<Finding>>,
    rep: &Report,
) {
    let file_members: Vec<(String, Value)> = hashes
        .iter()
        .map(|(rel, hash)| {
            let token_findings = token.get(rel).map(Vec::as_slice).unwrap_or(&[]);
            (
                rel.clone(),
                report::sorted_object(vec![
                    ("hash", hash.to_value()),
                    ("token", report::findings_value(token_findings)),
                ]),
            )
        })
        .collect();
    let obj = report::sorted_object(vec![
        ("cache_schema", CACHE_SCHEMA.to_value()),
        ("config_sig", sig.to_value()),
        ("files", Value::Object(file_members)),
        (
            "report",
            report::sorted_object(vec![
                ("files_scanned", (rep.files_scanned as u64).to_value()),
                ("findings", report::findings_value(&rep.findings)),
                ("suppressed", report::findings_value(&rep.suppressed)),
            ]),
        ),
        ("schema_version", report::SCHEMA_VERSION.to_value()),
    ]);
    let text = serde_json::to_string_pretty(&obj).unwrap_or_else(|_| obj.to_string());
    let path = root.join(CACHE_REL_PATH);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&path, text + "\n");
}

/// Crates owning changed files plus every crate that (transitively)
/// references one of them — the set whose findings can differ.
fn dirty_crate_closure(sources: &[(String, String)], changed: &BTreeSet<String>) -> Vec<String> {
    let mut dirty: BTreeSet<String> = changed.iter().map(|rel| crate_of(rel)).collect();
    if dirty.is_empty() {
        return Vec::new();
    }
    // Reverse edges over crate references: `user -> used`, so a crate
    // that references a dirty crate becomes dirty too.
    let ws = crate::graph::Workspace::build(sources);
    let mut refs: Vec<(String, String)> = Vec::new();
    for file in &ws.files {
        for (used, _, _) in &file.crate_refs {
            refs.push((file.crate_name.clone(), used.clone()));
        }
    }
    let mut grew = true;
    while grew {
        grew = false;
        for (user, used) in &refs {
            if dirty.contains(used) && !dirty.contains(user) {
                dirty.insert(user.clone());
                grew = true;
            }
        }
    }
    dirty.into_iter().collect()
}

/// Lint the workspace with the content-hash cache: replay on an
/// unchanged tree, otherwise reuse per-file token findings and recompute
/// the graph layer. The returned report is indistinguishable from
/// [`scan::run`]'s.
pub fn run_incremental(root: &Path, allow_path: &Path) -> io::Result<(Report, IncrementalStats)> {
    let sig = config_signature(root, allow_path);
    let sources = scan::read_sources(root, |_| true)?;
    let mut hashes: BTreeMap<String, String> = BTreeMap::new();
    for (rel, src) in &sources {
        hashes.insert(rel.clone(), fnv64_hex(src.as_bytes()));
    }

    let cache = load_cache(root, &sig);
    let unchanged = cache.as_ref().is_some_and(|c| {
        c.files.len() == hashes.len()
            && hashes
                .iter()
                .all(|(rel, h)| c.files.get(rel).is_some_and(|(ch, _)| ch == h))
    });
    if unchanged {
        // Tree identical to the cached run: replay without touching the
        // lexer or parser. `cache` is `Some` here by construction.
        let Some(c) = cache else {
            return Err(io::Error::new(io::ErrorKind::Other, "cache vanished"));
        };
        let stats = IncrementalStats {
            total_files: sources.len(),
            changed_files: 0,
            reused_token_files: sources.len(),
            replayed: true,
            dirty_closure: Vec::new(),
        };
        return Ok((c.report, stats));
    }

    // Layer 1 with per-file reuse.
    let mut token: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let mut changed: BTreeSet<String> = BTreeSet::new();
    let mut reused = 0usize;
    for (rel, src) in &sources {
        let hash = hashes.get(rel).cloned().unwrap_or_default();
        let cached = cache
            .as_ref()
            .and_then(|c| c.files.get(rel))
            .filter(|(ch, _)| *ch == hash);
        match cached {
            Some((_, findings)) => {
                reused += 1;
                token.insert(rel.clone(), findings.clone());
            }
            None => {
                changed.insert(rel.clone());
                token.insert(rel.clone(), scan::token_findings(rel, src));
            }
        }
    }

    // Layer 2 always recomputes (sound over-approximation of the dirty
    // closure); the closure itself is computed for the stats line.
    let mut raw: Vec<Finding> = token.values().flatten().cloned().collect();
    raw.extend(scan::graph_findings(root, &sources)?);

    let allowlist = if allow_path.is_file() {
        let text = std::fs::read_to_string(allow_path)?;
        Allowlist::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    } else {
        Allowlist::default()
    };
    let rep = scan::finish(raw, allowlist, sources.len());

    let stats = IncrementalStats {
        total_files: sources.len(),
        changed_files: changed.len(),
        reused_token_files: reused,
        replayed: false,
        dirty_closure: dirty_crate_closure(&sources, &changed),
    };
    store_cache(root, &sig, &hashes, &token, &rep);
    Ok((rep, stats))
}
