//! Data-invariant checks over the taxonomy crate's static vocabulary.
//!
//! These are lint-time validations of *data*, not code:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `T1` | normalization closure: every surface form folds to a key owned by exactly one canonical descriptor, and canonical names resolve to themselves through [`aipan_taxonomy::Normalizer`] |
//! | `T2` | no duplicate canonical names across the datatype, purpose, rights, and handling vocabularies |
//! | `T3` | aspect coverage: all nine paper aspects present, keys unique and round-tripping through `Aspect::from_key` |
//!
//! Each check takes its vocabulary as a value (built by [`workspace_vocab`]
//! for the real tables), so tests can corrupt a copy in memory and watch the
//! corresponding finding appear without touching the taxonomy crate.

use crate::findings::Finding;
use aipan_taxonomy::normalize::fold;
use aipan_taxonomy::{
    AccessLabel, Aspect, ChoiceLabel, Normalizer, ProtectionLabel, RetentionLabel,
    DATA_TYPE_DESCRIPTORS, PURPOSE_DESCRIPTORS,
};
use std::collections::BTreeMap;

/// One canonical vocabulary entry: its name, alias surface forms, and the
/// taxonomy source file that declares it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VocabEntry {
    /// Canonical descriptor or label name.
    pub name: String,
    /// Alias surface forms that normalize onto `name` (may be empty).
    pub surfaces: Vec<String>,
    /// Declaring file, workspace-relative.
    pub source: &'static str,
}

const DATATYPES_RS: &str = "crates/taxonomy/src/datatypes.rs";
const PURPOSES_RS: &str = "crates/taxonomy/src/purposes.rs";
const RIGHTS_RS: &str = "crates/taxonomy/src/rights.rs";
const HANDLING_RS: &str = "crates/taxonomy/src/handling.rs";
const ASPECT_RS: &str = "crates/taxonomy/src/aspect.rs";

/// Snapshot the real taxonomy tables into checkable form.
pub(crate) fn workspace_vocab() -> Vec<VocabEntry> {
    let mut entries = Vec::new();
    for spec in DATA_TYPE_DESCRIPTORS {
        entries.push(VocabEntry {
            name: spec.name.to_string(),
            surfaces: spec.surfaces.iter().map(|s| s.to_string()).collect(),
            source: DATATYPES_RS,
        });
    }
    for spec in PURPOSE_DESCRIPTORS {
        entries.push(VocabEntry {
            name: spec.name.to_string(),
            surfaces: spec.surfaces.iter().map(|s| s.to_string()).collect(),
            source: PURPOSES_RS,
        });
    }
    let label = |name: &str, source: &'static str| VocabEntry {
        name: name.to_string(),
        surfaces: Vec::new(),
        source,
    };
    for l in ChoiceLabel::ALL {
        entries.push(label(l.name(), RIGHTS_RS));
    }
    for l in AccessLabel::ALL {
        entries.push(label(l.name(), RIGHTS_RS));
    }
    for l in RetentionLabel::ALL {
        entries.push(label(l.name(), HANDLING_RS));
    }
    for l in ProtectionLabel::ALL {
        entries.push(label(l.name(), HANDLING_RS));
    }
    entries
}

/// `T1`: normalization closure over the given vocabulary.
///
/// Every folded surface key must be owned by exactly one canonical name, no
/// surface may fold to the empty key, and no alias may collide with another
/// entry's canonical name.
pub(crate) fn check_normalization_closure(entries: &[VocabEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // folded key -> sorted set of (canonical, source) that claim it.
    let mut claims: BTreeMap<String, Vec<(&str, &'static str)>> = BTreeMap::new();
    for entry in entries {
        for surface in std::iter::once(&entry.name).chain(&entry.surfaces) {
            let key = fold(surface);
            if key.is_empty() {
                findings.push(Finding::for_data(
                    "T1",
                    entry.source,
                    format!(
                        "surface form {surface:?} of `{}` folds to the empty key and can \
                         never be matched",
                        entry.name
                    ),
                    format!("surfaces: {:?}", entry.surfaces),
                ));
                continue;
            }
            let owners = claims.entry(key).or_default();
            if !owners.iter().any(|&(name, _)| name == entry.name) {
                owners.push((entry.name.as_str(), entry.source));
            }
        }
    }
    for (key, owners) in &claims {
        if owners.len() > 1 {
            let names: Vec<&str> = owners.iter().map(|&(n, _)| n).collect();
            findings.push(Finding::for_data(
                "T1",
                owners[0].1,
                format!(
                    "folded surface key {key:?} is claimed by {} canonicals: {}; \
                     normalization of that surface is ambiguous",
                    owners.len(),
                    names.join(", ")
                ),
                format!("fold(surface) = {key:?}"),
            ));
        }
    }
    findings
}

/// `T1` (live half): the built [`Normalizer`] must resolve every canonical
/// name and every alias of the *real* tables back to its declared canonical.
pub(crate) fn check_normalizer_agrees() -> Vec<Finding> {
    let mut findings = Vec::new();
    let n = Normalizer::new();
    for spec in DATA_TYPE_DESCRIPTORS {
        for surface in std::iter::once(&spec.name).chain(spec.surfaces) {
            match n.datatype(surface) {
                Some(hit) if hit.descriptor == spec.name => {}
                got => findings.push(Finding::for_data(
                    "T1",
                    DATATYPES_RS,
                    format!(
                        "Normalizer resolves datatype surface {surface:?} to {:?}, expected \
                         canonical `{}`",
                        got.map(|h| h.descriptor),
                        spec.name
                    ),
                    String::new(),
                )),
            }
        }
    }
    for spec in PURPOSE_DESCRIPTORS {
        for surface in std::iter::once(&spec.name).chain(spec.surfaces) {
            match n.purpose(surface) {
                Some(hit) if hit.descriptor == spec.name => {}
                got => findings.push(Finding::for_data(
                    "T1",
                    PURPOSES_RS,
                    format!(
                        "Normalizer resolves purpose surface {surface:?} to {:?}, expected \
                         canonical `{}`",
                        got.map(|h| h.descriptor),
                        spec.name
                    ),
                    String::new(),
                )),
            }
        }
    }
    findings
}

/// `T2`: canonical names must be unique across all four vocabulary files.
pub(crate) fn check_duplicate_canonicals(entries: &[VocabEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: BTreeMap<&str, Vec<&'static str>> = BTreeMap::new();
    for entry in entries {
        seen.entry(&entry.name).or_default().push(entry.source);
    }
    for (name, sources) in &seen {
        if sources.len() > 1 {
            findings.push(Finding::for_data(
                "T2",
                sources[0],
                format!(
                    "canonical name `{name}` is declared {} times (in {}); names must be \
                     unique across the taxonomy vocabularies",
                    sources.len(),
                    sources.join(", ")
                ),
                String::new(),
            ));
        }
    }
    findings
}

/// `T3`: aspect coverage over a `(key, round_tripped)` snapshot, where
/// `round_tripped` is whether `Aspect::from_key(key)` returned the aspect
/// the key came from.
pub(crate) fn check_aspect_keys(keys: &[(String, bool)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if keys.len() != 9 {
        findings.push(Finding::for_data(
            "T3",
            ASPECT_RS,
            format!(
                "the paper defines nine privacy-policy aspects; Aspect::ALL has {}",
                keys.len()
            ),
            String::new(),
        ));
    }
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (key, _) in keys {
        *seen.entry(key).or_default() += 1;
    }
    for (key, count) in &seen {
        if *count > 1 {
            findings.push(Finding::for_data(
                "T3",
                ASPECT_RS,
                format!("aspect key `{key}` appears {count} times in Aspect::ALL"),
                String::new(),
            ));
        }
    }
    for (key, round_tripped) in keys {
        if !round_tripped {
            findings.push(Finding::for_data(
                "T3",
                ASPECT_RS,
                format!(
                    "Aspect::from_key({key:?}) does not return the aspect that key() came from"
                ),
                String::new(),
            ));
        }
    }
    findings
}

/// Snapshot the real `Aspect::ALL` table for [`check_aspect_keys`].
pub(crate) fn workspace_aspect_keys() -> Vec<(String, bool)> {
    Aspect::ALL
        .iter()
        .map(|a| {
            let key = a.key().to_string();
            let round_tripped = Aspect::from_key(&key) == Some(*a);
            (key, round_tripped)
        })
        .collect()
}

/// Run every data-invariant check against the live workspace taxonomy.
pub fn check_all() -> Vec<Finding> {
    let vocab = workspace_vocab();
    let mut findings = check_normalization_closure(&vocab);
    findings.extend(check_normalizer_agrees());
    findings.extend(check_duplicate_canonicals(&vocab));
    findings.extend(check_aspect_keys(&workspace_aspect_keys()));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_taxonomy_passes_all_invariants() {
        let findings = check_all();
        assert!(
            findings.is_empty(),
            "taxonomy invariant violations: {findings:#?}"
        );
    }

    #[test]
    fn corrupting_an_alias_in_memory_trips_t1() {
        let mut vocab = workspace_vocab();
        assert!(check_normalization_closure(&vocab).is_empty());
        // Steal another entry's canonical name as an alias: "Email Address!"
        // folds onto whatever key `email address` owns.
        let victim = vocab
            .iter()
            .position(|e| e.name == "postal address")
            .expect("canonical from the paper's example");
        vocab[victim].surfaces.push("Email Address!".to_string());
        let findings = check_normalization_closure(&vocab);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "T1");
        assert!(
            findings[0].message.contains("email address"),
            "{}",
            findings[0].message
        );
        assert!(findings[0].message.contains("postal address"));
    }

    #[test]
    fn empty_fold_trips_t1() {
        let mut vocab = workspace_vocab();
        vocab[0].surfaces.push("?!,.".to_string());
        let findings = check_normalization_closure(&vocab);
        assert!(findings
            .iter()
            .any(|f| f.rule == "T1" && f.message.contains("empty key")));
    }

    #[test]
    fn duplicate_canonical_trips_t2() {
        let mut vocab = workspace_vocab();
        let stolen = vocab[0].name.clone();
        vocab.push(VocabEntry {
            name: stolen,
            surfaces: Vec::new(),
            source: "crates/taxonomy/src/rights.rs",
        });
        let findings = check_duplicate_canonicals(&vocab);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "T2");
        assert!(findings[0].message.contains("declared 2 times"));
    }

    #[test]
    fn missing_or_duplicate_aspect_trips_t3() {
        let mut keys = workspace_aspect_keys();
        assert!(check_aspect_keys(&keys).is_empty());
        let dropped = keys.pop().expect("nine aspects");
        assert!(check_aspect_keys(&keys)
            .iter()
            .any(|f| f.rule == "T3" && f.message.contains("has 8")));
        keys.push(dropped);
        keys[0].0 = keys[1].0.clone();
        assert!(check_aspect_keys(&keys)
            .iter()
            .any(|f| f.message.contains("appears 2 times")));
    }

    #[test]
    fn broken_round_trip_trips_t3() {
        let mut keys = workspace_aspect_keys();
        keys[3].1 = false;
        assert!(check_aspect_keys(&keys)
            .iter()
            .any(|f| f.message.contains("from_key")));
    }
}
