//! A minimal, forgiving Rust lexer.
//!
//! Produces a flat stream of [`Token`]s that concatenate back to the exact
//! input (`lex(src).iter().map(|t| t.text).collect::<String>() == src`).
//! That round-trip property is what the rule passes rely on: every byte of
//! the file is attributed to exactly one token, so comments, string
//! literals, and code are never confused with each other.
//!
//! The lexer follows the same scanner idiom as the HTML tokenizer in
//! `crates/html`: a cursor over the source with small `starts_with`-driven
//! dispatch, and no panics on malformed input — unterminated constructs run
//! to end-of-input, unknown bytes become one-byte [`TokenKind::Unknown`]
//! tokens.

/// Classification of one source token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`, ...).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer or float literal, including suffixes (`0xFF`, `1_000u32`, `1.5e3`).
    Number,
    /// String-ish literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `'c'`, `b'c'`.
    Literal,
    /// `// ...` comment, including doc comments (`///`, `//!`). Text excludes
    /// the trailing newline (that is emitted as whitespace).
    LineComment,
    /// `/* ... */` comment, nesting-aware.
    BlockComment,
    /// Run of whitespace.
    Whitespace,
    /// Single punctuation byte (`.`, `:`, `!`, `(`, ...). Multi-byte operators
    /// appear as consecutive `Punct` tokens, which is all the rule matchers need.
    Punct,
    /// Byte the lexer does not recognize (kept for round-trip fidelity).
    Unknown,
}

/// One lexed token: its kind, exact source text, and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token classification.
    pub kind: TokenKind,
    /// Exact source slice; concatenating all token texts reproduces the input.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

/// Lex `src` into a token stream covering every byte.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.src.len() {
            let rest = &self.src[self.pos..];
            let first = rest.as_bytes()[0];
            if first.is_ascii_whitespace() {
                self.whitespace(rest);
            } else if rest.starts_with("//") {
                self.line_comment(rest);
            } else if rest.starts_with("/*") {
                self.block_comment(rest);
            } else if let Some(len) = raw_string_len(rest) {
                self.emit(TokenKind::Literal, len);
            } else if rest.starts_with("b\"") {
                let len = 1 + quoted_len(&rest[1..], b'"');
                self.emit(TokenKind::Literal, len);
            } else if rest.starts_with("b'") {
                let len = 1 + quoted_len(&rest[1..], b'\'');
                self.emit(TokenKind::Literal, len);
            } else if first == b'"' {
                self.emit(TokenKind::Literal, quoted_len(rest, b'"'));
            } else if first == b'\'' {
                self.quote_or_lifetime(rest);
            } else if first.is_ascii_digit() {
                self.emit(TokenKind::Number, number_len(rest));
            } else if is_ident_start(first) || !first.is_ascii() {
                self.ident(rest);
            } else {
                let kind = if first.is_ascii_punctuation() {
                    TokenKind::Punct
                } else {
                    TokenKind::Unknown
                };
                self.emit(kind, 1);
            }
        }
        self.tokens
    }

    fn whitespace(&mut self, rest: &str) {
        let len = rest
            .as_bytes()
            .iter()
            .take_while(|b| b.is_ascii_whitespace())
            .count();
        self.emit(TokenKind::Whitespace, len);
    }

    fn line_comment(&mut self, rest: &str) {
        let len = rest.find('\n').unwrap_or(rest.len());
        self.emit(TokenKind::LineComment, len);
    }

    fn block_comment(&mut self, rest: &str) {
        let mut depth = 0usize;
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i..].starts_with(b"/*") {
                depth += 1;
                i += 2;
            } else if bytes[i..].starts_with(b"*/") {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                i += 1;
            }
        }
        self.emit(TokenKind::BlockComment, i.min(rest.len()));
    }

    /// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal): a
    /// quote followed by identifier bytes is a lifetime unless the run is
    /// closed by another quote.
    fn quote_or_lifetime(&mut self, rest: &str) {
        let bytes = rest.as_bytes();
        if bytes.len() >= 2 && is_ident_start(bytes[1]) {
            let ident_end = 1 + bytes[1..]
                .iter()
                .take_while(|&&b| is_ident_continue(b))
                .count();
            if bytes.get(ident_end) != Some(&b'\'') {
                self.emit(TokenKind::Lifetime, ident_end);
                return;
            }
        }
        self.emit(TokenKind::Literal, quoted_len(rest, b'\''));
    }

    fn ident(&mut self, rest: &str) {
        // `r#ident` raw identifiers lex as one token (raw strings were
        // already handled before this point).
        let mut start = 0;
        if rest.starts_with("r#") {
            start = 2;
        }
        let len = start
            + rest[start..]
                .as_bytes()
                .iter()
                .take_while(|&&b| is_ident_continue(b) || !b.is_ascii())
                .count();
        self.emit(TokenKind::Ident, len.max(1));
    }

    fn emit(&mut self, kind: TokenKind, len: usize) {
        let len = len.max(1).min(self.src.len() - self.pos);
        // Never split a UTF-8 code point: extend to the next char boundary.
        let mut end = self.pos + len;
        while end < self.src.len() && !self.src.is_char_boundary(end) {
            end += 1;
        }
        let text = &self.src[self.pos..end];
        self.tokens.push(Token {
            kind,
            text,
            line: self.line,
            col: self.col,
        });
        for b in text.bytes() {
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        self.pos = end;
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length of a `"..."`-style literal starting at `rest[0] == quote`,
/// honoring backslash escapes; runs to end-of-input if unterminated.
fn quoted_len(rest: &str, quote: u8) -> usize {
    let bytes = rest.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b if b == quote => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Length of a raw string literal (`r"..."`, `r#"..."#`, `br##"..."##`) if
/// `rest` starts with one.
fn raw_string_len(rest: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    let mut i = 0;
    if bytes.first() == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let hash_start = i;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    let hashes = i - hash_start;
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    while i < bytes.len() {
        if bytes[i..].starts_with(&closer) {
            return Some(i + closer.len());
        }
        i += 1;
    }
    Some(bytes.len())
}

/// Length of a numeric literal at the start of `rest` (first byte is a digit).
fn number_len(rest: &str) -> usize {
    let bytes = rest.as_bytes();
    let mut i = 0;
    if rest.starts_with("0x") || rest.starts_with("0o") || rest.starts_with("0b") {
        i = 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: `1.5` but not `1.max(2)` or `1..2`.
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    }
    // Exponent: `1e9`, `2.5E-3`.
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix: `u32`, `f64`, `usize`.
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "lexer must cover every byte");
    }

    #[test]
    fn covers_every_byte_of_typical_code() {
        let src = r##"
            fn main() {
                let s = "str with \" escape";
                let r = r#"raw "inner" text"#;
                let c = '\n';
                let l: &'static str = "x";
                // line comment
                /* block /* nested */ comment */
                let n = 0xFF_u32 + 1.5e3 + 1..2;
            }
        "##;
        roundtrip(src);
    }

    #[test]
    fn distinguishes_lifetime_from_char() {
        let toks = lex("'a 'a' '\\n' 'static");
        let kinds: Vec<TokenKind> = toks
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Lifetime,
                TokenKind::Literal,
                TokenKind::Literal,
                TokenKind::Lifetime
            ]
        );
    }

    #[test]
    fn comments_swallow_code_like_text() {
        let toks = lex("// let x = y.unwrap();\nlet z = 1;");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text.contains("unwrap"));
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["let", "z"]);
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  bb\n");
        let bb = toks.iter().find(|t| t.text == "bb").unwrap();
        assert_eq!((bb.line, bb.col), (2, 3));
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panic() {
        roundtrip("\"never closed");
        roundtrip("/* never closed");
        roundtrip("r#\"never closed");
        roundtrip("'x");
    }

    #[test]
    fn raw_strings_hide_quotes_and_hashes() {
        let toks = lex(r###"r##"a "quoted" b"## + 1"###);
        assert_eq!(toks[0].kind, TokenKind::Literal);
        assert_eq!(toks[0].text, r###"r##"a "quoted" b"##"###);
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_single_literals() {
        for src in [
            "b\"bytes \\\" esc\"",
            "b'x'",
            r###"br#"raw "bytes""#"###,
            r#"br"plain""#,
            r####"br##"double "# fence"##"####,
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src} must be one literal, got {toks:?}");
            assert_eq!(toks[0].kind, TokenKind::Literal, "{src}");
        }
        // The `b` prefix must not glue onto following code.
        let idents: Vec<&str> = lex("b\"x\" y")
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["y"]);
    }

    #[test]
    fn hash_fenced_raw_string_stops_at_matching_fence() {
        // A shorter fence (`"#`) inside the literal must not close `r##`.
        let src = r####"r##"quote " one-fence "# still inside"## tail"####;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Literal);
        assert_eq!(
            toks[0].text,
            r####"r##"quote " one-fence "# still inside"##"####
        );
        assert!(toks.iter().any(|t| t.text == "tail"));
        roundtrip(src);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = lex("/* a /* b /* c */ */ */ x");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text, "/* a /* b /* c */ */ */");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, vec!["x"], "code after the comment must survive");
        // An inner `*/` at depth > 0 must not terminate the comment early.
        let toks = lex("/* outer /* inner */ let x = 1; */ done");
        assert_eq!(toks[0].text, "/* outer /* inner */ let x = 1; */");
    }

    #[test]
    fn number_forms() {
        for src in ["0xDEAD_BEEF", "1_000u64", "3.25", "1e9", "2.5E-3", "7usize"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokenKind::Number, "{src}");
        }
        // Method calls and ranges on integers must not absorb the dot.
        let toks = lex("1.max(2)");
        assert_eq!(toks[0].text, "1");
        let toks = lex("0..10");
        assert_eq!(toks[0].text, "0");
    }
}
