//! `aipan-lint`: the workspace's own static-analysis pass.
//!
//! Reproducibility is a first-class claim of this codebase: the paper's
//! pipeline must produce byte-identical tables and reports across runs and
//! machines. This crate enforces the determinism contract (and a few hygiene
//! rules) over the workspace's own Rust sources, plus *data invariants* over
//! the taxonomy vocabulary that the whole measurement rests on.
//!
//! Analysis runs in three layers over the same file set:
//!
//! 1. **Token rules** (see [`rules`]) on the [`lexer`] stream: `D1`
//!    wall-clock/entropy, `D2` hash-order iteration feeding output, `R1`
//!    panics in library code, `O1` stray stdio in library code, `H1`
//!    untracked to-do markers.
//! 2. **Graph rules** on the workspace item graph: every file through the
//!    recursive-descent item [`parser`], assembled into a
//!    [`graph::Workspace`], then `L1` crate layering against the
//!    `lint.toml` contract (see [`config`]), `E1` discarded `Result`s from
//!    fallible workspace fns (see [`error_flow`]), `K1` lock-acquisition
//!    cycles (see [`locks`]), and `P1` unreferenced pub items (see
//!    [`graph`]).
//! 3. **Dataflow rules** on per-fn CFGs ([`expr`] → [`cfg`] →
//!    [`dataflow`]): `X1` interprocedural panic-reachability (see
//!    [`panic_reach`]), `D3` determinism taint (see [`taint`]), the
//!    hot-path cost rules `H2`/`C2` over the interprocedural cost model
//!    (see [`cost`]), the lock-guard liveness rules `M1`/`M2` (see
//!    [`guards`]), and the type- and effect-aware rules over the
//!    workspace type index (see [`types`]): `N1`/`N2` numeric safety
//!    (see [`numeric`]), `A1` atomic commutativity (see [`atomics`]),
//!    and `F1` filesystem-I/O confinement (see [`effects`]).
//!
//! Data invariants (see [`invariants`]): `T1` normalization closure, `T2`
//! canonical-name uniqueness, `T3` nine-aspect coverage.
//!
//! Two entry points:
//! - `cargo run -p aipan-lint` (or `cargo lint`): CLI with human diff-style
//!   or `--format json` output, `--deny-warnings` for CI strictness,
//!   `--hotpaths` for the ranked cost chains, and `--fix` /
//!   `--fix --dry-run` for the machine-applicable rewrites (see [`fix`]).
//! - `crates/lint/tests/workspace_clean.rs`: tier-1 test failing on any
//!   non-allowlisted finding, so `cargo test` alone enforces the contract.
//!
//! Vetted exceptions live in `lint.allow` at the workspace root (see
//! [`allow`]); every entry carries a mandatory justification, and entries
//! that stop matching anything are themselves reported (`A0`).

pub mod allow;
pub mod atomics;
pub mod callgraph;
pub mod catalog;
pub mod cfg;
pub mod config;
pub mod cost;
pub mod dataflow;
pub mod effects;
pub mod error_flow;
pub mod expr;
pub mod findings;
pub mod fix;
pub mod graph;
pub mod guards;
pub mod incremental;
pub mod invariants;
pub mod lexer;
pub mod locks;
pub mod numeric;
pub mod panic_reach;
pub mod parser;
pub mod report;
pub mod retain;
pub mod rules;
pub mod scan;
pub mod share;
pub mod taint;
pub mod types;

pub use allow::{Allowlist, ParseError};
pub use config::{Config, ConfigError};
pub use findings::{Finding, Severity};
pub use rules::lint_source;
pub use scan::{run, run_filtered, Report};
