//! `K1`: inconsistent lock-acquisition order across the workspace.
//!
//! Deadlock by lock-order inversion is invisible to per-file review: each
//! function looks locally correct, and only the *global* acquisition
//! graph shows the cycle. This pass:
//!
//! 1. registers every named `Mutex`/`RwLock` struct field in the
//!    workspace (parser-level: a field whose declared type mentions
//!    `Mutex` or `RwLock`), identified as `crate::Struct.field`;
//! 2. walks every fn in an impl block and records the sequence of
//!    `self.field.lock()` / `.read()` / `.write()` acquisitions;
//! 3. adds an edge `a -> b` for every ordered pair of *distinct* locks
//!    acquired in one fn (an over-approximation: a guard dropped before
//!    the next acquisition still counts, which is conservative for a
//!    deadlock lint and covered by the allowlist when provably disjoint);
//! 4. reports every strongly-connected component of two or more locks in
//!    the global graph — each is a set of functions that can deadlock
//!    against each other — with one witness site per edge.
//!
//! Re-acquiring the same lock in one fn is *not* flagged (guards are
//! routinely dropped between statements), so self-edges are excluded.

use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::parser::{CallSite, FieldInfo, ItemKind};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that acquire a lock on `Mutex`/`RwLock` receivers.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Names of the lock-typed fields in one struct declaration.
fn lock_field_names(fields: &[FieldInfo]) -> BTreeSet<String> {
    fields
        .iter()
        .filter(|f| f.is_lock)
        .map(|f| f.name.clone())
        .collect()
}

/// The registered lock field a call acquires via `self.<field>.lock()` /
/// `.read()` / `.write()`, if any.
fn acquired_field<'a>(call: &'a CallSite, locks: &BTreeSet<String>) -> Option<&'a str> {
    if call.is_method
        && ACQUIRE_METHODS.contains(&call.name.as_str())
        && call.recv.len() == 2
        && call.recv[0] == "self"
        && locks.contains(&call.recv[1])
    {
        Some(&call.recv[1])
    } else {
        None
    }
}

/// Where one lock-after-lock edge was observed.
#[derive(Debug, Clone, PartialEq)]
struct Witness {
    file: String,
    fn_name: String,
    line: u32,
    col: u32,
}

/// Run the `K1` pass over an analyzed workspace.
pub fn check_lock_order(ws: &Workspace) -> Vec<Finding> {
    // Pass 1: the lock registry — (crate, struct) -> lock field names.
    let mut registry: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for file in &ws.files {
        for item in file.parsed.all_items() {
            if item.cfg_test {
                continue;
            }
            if let ItemKind::Struct { fields } = &item.kind {
                let locks = lock_field_names(fields);
                if !locks.is_empty() {
                    registry.insert((file.crate_name.clone(), item.name.clone()), locks);
                }
            }
        }
    }

    // Pass 2: acquisition sequences per fn -> global edge map.
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for file in &ws.files {
        for item in &file.parsed.items {
            let ItemKind::Impl { self_ty, .. } = &item.kind else {
                continue;
            };
            let Some(locks) = registry.get(&(file.crate_name.clone(), self_ty.clone())) else {
                continue;
            };
            for child in &item.children {
                if child.cfg_test {
                    continue;
                }
                let ItemKind::Fn(info) = &child.kind else {
                    continue;
                };
                let mut sequence: Vec<(String, u32, u32)> = Vec::new();
                for call in &info.calls {
                    if let Some(field) = acquired_field(call, locks) {
                        let id = format!("{}::{}.{}", file.crate_name, self_ty, field);
                        sequence.push((id, call.line, call.col));
                    }
                }
                for i in 0..sequence.len() {
                    for j in (i + 1)..sequence.len() {
                        let (a, _, _) = &sequence[i];
                        let (b, line, col) = &sequence[j];
                        if a == b {
                            continue;
                        }
                        edges
                            .entry((a.clone(), b.clone()))
                            .or_insert_with(|| Witness {
                                file: file.parsed.rel_path.clone(),
                                fn_name: child.name.clone(),
                                line: *line,
                                col: *col,
                            });
                    }
                }
            }
        }
    }

    // Pass 3: strongly-connected components of the acquisition graph.
    let mut findings = Vec::new();
    for component in cyclic_components(&edges) {
        // Every edge inside the component is part of the inversion; cite
        // each with its witness, anchored at the first site.
        let mut cited: Vec<String> = Vec::new();
        let mut anchor: Option<&Witness> = None;
        for ((a, b), w) in &edges {
            if component.contains(a) && component.contains(b) {
                cited.push(format!(
                    "{} then {} in {} ({}:{})",
                    a, b, w.fn_name, w.file, w.line
                ));
                let earlier = anchor.map_or(true, |cur| {
                    (w.file.as_str(), w.line) < (cur.file.as_str(), cur.line)
                });
                if earlier {
                    anchor = Some(w);
                }
            }
        }
        let Some(anchor) = anchor else { continue };
        let locks: Vec<&str> = component.iter().map(String::as_str).collect();
        findings.push(Finding::at(
            "K1",
            Severity::Deny,
            &anchor.file,
            anchor.line,
            anchor.col,
            format!(
                "inconsistent lock-acquisition order: {{{}}} form a cycle in the global \
                 acquisition graph ({}); pick one order and use it everywhere",
                locks.join(", "),
                cited.join("; ")
            ),
            String::new(),
        ));
    }
    findings
}

/// Strongly-connected components with at least two nodes, sorted for
/// deterministic output (Kosaraju on the tiny lock graph).
fn cyclic_components(edges: &BTreeMap<(String, String), Witness>) -> Vec<BTreeSet<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut fwd: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut rev: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
        fwd.entry(a).or_default().push(b);
        rev.entry(b).or_default().push(a);
    }

    // First DFS pass: finish order.
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    let mut order: Vec<&str> = Vec::new();
    for &start in &nodes {
        if visited.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        visited.insert(start);
        while let Some(&(node, edge)) = stack.last() {
            let next = fwd.get(node).and_then(|deps| deps.get(edge)).copied();
            if let Some(last) = stack.last_mut() {
                last.1 += 1;
            }
            match next {
                Some(n) if !visited.contains(n) => {
                    visited.insert(n);
                    stack.push((n, 0));
                }
                Some(_) => {}
                None => {
                    order.push(node);
                    stack.pop();
                }
            }
        }
    }

    // Second pass over the transpose, in reverse finish order.
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut components = Vec::new();
    for &start in order.iter().rev() {
        if assigned.contains(start) {
            continue;
        }
        let mut component = BTreeSet::new();
        let mut stack = vec![start];
        assigned.insert(start);
        while let Some(node) = stack.pop() {
            component.insert(node.to_string());
            for &n in rev.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if assigned.insert(n) {
                    stack.push(n);
                }
            }
        }
        if component.len() >= 2 {
            components.push(component);
        }
    }
    components.sort();
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    const TWO_LOCK_STRUCT: &str = "pub struct Shared {\n\
         \x20   jobs: Mutex<Vec<u32>>,\n\
         \x20   hosts: RwLock<u32>,\n\
         }\n";

    #[test]
    fn inverted_order_across_fns_fires() {
        let src = format!(
            "{TWO_LOCK_STRUCT}impl Shared {{\n\
             \x20   pub fn a(&self) {{ let j = self.jobs.lock(); let h = self.hosts.read(); work(j, h); }}\n\
             \x20   pub fn b(&self) {{ let h = self.hosts.write(); let j = self.jobs.lock(); work(j, h); }}\n\
             }}\n"
        );
        let w = ws(&[("crates/crawler/src/pool.rs", &src)]);
        let f = check_lock_order(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "K1");
        assert!(
            f[0].message.contains("crawler::Shared.jobs"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("crawler::Shared.hosts"));
        assert!(f[0].message.contains("cycle"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{TWO_LOCK_STRUCT}impl Shared {{\n\
             \x20   pub fn a(&self) {{ let j = self.jobs.lock(); let h = self.hosts.read(); work(j, h); }}\n\
             \x20   pub fn b(&self) {{ let j = self.jobs.lock(); let h = self.hosts.write(); work(j, h); }}\n\
             }}\n"
        );
        let w = ws(&[("crates/crawler/src/pool.rs", &src)]);
        assert!(check_lock_order(&w).is_empty());
    }

    #[test]
    fn cross_file_inversion_fires() {
        let a = format!(
            "{TWO_LOCK_STRUCT}impl Shared {{\n\
             \x20   pub fn a(&self) {{ let j = self.jobs.lock(); let h = self.hosts.read(); work(j, h); }}\n\
             }}\n"
        );
        let b = "impl Shared {\n\
             \x20   pub fn b(&self) { let h = self.hosts.write(); let j = self.jobs.lock(); work(j, h); }\n\
             }\n";
        let w = ws(&[
            ("crates/crawler/src/pool.rs", a.as_str()),
            ("crates/crawler/src/steal.rs", b),
        ]);
        let f = check_lock_order(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("steal.rs") || f[0].file.contains("pool.rs"));
    }

    #[test]
    fn same_lock_reacquired_is_clean() {
        let src = "pub struct M { inner: Mutex<u32> }\n\
             impl M {\n\
             \x20   pub fn bump(&self) { self.inner.lock(); self.inner.lock(); }\n\
             }\n";
        let w = ws(&[("crates/net/src/m.rs", src)]);
        assert!(check_lock_order(&w).is_empty());
    }

    #[test]
    fn non_lock_read_write_receivers_ignored() {
        let src = "pub struct F { file: Handle, buf: Mutex<Vec<u8>> }\n\
             impl F {\n\
             \x20   pub fn go(&self) { self.file.read(); self.buf.lock(); }\n\
             \x20   pub fn back(&self) { self.buf.lock(); self.file.read(); }\n\
             }\n";
        let w = ws(&[("crates/net/src/f.rs", src)]);
        assert!(check_lock_order(&w).is_empty(), "file is not a lock field");
    }
}
