//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p aipan-lint -- [--format human|json] [--deny-warnings] [--verbose] [--root DIR] [--allow FILE]
//! cargo run -p aipan-lint -- --explain RULE
//! ```
//!
//! Exit codes: 0 clean (or warnings only, without `--deny-warnings`),
//! 1 findings failed the run, 2 usage or I/O error.

use aipan_lint::allow::Allowlist;
use aipan_lint::{catalog, report, scan};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    json: bool,
    deny_warnings: bool,
    verbose: bool,
    root: Option<PathBuf>,
    allow: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        verbose: false,
        root: None,
        allow: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `cargo lint` aliases to `run -p aipan-lint --`, so a second
            // `--` from `cargo lint -- --json` arrives literally; ignore it.
            "--" => {}
            // `--json` is the legacy spelling of `--format json`.
            "--json" => opts.json = true,
            "--format" => {
                let value = args.next().ok_or("--format needs `human` or `json`")?;
                match value.as_str() {
                    "json" => opts.json = true,
                    "human" => opts.json = false,
                    other => {
                        return Err(format!("--format must be `human` or `json`, got `{other}`"))
                    }
                }
            }
            "--explain" => {
                let id = args.next().ok_or("--explain needs a rule id (e.g. X1)")?;
                match catalog::explain(&id) {
                    Ok(text) => {
                        print!("{text}");
                        std::process::exit(0);
                    }
                    Err(e) => return Err(e),
                }
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--verbose" => opts.verbose = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--allow" => {
                opts.allow = Some(PathBuf::from(
                    args.next().ok_or("--allow needs a file argument")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "aipan-lint: workspace determinism & invariant checks\n\n\
                     USAGE: cargo run -p aipan-lint -- [OPTIONS]\n\n\
                     OPTIONS:\n\
                     \x20 --format FORMAT   output format: human (default) or json\n\
                     \x20 --json            shorthand for --format json\n\
                     \x20 --explain RULE    print the catalog entry for one rule (e.g. X1)\n\
                     \x20 --deny-warnings   any finding fails the run (CI mode)\n\
                     \x20 --verbose         also list allowlist-suppressed findings\n\
                     \x20 --root DIR        workspace root (default: discovered from cwd)\n\
                     \x20 --allow FILE      allowlist path (default: <root>/lint.allow)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("aipan-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| scan::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("aipan-lint: could not locate workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    let allow_path = opts
        .allow
        .clone()
        .unwrap_or_else(|| root.join("lint.allow"));
    let allowlist = if allow_path.is_file() {
        match std::fs::read_to_string(&allow_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Allowlist::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(list) => list,
            Err(e) => {
                eprintln!("aipan-lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let lint_report = match scan::run(&root, allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aipan-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        println!("{}", report::json(&lint_report));
    } else {
        print!("{}", report::human(&lint_report, opts.deny_warnings));
        if opts.verbose {
            for f in &lint_report.suppressed {
                println!(
                    "allowlisted: {}:{}:{}: {} {}: {}",
                    f.file,
                    f.line,
                    f.col,
                    f.severity.name(),
                    f.rule,
                    f.message
                );
            }
        }
    }

    if lint_report.failed(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
