//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p aipan-lint -- [--format human|json|sarif] [--deny-warnings] [--verbose] [--root DIR] [--allow FILE]
//! cargo run -p aipan-lint -- --explain RULE
//! cargo run -p aipan-lint -- --hotpaths
//! cargo run -p aipan-lint -- --contention
//! cargo run -p aipan-lint -- --incremental
//! cargo run -p aipan-lint -- --fix [--dry-run]
//! ```
//!
//! Exit codes: 0 clean (or warnings only, without `--deny-warnings`),
//! 1 findings failed the run (or, under `--fix --dry-run`, fixes are
//! pending), 2 usage or I/O error.

use aipan_lint::allow::Allowlist;
use aipan_lint::{catalog, fix, incremental, report, scan};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Entry chains listed by `--hotpaths`.
const HOTPATHS_TOP: usize = 15;

/// `--fix` re-lints and re-applies until a fixpoint, bounded by this many
/// rounds (hoists can unlock further hoists; anything deeper is a bug).
const MAX_FIX_ROUNDS: usize = 5;

/// Report rendering selected by `--format`.
#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Human,
    Json,
    Sarif,
}

struct Options {
    format: OutputFormat,
    deny_warnings: bool,
    verbose: bool,
    hotpaths: bool,
    contention: bool,
    incremental: bool,
    fix: bool,
    dry_run: bool,
    root: Option<PathBuf>,
    allow: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: OutputFormat::Human,
        deny_warnings: false,
        verbose: false,
        hotpaths: false,
        contention: false,
        incremental: false,
        fix: false,
        dry_run: false,
        root: None,
        allow: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `cargo lint` aliases to `run -p aipan-lint --`, so a second
            // `--` from `cargo lint -- --json` arrives literally; ignore it.
            "--" => {}
            // `--json` is the legacy spelling of `--format json`.
            "--json" => opts.format = OutputFormat::Json,
            "--format" => {
                let value = args
                    .next()
                    .ok_or("--format needs `human`, `json`, or `sarif`")?;
                match value.as_str() {
                    "json" => opts.format = OutputFormat::Json,
                    "human" => opts.format = OutputFormat::Human,
                    "sarif" => opts.format = OutputFormat::Sarif,
                    other => {
                        return Err(format!(
                            "--format must be `human`, `json`, or `sarif`, got `{other}`"
                        ))
                    }
                }
            }
            "--explain" => {
                let id = args.next().ok_or("--explain needs a rule id (e.g. X1)")?;
                match catalog::explain(&id) {
                    Ok(text) => {
                        print!("{text}");
                        std::process::exit(0);
                    }
                    Err(e) => return Err(e),
                }
            }
            "--deny-warnings" => opts.deny_warnings = true,
            "--verbose" => opts.verbose = true,
            "--hotpaths" => opts.hotpaths = true,
            "--contention" => opts.contention = true,
            "--incremental" => opts.incremental = true,
            "--fix" => opts.fix = true,
            "--dry-run" => opts.dry_run = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--allow" => {
                opts.allow = Some(PathBuf::from(
                    args.next().ok_or("--allow needs a file argument")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "aipan-lint: workspace determinism & invariant checks\n\n\
                     USAGE: cargo run -p aipan-lint -- [OPTIONS]\n\n\
                     OPTIONS:\n\
                     \x20 --format FORMAT   output format: human (default), json, or sarif\n\
                     \x20 --json            shorthand for --format json\n\
                     \x20 --explain RULE    print the catalog entry for one rule (e.g. X1)\n\
                     \x20 --hotpaths        rank the costliest pipeline entry chains and exit\n\
                     \x20 --contention      rank lock sites by hot-path held cost and exit\n\
                     \x20 --incremental     reuse the content-hash cache in target/ (same output)\n\
                     \x20 --fix             apply machine-applicable fixes, re-lint to fixpoint\n\
                     \x20 --dry-run         with --fix: print the would-be unified diff instead\n\
                     \x20 --deny-warnings   any finding fails the run (CI mode)\n\
                     \x20 --verbose         also list allowlist-suppressed findings\n\
                     \x20 --root DIR        workspace root (default: discovered from cwd)\n\
                     \x20 --allow FILE      allowlist path (default: <root>/lint.allow)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    if opts.dry_run && !opts.fix {
        return Err("--dry-run only makes sense together with --fix".to_string());
    }
    Ok(opts)
}

/// Load the allowlist fresh from disk (the `--fix` loop re-scans, and
/// `Allowlist` tracks per-run usage, so each scan needs its own copy).
fn load_allowlist(allow_path: &Path) -> Result<Allowlist, String> {
    if !allow_path.is_file() {
        return Ok(Allowlist::default());
    }
    std::fs::read_to_string(allow_path)
        .map_err(|e| e.to_string())
        .and_then(|text| Allowlist::parse(&text).map_err(|e| e.to_string()))
}

/// Pending fix edits per workspace-relative file, from non-allowlisted
/// findings only (allowlisted findings are vetted exceptions, not bugs
/// to rewrite).
fn fixes_by_file(lint_report: &scan::Report) -> BTreeMap<String, Vec<fix::FixEdit>> {
    let mut by_file: BTreeMap<String, Vec<fix::FixEdit>> = BTreeMap::new();
    for f in &lint_report.findings {
        if let Some(fx) = &f.fix {
            by_file
                .entry(f.file.clone())
                .or_default()
                .extend(fx.edits.iter().cloned());
        }
    }
    by_file
}

/// `--fix --dry-run`: print the unified diff of every pending fix; exit 1
/// when any fix is pending (the cleanliness gate), 0 when none.
fn run_dry_run(root: &Path, allow_path: &Path) -> ExitCode {
    let allowlist = match load_allowlist(allow_path) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("aipan-lint: {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    let lint_report = match scan::run(root, allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aipan-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let by_file = fixes_by_file(&lint_report);
    let mut pending = 0usize;
    for (rel, edits) in &by_file {
        let old = match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("aipan-lint: {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let new = fix::apply_edits(&old, edits);
        let diff = fix::unified_diff(rel, &old, &new);
        if !diff.is_empty() {
            pending += 1;
            print!("{diff}");
        }
    }
    println!("aipan-lint --fix --dry-run: {pending} file(s) with pending machine-applicable fixes");
    if pending > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `--fix`: apply pending fixes, re-lint, repeat to a fixpoint, then
/// report like a normal run.
fn run_fix(root: &Path, allow_path: &Path, opts: &Options) -> ExitCode {
    let mut files_rewritten = 0usize;
    for _round in 0..MAX_FIX_ROUNDS {
        let allowlist = match load_allowlist(allow_path) {
            Ok(list) => list,
            Err(e) => {
                eprintln!("aipan-lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        let lint_report = match scan::run(root, allowlist) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("aipan-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let by_file = fixes_by_file(&lint_report);
        let mut changed = false;
        for (rel, edits) in &by_file {
            let path = root.join(rel);
            let old = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("aipan-lint: {rel}: {e}");
                    return ExitCode::from(2);
                }
            };
            let new = fix::apply_edits(&old, edits);
            if new != old {
                if let Err(e) = std::fs::write(&path, &new) {
                    eprintln!("aipan-lint: {rel}: {e}");
                    return ExitCode::from(2);
                }
                files_rewritten += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let allowlist = match load_allowlist(allow_path) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("aipan-lint: {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };
    let lint_report = match scan::run(root, allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aipan-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!("aipan-lint --fix: rewrote {files_rewritten} file(s)");
    print!("{}", report::human(&lint_report, opts.deny_warnings));
    if lint_report.failed(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("aipan-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| scan::find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("aipan-lint: could not locate workspace root (try --root)");
            return ExitCode::from(2);
        }
    };

    if opts.hotpaths {
        return match scan::hotpaths(&root, HOTPATHS_TOP) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aipan-lint: hotpath analysis failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    if opts.contention {
        return match scan::contention(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("aipan-lint: contention analysis failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let allow_path = opts
        .allow
        .clone()
        .unwrap_or_else(|| root.join("lint.allow"));

    if opts.incremental {
        let (lint_report, stats) = match incremental::run_incremental(&root, &allow_path) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("aipan-lint: incremental scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        // Stats go to stderr so stdout stays byte-identical to a plain run.
        eprintln!("aipan-lint --incremental: {}", stats.summary());
        match opts.format {
            OutputFormat::Json => println!("{}", report::json(&lint_report)),
            OutputFormat::Sarif => println!("{}", report::sarif(&lint_report)),
            OutputFormat::Human => print!("{}", report::human(&lint_report, opts.deny_warnings)),
        }
        return if lint_report.failed(opts.deny_warnings) {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    if opts.fix {
        return if opts.dry_run {
            run_dry_run(&root, &allow_path)
        } else {
            run_fix(&root, &allow_path, &opts)
        };
    }

    let allowlist = match load_allowlist(&allow_path) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("aipan-lint: {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };

    let lint_report = match scan::run(&root, allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aipan-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    match opts.format {
        OutputFormat::Json => println!("{}", report::json(&lint_report)),
        OutputFormat::Sarif => println!("{}", report::sarif(&lint_report)),
        OutputFormat::Human => {
            print!("{}", report::human(&lint_report, opts.deny_warnings));
            if opts.verbose {
                for f in &lint_report.suppressed {
                    println!(
                        "allowlisted: {}:{}:{}: {} {}: {}",
                        f.file,
                        f.line,
                        f.col,
                        f.severity.name(),
                        f.rule,
                        f.message
                    );
                }
            }
        }
    }

    if lint_report.failed(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
