//! Numeric-safety rules `N1`/`N2`, built on the [`crate::types`] layer.
//!
//! **`N1` lossy numeric cast** (Deny): an `as` cast whose operand has
//! corpus-scale provenance (see [`crate::types::TyFact::scale`]) and
//! whose classification is [`CastKind::Lossy`] — narrowing, sign
//! change, or float truncation. A page count that fits `u32` on the
//! paper's 56-domain corpus silently wraps at the 10–100× scale the
//! pipeline targets; scale provenance is what keeps the rule off index
//! arithmetic and protocol constants. A provably lossless widening cast
//! with an exact std `From` impl is reported at Warn with a
//! machine-applicable fix rewriting `x as u64` to `u64::from(x)` (the
//! cast keeps compiling if the operand's type ever widens; the `From`
//! form stops it). Widenings *without* a `From` impl (`u32 as usize`)
//! and same-width `Noop` casts are exempt.
//!
//! **`N2` unchecked counter arithmetic** (Warn): a compound assignment
//! (`+=`, `-=`, `*=`, `<<=`) to a place of provable integer type with
//! corpus-scale provenance, inside a fn of the pipeline hot set. Debug
//! builds panic on overflow and release builds wrap silently — a
//! serialized counter that wraps corrupts every downstream report.
//! Saturating/checked combinators make the policy visible at the site;
//! `TY_PRESERVING_METHODS` keeps their results typed, so the rewrite
//! does not degrade inference.
//!
//! Approximation directions (DESIGN.md §6a): both rules require a
//! *provable* type on the deciding side (operand for `N1`, assignee for
//! `N2`) — `Ty::Unknown` stays silent, so the type layer's
//! under-approximation makes the rules under-fire, never over-fire.
//! Scale provenance over-approximates, but only ever gates sites the
//! type facts already convicted.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::cost::{self, CostModel};
use crate::dataflow;
use crate::expr::{for_each_child, Expr, ExprKind};
use crate::findings::{Finding, Severity};
use crate::fix::{Fix, FixEdit};
use crate::graph::{AnalyzedFile, Workspace};
use crate::types::{self, CastKind, LocalTypes, Ty, TyFact, TypeIndex};
use std::collections::BTreeMap;

/// Compound-assign operators `N2` treats as unchecked arithmetic, with
/// the saturating/checked combinator the message suggests.
const UNCHECKED_OPS: &[(&str, &str)] = &[
    ("+=", "saturating_add"),
    ("-=", "saturating_sub"),
    ("*=", "saturating_mul"),
    ("<<=", "checked_shl"),
];

/// Short description of a cast operand for messages: a plain path
/// renders itself (`self.total`, `n`), anything else its type.
fn operand_desc(operand: &Expr, src: &Ty) -> String {
    match operand.plain_path() {
        Some(segs) => format!("`{}`", segs.join(".")),
        None => format!("this `{}` value", src.name()),
    }
}

/// Build the `u64::from(x)` rewrite for a widening cast, when the site
/// is textually simple enough to prove the span: a single-segment
/// operand and a single-token target type on one source line, matching
/// `name as ty` exactly. Returns `None` otherwise — the finding then
/// ships without a fix rather than with a guessed span.
fn widen_fix(file: &AnalyzedFile, operand: &Expr, ty: &[String], dst: &Ty) -> Option<Fix> {
    let [name] = operand.plain_path()?.try_into().ok()?;
    let [ty_tok] = ty else { return None };
    let line_text = file.lines.get(operand.line.checked_sub(1)? as usize)?;
    let rest = line_text.get(operand.col.saturating_sub(1) as usize..)?;
    let after_name = rest.strip_prefix(name.as_str())?;
    let after_ws = after_name.trim_start();
    let after_as = after_ws.strip_prefix("as")?;
    if !after_as.starts_with(char::is_whitespace) {
        return None;
    }
    let after_ty = after_as.trim_start().strip_prefix(ty_tok.as_str())?;
    if after_ty
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':' || c == '<')
    {
        return None;
    }
    let span_len = rest.len() - after_ty.len();
    let start = crate::fix::offset_in_lines(&file.lines, operand.line, operand.col);
    Some(Fix {
        title: format!("replace `as {ty_tok}` with `{}::from(..)`", dst.name()),
        edits: vec![FixEdit {
            start,
            end: start + span_len,
            replacement: format!("{}::from({name})", dst.name()),
        }],
    })
}

/// Shared per-site context for the expression walk.
struct SiteCtx<'w, 'g> {
    lt: &'w LocalTypes<'w>,
    file: &'g AnalyzedFile,
    hot_witness: Option<String>,
    findings: &'w mut Vec<Finding>,
}

/// Walk one expression tree under the facts holding before its step,
/// emitting `N1`/`N2` findings. Control-flow subexpressions are hoisted
/// into their own CFG steps, so the walk must not descend into them.
fn walk(ctx: &mut SiteCtx<'_, '_>, fact: &BTreeMap<String, TyFact>, e: &Expr) {
    if e.is_control() {
        return;
    }
    match &e.kind {
        ExprKind::Cast { operand, ty } => {
            let dst = Ty::from_tokens_with(ty, ctx.lt.self_ty.as_deref());
            let src_fact = ctx.lt.infer(fact, operand);
            if src_fact.scale {
                match types::classify_cast(&src_fact.ty, &dst) {
                    CastKind::Lossy(reason) => {
                        ctx.findings.push(Finding::at(
                            "N1",
                            Severity::Deny,
                            &ctx.file.parsed.rel_path,
                            e.line,
                            e.col,
                            format!(
                                "{} is a corpus-scale `{}` cast to `{}` with `as` — {reason} \
                                 at 10-100x corpus scale; use `{}::try_from` with explicit \
                                 overflow handling or keep the wider type",
                                operand_desc(operand, &src_fact.ty),
                                src_fact.ty.name(),
                                dst.name(),
                                dst.name(),
                            ),
                            ctx.file.snippet(e.line),
                        ));
                    }
                    CastKind::Widen { from_impl: true } => {
                        let mut finding = Finding::at(
                            "N1",
                            Severity::Warn,
                            &ctx.file.parsed.rel_path,
                            e.line,
                            e.col,
                            format!(
                                "{} is a corpus-scale `{}` widened to `{}` with `as`; \
                                 `{}::from` is lossless and keeps the site honest if the \
                                 operand's type ever changes",
                                operand_desc(operand, &src_fact.ty),
                                src_fact.ty.name(),
                                dst.name(),
                                dst.name(),
                            ),
                            ctx.file.snippet(e.line),
                        );
                        finding.fix = widen_fix(ctx.file, operand, ty, &dst);
                        ctx.findings.push(finding);
                    }
                    CastKind::Widen { from_impl: false } | CastKind::Noop | CastKind::Opaque => {}
                }
            }
        }
        ExprKind::Assign { op, lhs, rhs } => {
            if let Some((_, suggest)) = UNCHECKED_OPS.iter().find(|(o, _)| o == op) {
                if let Some(witness) = &ctx.hot_witness {
                    // Plain-path places only: `*count += 1` through a
                    // deref has no provable place type here.
                    if let Some(segs) = lhs.plain_path() {
                        let lf = ctx.lt.infer(fact, lhs);
                        if lf.ty.is_integer() && lf.scale {
                            ctx.findings.push(Finding::at(
                                "N2",
                                Severity::Warn,
                                &ctx.file.parsed.rel_path,
                                e.line,
                                e.col,
                                format!(
                                    "unchecked `{op}` on corpus-scale `{}` counter `{}` \
                                     (hot path: {witness}); overflow wraps silently in \
                                     release builds — use `{suggest}`",
                                    lf.ty.name(),
                                    segs.join("."),
                                ),
                                ctx.file.snippet(e.line),
                            ));
                        }
                    }
                }
            }
            // Still scan both sides: the rhs may contain a lossy cast.
            walk(ctx, fact, lhs);
            walk(ctx, fact, rhs);
            return;
        }
        _ => {}
    }
    walk_children(ctx, fact, e);
}

/// Recurse into non-control children.
fn walk_children(ctx: &mut SiteCtx<'_, '_>, fact: &BTreeMap<String, TyFact>, e: &Expr) {
    let mut kids = Vec::new();
    for_each_child(e, &mut |c| kids.push(c));
    for c in kids {
        walk(ctx, fact, c);
    }
}

/// Run the `N1`/`N2` passes over every call-graph fn.
pub fn check_numeric(
    ws: &Workspace,
    graph: &CallGraph<'_>,
    model: &CostModel,
    index: &TypeIndex,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let lt = LocalTypes::new(index, node);
        let cfg = Cfg::build(&node.info.body);
        let facts = types::solve_fn(&lt, &cfg);
        let hot_witness = model.is_hot(id).then(|| {
            model
                .hot_path(graph, id)
                .unwrap_or_else(|| node.name.to_string())
        });
        let mut ctx = SiteCtx {
            lt: &lt,
            file,
            hot_witness,
            findings: &mut findings,
        };
        for (nid, cfg_node) in cfg.nodes.iter().enumerate() {
            let Some(fact_in) = facts.get(nid).and_then(|f| f.as_ref()) else {
                continue;
            };
            dataflow::replay(&lt, &cfg_node.steps, fact_in, &mut |step, fact| {
                for e in cost::step_exprs(step) {
                    walk(&mut ctx, fact, e);
                }
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = Workspace::build(&owned);
        let graph = CallGraph::build(&ws);
        let model = CostModel::build(&ws, &graph);
        let index = TypeIndex::build(&ws);
        check_numeric(&ws, &graph, &model, &index)
    }

    #[test]
    fn lossy_cast_on_corpus_scale_operand_denies() {
        let findings = run(&[(
            "crates/core/src/lib.rs",
            "pub fn f(xs: &[u8]) -> Result<u32, ()> {\n\
                 let n = xs.len();\n\
                 Ok(n as u32)\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = findings.first().expect("finding");
        assert_eq!((f.rule, f.severity), ("N1", Severity::Deny));
        assert_eq!(f.line, 3);
        assert!(f.message.contains("narrowing truncates"), "{}", f.message);
        assert!(f.fix.is_none(), "lossy casts get no autofix");
    }

    #[test]
    fn widening_with_from_impl_warns_and_carries_the_rewrite() {
        let src = "pub fn f(page_count: u32) -> u64 {\n    page_count as u64\n}\n";
        let findings = run(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = findings.first().expect("finding");
        assert_eq!((f.rule, f.severity), ("N1", Severity::Warn));
        let fix = f.fix.as_ref().expect("widening fix");
        assert_eq!(fix.edits.len(), 1);
        let edit = fix.edits.first().expect("edit");
        assert_eq!(edit.replacement, "u64::from(page_count)");
        let fixed = crate::fix::apply_edits(src, &fix.edits);
        assert!(
            fixed.contains("u64::from(page_count)") && !fixed.contains(" as u64"),
            "{fixed}"
        );
    }

    #[test]
    fn widening_without_from_impl_and_noop_casts_are_exempt() {
        let findings = run(&[(
            "crates/core/src/lib.rs",
            "pub fn f(xs: &[u8]) -> u64 {\n\
                 let n = xs.len();\n\
                 let narrow = 3u32;\n\
                 let _as_usize = narrow as usize;\n\
                 n as u64\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn non_scale_operands_are_exempt() {
        let findings = run(&[(
            "crates/core/src/lib.rs",
            "pub fn f(flags: u64) -> u32 {\n\
                 flags as u32\n\
             }\n",
        )]);
        assert!(
            findings.is_empty(),
            "non-scale narrowing tolerated: {findings:?}"
        );
    }

    #[test]
    fn unchecked_counter_add_in_hot_fn_warns() {
        let findings = run(&[(
            "crates/core/src/lib.rs",
            "pub struct Funnel { pub pages_total: u64 }\n\
             fn bump(f: &mut Funnel) { f.pages_total += 1; }\n\
             pub fn run_pipeline(f: &mut Funnel, domains: &[String]) {\n\
                 for _d in domains { bump(f); }\n\
             }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = findings.first().expect("finding");
        assert_eq!((f.rule, f.severity), ("N2", Severity::Warn));
        assert!(f.message.contains("saturating_add"), "{}", f.message);
        assert!(f.message.contains("hot path:"), "{}", f.message);
    }

    #[test]
    fn saturating_rewrite_and_cold_fns_are_clean() {
        let findings = run(&[(
            "crates/core/src/lib.rs",
            "pub struct Funnel { pub pages_total: u64 }\n\
             fn bump(f: &mut Funnel) {\n\
                 f.pages_total = f.pages_total.saturating_add(1);\n\
             }\n\
             fn cold_bump(f: &mut Funnel) { f.pages_total += 1; }\n\
             pub fn run_pipeline(f: &mut Funnel, domains: &[String]) {\n\
                 for _d in domains { bump(f); }\n\
             }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unknown_typed_places_stay_silent() {
        let findings = run(&[(
            "crates/core/src/lib.rs",
            "pub fn run_pipeline(domains: &[String]) {\n\
                 let mut total = 0;\n\
                 for _d in domains { total += 1; }\n\
             }\n",
        )]);
        assert!(
            findings.is_empty(),
            "unsuffixed literal stays Unknown: {findings:?}"
        );
    }
}
