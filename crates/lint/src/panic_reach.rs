//! `X1`: interprocedural panic-reachability for public API surface.
//!
//! A library fn that can panic turns a recoverable pipeline error into an
//! abort — and a *transitively* reachable panic is invisible at the call
//! site. This pass finds per-fn **panic seeds**, propagates reachability
//! backward over the import-aware [`crate::callgraph`], and flags every
//! `pub` fn of library code from which a seed is reachable, with a
//! witness call path.
//!
//! Seeds, per fn body:
//!
//! - `xs[i]` — indexing a plain place by a plain (possibly `as`-cast)
//!   variable, unless a dominating bounds fact proves `i < xs.len()`;
//! - integer `/` or `%` whose divisor is not proved nonzero (a nonzero
//!   literal or a `.max(<nonzero literal>)` chain); float arithmetic is
//!   exempt, recognized syntactically — casts, float literals,
//!   `sum::<f64>()` turbofish, float math methods, and a per-fn
//!   environment of float-typed params and `let` bindings;
//! - `.unwrap()` / `.expect(..)`;
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
//!
//! The bounds facts come from a *must*-dataflow over the fn's CFG
//! (intersection join — a fact holds only if every path establishes it):
//! the `True` edge of `i < xs.len()` (or the `False` edge of its
//! negation) proves the pair, `for i in 0..xs.len()` and
//! `for (i, _) in xs.iter().enumerate()` prove it for the loop body, and
//! `let n = xs.len()` makes `i < n` count. Any write to `i`, rebinding,
//! `&mut xs`, or a length-changing method on `xs` kills the fact.
//!
//! Approximation notes. **Over**: a diverging guard (`if i >= xs.len()
//! {{ return; }}` without else) is understood (the `False` edge carries
//! the fact), but arithmetic index forms (`xs[i + 1]`), `i <= n - 1`
//! comparisons, and assert!-style guards are not — rewrite to a
//! recognized guard or `.get()`. Calls whose resolution is unknown are
//! assumed *non*-panicking, so **under**: a panic behind a trait object
//! or foreign callback is missed. Literal indices, range slicing, and
//! call-result indexing are out of scope (mostly shape-guaranteed;
//! flagging them would be all noise).

use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, Edge, Step};
use crate::dataflow::{self, Analysis};
use crate::expr::{for_each_child, for_each_let, Expr, ExprKind, Pat, Stmt};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::parser::Param;
use std::collections::BTreeSet;

/// Run the `X1` pass over an analyzed workspace and its call graph.
pub fn check_panic_reach(ws: &Workspace, graph: &CallGraph<'_>) -> Vec<Finding> {
    let seeds: Vec<Option<Seed>> = graph
        .fns
        .iter()
        .map(|f| local_seed(&f.info.body, &f.info.params))
        .collect();
    let reach = propagate(graph, &seeds);
    let mut findings = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        if !node.is_pub {
            continue;
        }
        let Some(r) = reach.get(id).and_then(|r| r.as_ref()) else {
            continue;
        };
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        findings.push(Finding::at(
            "X1",
            Severity::Deny,
            &file.parsed.rel_path,
            node.line,
            node.col,
            describe(graph, ws, id, r, &reach),
            file.snippet(node.line),
        ));
    }
    findings
}

/// A local panic seed inside one fn body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Seed {
    /// 1-based line of the seed expression.
    line: u32,
    /// 1-based column of the seed expression.
    col: u32,
    /// Human description of why this can panic.
    desc: String,
}

/// How a fn reaches a panic: its own seed, or a call into a fn that does.
#[derive(Debug, Clone)]
enum Reach {
    Local(Seed),
    Via { callee: usize },
}

/// Backward reachability over the call graph (BFS from seeded fns, in id
/// order — deterministic witness edges).
fn propagate(graph: &CallGraph<'_>, seeds: &[Option<Seed>]) -> Vec<Option<Reach>> {
    let n = graph.fns.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            if let Some(v) = rev.get_mut(e.to) {
                v.push(caller);
            }
        }
    }
    let mut reach: Vec<Option<Reach>> = seeds.iter().map(|s| s.clone().map(Reach::Local)).collect();
    let mut queue: Vec<usize> = reach
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_some().then_some(i))
        .collect();
    let mut head = 0usize;
    while let Some(cur) = queue.get(head).copied() {
        head += 1;
        let callers = rev.get(cur).cloned().unwrap_or_default();
        for caller in callers {
            if let Some(slot) = reach.get_mut(caller) {
                if slot.is_none() {
                    *slot = Some(Reach::Via { callee: cur });
                    queue.push(caller);
                }
            }
        }
    }
    reach
}

/// Render the finding message: witness call path plus the seed.
fn describe(
    graph: &CallGraph<'_>,
    ws: &Workspace,
    start: usize,
    r: &Reach,
    reach: &[Option<Reach>],
) -> String {
    let mut path: Vec<String> = Vec::new();
    if let Some(f) = graph.fns.get(start) {
        path.push(f.name.to_string());
    }
    let mut cur = r.clone();
    let mut at = start;
    let mut hops = 0usize;
    let seed = loop {
        match cur {
            Reach::Local(s) => break Some(s),
            Reach::Via { callee, .. } => {
                hops += 1;
                if hops > 8 {
                    break None;
                }
                if let Some(f) = graph.fns.get(callee) {
                    path.push(f.name.to_string());
                }
                at = callee;
                match reach.get(callee).and_then(|r| r.clone()) {
                    Some(next) => cur = next,
                    None => break None,
                }
            }
        }
    };
    let seed_file = graph
        .fns
        .get(at)
        .and_then(|f| ws.files.get(f.file))
        .map(|f| f.parsed.rel_path.as_str())
        .unwrap_or("?");
    match seed {
        Some(s) => {
            if path.len() > 1 {
                format!(
                    "pub fn `{}` can reach a panic (call path {}): {} at {}:{}",
                    path.first().map(String::as_str).unwrap_or("?"),
                    path.join(" -> "),
                    s.desc,
                    seed_file,
                    s.line,
                )
            } else {
                format!(
                    "pub fn `{}` can panic: {} at line {}",
                    path.first().map(String::as_str).unwrap_or("?"),
                    s.desc,
                    s.line,
                )
            }
        }
        None => format!(
            "pub fn `{}` can reach a panic through a call chain deeper than 8 \
             (path starts {})",
            path.first().map(String::as_str).unwrap_or("?"),
            path.join(" -> "),
        ),
    }
}

/// Find the earliest (line, col) panic seed in a fn body, with bounds
/// proofs applied.
fn local_seed(body: &[Stmt], params: &[Param]) -> Option<Seed> {
    let env = NameEnv::collect(body, params);
    let cfg = Cfg::build(body);
    let facts = dataflow::solve(&cfg, &Bounds);
    let mut seeds: Vec<Seed> = Vec::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let Some(fact_in) = facts.get(id).and_then(|f| f.as_ref()) else {
            continue;
        };
        dataflow::replay(&Bounds, &node.steps, fact_in, &mut |step, fact| {
            match step {
                Step::Eval(e) | Step::Cond(e) => scan_expr(e, fact, &env, &mut seeds),
                Step::Bind { init: Some(e), .. } => scan_expr(e, fact, &env, &mut seeds),
                Step::ForHead { iter, .. } => scan_expr(iter, fact, &env, &mut seeds),
                // PatBind's `from` is the already-scanned scrutinee Eval.
                Step::Bind { init: None, .. } | Step::PatBind { .. } => {}
            }
        });
    }
    seeds.into_iter().min()
}

/// Per-fn name facts for the division seed, collected flow-insensitively
/// over `let` bindings in source order (a later shadow with a different
/// shape drops the name again): `floats` are float-typed names whose
/// division yields inf/NaN rather than panicking; `nonzero` are names
/// bound to a shape-proved nonzero value (`let n = xs.count().max(1)`).
/// A plain `name = expr` re-assignment does *not* drop a name — an
/// accepted over-approximation, noted in the module docs.
struct NameEnv {
    floats: BTreeSet<String>,
    nonzero: BTreeSet<String>,
}

impl NameEnv {
    fn collect(body: &[Stmt], params: &[Param]) -> NameEnv {
        let mut env = NameEnv {
            floats: params
                .iter()
                .filter(|p| is_float_ty(&p.ty))
                .map(|p| p.name.clone())
                .collect(),
            nonzero: BTreeSet::new(),
        };
        for_each_let(body, &mut |pat, ty, init| {
            if let Pat::Ident { name, .. } = pat {
                let is_float =
                    is_float_ty(ty) || init.is_some_and(|e| is_float_operand(e, &env.floats));
                if is_float {
                    env.floats.insert(name.clone());
                } else {
                    env.floats.remove(name);
                }
                if init.is_some_and(divisor_is_nonzero_literal) {
                    env.nonzero.insert(name.clone());
                } else {
                    env.nonzero.remove(name);
                }
            }
        });
        env
    }
}

/// A declared type that is exactly a (possibly referenced) float scalar.
/// Deliberately *not* "mentions f64": `&[f64]` is a slice, and indexing
/// or `.len()` arithmetic on it is integer work.
fn is_float_ty(ty: &[String]) -> bool {
    !ty.is_empty()
        && ty
            .iter()
            .all(|t| matches!(t.as_str(), "&" | "mut" | "f64" | "f32"))
        && ty.iter().any(|t| t == "f64" || t == "f32")
}

/// Scan one expression tree for seeds, skipping control-flow children
/// (they are separate CFG steps).
fn scan_expr(e: &Expr, fact: &BoundsFact, env: &NameEnv, out: &mut Vec<Seed>) {
    match &e.kind {
        // Short-circuit: the rhs of `a && b` only evaluates with `a`
        // known true (dually `||`/false), so scan it under those facts —
        // `i < xs.len() && xs[i] == 0` is proved inside the condition
        // itself, not just on its True edge.
        ExprKind::Binary { op, lhs, rhs } if op == "&&" || op == "||" => {
            scan_expr(lhs, fact, env, out);
            let mut rhs_fact = fact.clone();
            gen_cond(lhs, op == "&&", &mut rhs_fact);
            scan_expr(rhs, &rhs_fact, env, out);
            return;
        }
        ExprKind::Index { base, index } => {
            if let (Some(b), Some(i)) = (place_name(base), ident_name(index)) {
                if !fact.pairs.contains(&(i.to_string(), b.clone())) {
                    out.push(Seed {
                        line: e.line,
                        col: e.col,
                        desc: format!(
                            "possibly out-of-bounds `{b}[{i}]` \
                             (no dominating `{i} < {b}.len()` on every path)"
                        ),
                    });
                }
            }
        }
        ExprKind::Binary { op, lhs, rhs } if op == "/" || op == "%" => {
            // Float division yields inf/NaN, it never panics; only
            // integer division with a possibly-zero divisor seeds.
            if !divisor_is_nonzero_literal(rhs)
                && !matches!(ident_name(rhs), Some(n) if env.nonzero.contains(n))
                && !is_float_operand(lhs, &env.floats)
                && !is_float_operand(rhs, &env.floats)
            {
                out.push(Seed {
                    line: e.line,
                    col: e.col,
                    desc: format!("`{op}` with a possibly-zero integer divisor"),
                });
            }
        }
        ExprKind::MethodCall { name, .. } if name == "unwrap" || name == "expect" => {
            out.push(Seed {
                line: e.line,
                col: e.col,
                desc: format!("`.{name}()` panics on the None/Err case"),
            });
        }
        ExprKind::MacroCall { path, .. } => {
            let last = path.last().map(String::as_str).unwrap_or("");
            if matches!(last, "panic" | "unreachable" | "todo" | "unimplemented") {
                out.push(Seed {
                    line: e.line,
                    col: e.col,
                    desc: format!("explicit `{last}!`"),
                });
            }
        }
        _ => {}
    }
    for_each_child(e, &mut |c| {
        if !c.is_control() {
            scan_expr(c, fact, env, out);
        }
    });
}

/// Syntactically float: an `as f64`/`as f32` cast, a float literal, a
/// name from the fn's float environment, a `sum::<f64>()`-style
/// turbofish, float-only math methods, `max`/`min`/`clamp` with a float
/// argument — or an arithmetic/negated/method-chained form thereof.
fn is_float_operand(e: &Expr, floats: &BTreeSet<String>) -> bool {
    match &e.kind {
        ExprKind::Cast { ty, .. } => is_float_ty(ty),
        ExprKind::Lit(text) => is_float_literal(text),
        ExprKind::Path(segs) => matches!(segs.as_slice(), [one] if floats.contains(one)),
        ExprKind::Unary { operand, .. } => is_float_operand(operand, floats),
        ExprKind::Binary { op, lhs, rhs } if matches!(op.as_str(), "+" | "-" | "*" | "/") => {
            is_float_operand(lhs, floats) || is_float_operand(rhs, floats)
        }
        ExprKind::MethodCall {
            recv,
            name,
            turbofish,
            args,
        } => {
            // Float math chains: `(..).sqrt()`, `x.max(0.0)`,
            // `iter.sum::<f64>()`, ...
            matches!(
                name.as_str(),
                "sqrt" | "ln" | "log2" | "log10" | "exp" | "powi" | "powf"
            ) || turbofish.iter().any(|t| t == "f64" || t == "f32")
                || (matches!(
                    name.as_str(),
                    "max" | "min" | "clamp" | "abs" | "floor" | "ceil" | "round"
                ) && args.iter().any(|a| is_float_operand(a, floats)))
                || is_float_operand(recv, floats)
        }
        _ => false,
    }
}

/// A float literal: digit-led with a decimal point, an `e`/`E` exponent
/// (hex `0x…` excluded), or an explicit `f64`/`f32` suffix.
fn is_float_literal(text: &str) -> bool {
    text.bytes().next().is_some_and(|b| b.is_ascii_digit())
        && !text.starts_with("0x")
        && !text.starts_with("0X")
        && (text.contains('.')
            || text.contains('e')
            || text.contains('E')
            || text.ends_with("f64")
            || text.ends_with("f32"))
}

/// Divisors proved nonzero by shape: a nonzero literal (through casts
/// and negation), or `expr.max(<nonzero positive literal>)`.
fn divisor_is_nonzero_literal(rhs: &Expr) -> bool {
    match &rhs.kind {
        ExprKind::Lit(text) => !is_zero_literal(text),
        ExprKind::Unary { op: '-', operand } | ExprKind::Cast { operand, .. } => {
            divisor_is_nonzero_literal(operand)
        }
        ExprKind::MethodCall { name, args, .. } if name == "max" => {
            // `n.max(1)` ≥ 1 regardless of `n` (a negative literal would
            // not prove it, so require a bare nonzero literal).
            matches!(
                args.as_slice(),
                [a] if matches!(&a.kind, ExprKind::Lit(t) if !is_zero_literal(t))
            )
        }
        _ => false,
    }
}

fn is_zero_literal(text: &str) -> bool {
    let digits = text
        .split(|c| c == 'u' || c == 'i' || c == 'f' || c == '_')
        .next()
        .unwrap_or("");
    !digits.is_empty() && digits.chars().all(|c| c == '0' || c == '.')
}

/// Dotted name of a plain place expression (`xs`, `self.goto`).
fn place_name(e: &Expr) -> Option<String> {
    e.plain_path().map(|segs| segs.join("."))
}

/// A plain single-identifier index, with `as`-casts stripped.
fn ident_name(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [single] => Some(single.as_str()),
            _ => None,
        },
        ExprKind::Cast { operand, .. } => ident_name(operand),
        _ => None,
    }
}

/// The base of an `xs.len()` call, as a dotted place name.
fn len_call_base(e: &Expr) -> Option<String> {
    if let ExprKind::MethodCall {
        recv, name, args, ..
    } = &e.kind
    {
        if name == "len" && args.is_empty() {
            return place_name(recv);
        }
    }
    None
}

/// Must-facts: `pairs` holds `(i, xs)` meaning `i < xs.len()`; `aliases`
/// holds `(n, xs)` meaning `n == xs.len()`.
#[derive(Debug, Clone, PartialEq, Default)]
struct BoundsFact {
    pairs: BTreeSet<(String, String)>,
    aliases: BTreeSet<(String, String)>,
}

impl BoundsFact {
    /// Drop every fact mentioning `name` on either side.
    fn kill_name(&mut self, name: &str) {
        self.pairs.retain(|(i, b)| i != name && b != name);
        self.aliases.retain(|(n, b)| n != name && b != name);
    }

    /// Drop every fact about the place `base` (its length may change).
    fn kill_base(&mut self, base: &str) {
        self.pairs.retain(|(_, b)| b != base);
        self.aliases.retain(|(_, b)| b != base);
    }
}

/// Methods that can change a container's length.
const LEN_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "truncate",
    "resize",
    "extend",
    "append",
    "drain",
    "retain",
    "dedup",
    "split_off",
    "swap_remove",
    "take",
];

struct Bounds;

impl<'a> Analysis<'a> for Bounds {
    type Fact = BoundsFact;

    fn boundary(&self) -> BoundsFact {
        BoundsFact::default()
    }

    fn join(&self, acc: &mut BoundsFact, other: &BoundsFact) {
        acc.pairs.retain(|p| other.pairs.contains(p));
        acc.aliases.retain(|p| other.aliases.contains(p));
    }

    fn step(&self, step: &Step<'a>, fact: &mut BoundsFact) {
        match step {
            Step::Eval(e) | Step::Cond(e) => kill_effects(e, fact),
            Step::Bind { pat, init, .. } => {
                if let Some(init) = init {
                    kill_effects(init, fact);
                }
                let mut names = Vec::new();
                pat.bound_names(&mut names);
                for n in &names {
                    fact.kill_name(n);
                }
                if let (Pat::Ident { name, .. }, Some(init)) = (pat, init) {
                    if let Some(base) = len_call_base(init) {
                        fact.aliases.insert((name.clone(), base));
                    }
                }
            }
            Step::PatBind { pat, .. } => {
                let mut names = Vec::new();
                pat.bound_names(&mut names);
                for n in &names {
                    fact.kill_name(n);
                }
            }
            Step::ForHead { pat, iter } => {
                kill_effects(iter, fact);
                let mut names = Vec::new();
                pat.bound_names(&mut names);
                for n in &names {
                    fact.kill_name(n);
                }
            }
        }
    }

    fn edge(&self, branch: Option<&Step<'a>>, label: Edge, fact: &mut BoundsFact) {
        match branch {
            Some(Step::Cond(e)) => match label {
                Edge::True => gen_cond(e, true, fact),
                Edge::False => gen_cond(e, false, fact),
                Edge::Seq => {}
            },
            Some(Step::ForHead { pat, iter }) if label == Edge::True => {
                gen_for(pat, iter, fact);
            }
            _ => {}
        }
    }
}

/// Learn bounds facts from a condition known `positive` (or known false).
fn gen_cond(e: &Expr, positive: bool, fact: &mut BoundsFact) {
    match &e.kind {
        ExprKind::Unary { op: '!', operand } => gen_cond(operand, !positive, fact),
        ExprKind::Binary { op, lhs, rhs } => match op.as_str() {
            "&&" if positive => {
                gen_cond(lhs, true, fact);
                gen_cond(rhs, true, fact);
            }
            "||" if !positive => {
                gen_cond(lhs, false, fact);
                gen_cond(rhs, false, fact);
            }
            "<" if positive => gen_upper_bound(lhs, rhs, fact),
            ">" if positive => gen_upper_bound(rhs, lhs, fact),
            ">=" if !positive => gen_upper_bound(lhs, rhs, fact),
            "<=" if !positive => gen_upper_bound(rhs, lhs, fact),
            _ => {}
        },
        _ => {}
    }
}

/// Record `small < big.len()` when `small` is a plain index and `big` is
/// a `len()` call or a recorded length alias.
fn gen_upper_bound(small: &Expr, big: &Expr, fact: &mut BoundsFact) {
    let Some(idx) = ident_name(small) else {
        return;
    };
    if let Some(base) = len_call_base(big) {
        fact.pairs.insert((idx.to_string(), base));
        return;
    }
    if let Some(n) = ident_name(big) {
        let bases: Vec<String> = fact
            .aliases
            .iter()
            .filter(|(alias, _)| alias == n)
            .map(|(_, base)| base.clone())
            .collect();
        for base in bases {
            fact.pairs.insert((idx.to_string(), base));
        }
    }
}

/// Loop-head proofs: `for i in 0..xs.len()` and
/// `for (i, _) in xs.iter().enumerate()`.
fn gen_for(pat: &Pat, iter: &Expr, fact: &mut BoundsFact) {
    match (&iter.kind, pat) {
        (
            ExprKind::Range {
                hi: Some(hi),
                inclusive: false,
                ..
            },
            Pat::Ident { name, .. },
        ) => {
            if let Some(base) = len_call_base(hi) {
                fact.pairs.insert((name.clone(), base));
            }
        }
        (ExprKind::MethodCall { recv, name, .. }, Pat::Tuple(elems)) if name == "enumerate" => {
            let Some(Pat::Ident { name: idx, .. }) = elems.first() else {
                return;
            };
            if let ExprKind::MethodCall {
                recv: inner,
                name: m,
                ..
            } = &recv.kind
            {
                if m == "iter" || m == "iter_mut" {
                    if let Some(base) = place_name(inner) {
                        fact.pairs.insert((idx.clone(), base));
                    }
                }
            }
        }
        _ => {}
    }
}

/// Apply an expression's *kill* effects: writes to an index variable,
/// `&mut` on a place, or a length-changing method call. Control-flow
/// children are separate steps and skipped.
fn kill_effects(e: &Expr, fact: &mut BoundsFact) {
    match &e.kind {
        ExprKind::Assign { lhs, .. } => {
            if let Some(place) = place_name(lhs) {
                fact.kill_name(&place);
            }
        }
        ExprKind::MethodCall { recv, name, .. } => {
            if LEN_MUTATORS.contains(&name.as_str()) {
                if let Some(base) = place_name(recv) {
                    fact.kill_base(&base);
                }
            }
        }
        ExprKind::Ref {
            mutable: true,
            operand,
        } => {
            if let Some(base) = place_name(operand) {
                fact.kill_base(&base);
            }
        }
        _ => {}
    }
    for_each_child(e, &mut |c| {
        if !c.is_control() {
            kill_effects(c, fact);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = Workspace::build(&owned);
        let graph = CallGraph::build(&ws);
        check_panic_reach(&ws, &graph)
    }

    #[test]
    fn unguarded_variable_index_fires() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn get(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("xs[i]"), "{}", f[0].message);
    }

    #[test]
    fn guarded_index_is_clean() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn get(xs: &[u32], i: usize) -> u32 {\n\
             \x20   if i < xs.len() { xs[i] } else { 0 }\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn diverging_negated_guard_is_clean() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn get(xs: &[u32], i: usize) -> u32 {\n\
             \x20   if i >= xs.len() { return 0; }\n\
             \x20   xs[i]\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn range_len_loop_is_clean_but_mutation_kills() {
        let clean = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn sum(xs: &[u32]) -> u32 {\n\
             \x20   let mut s = 0;\n\
             \x20   for i in 0..xs.len() { s += xs[i]; }\n\
             \x20   s\n\
             }\n",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn sum(xs: &mut Vec<u32>) -> u32 {\n\
             \x20   let mut s = 0;\n\
             \x20   for i in 0..xs.len() { xs.push(0); s += xs[i]; }\n\
             \x20   s\n\
             }\n",
        )]);
        assert_eq!(dirty.len(), 1, "{dirty:?}");
    }

    #[test]
    fn len_alias_guard_is_understood() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn get(xs: &[u32], i: usize) -> u32 {\n\
             \x20   let n = xs.len();\n\
             \x20   if i < n { xs[i] } else { 0 }\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_propagates_to_pub_caller_with_path() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn outer(v: Option<u32>) -> u32 { inner(v) }\n\
             fn inner(v: Option<u32>) -> u32 { v.unwrap() }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("outer -> inner"), "{}", f[0].message);
        assert!(f[0].message.contains("unwrap"), "{}", f[0].message);
    }

    #[test]
    fn private_panicking_fn_alone_is_not_flagged() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "fn inner(v: Option<u32>) -> u32 { v.unwrap() }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn variable_divisor_fires_literal_is_clean() {
        let dirty = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn avg(total: u64, n: u64) -> u64 { total / n }\n",
        )]);
        assert_eq!(dirty.len(), 1, "{dirty:?}");
        assert!(dirty[0].message.contains('/'), "{}", dirty[0].message);
        let clean = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn half(total: u64) -> u64 { total / 2 }\n",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn enumerate_index_is_proved() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn first_gap(xs: &[u32]) -> usize {\n\
             \x20   for (i, v) in xs.iter().enumerate() {\n\
             \x20       if *v == 0 { return xs[i] as usize; }\n\
             \x20   }\n\
             \x20   0\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn explicit_panic_macros_seed() {
        let f = findings(&[(
            "crates/x/src/lib.rs",
            "pub fn f(x: u32) -> u32 { if x > 9 { unreachable!() } else { x } }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unreachable"), "{}", f[0].message);
    }
}
