//! A recursive-descent *item* parser on top of [`crate::lexer`].
//!
//! The syntax-aware rule passes (`L1` layering, `E1` error flow, `K1`
//! lock order, `P1` dead pub) need more structure than a flat token
//! stream, but far less than a full Rust grammar: items, impls, fn
//! signatures, use-trees, and the call/method expressions inside fn
//! bodies. This parser recognizes exactly that slice — statement-level
//! resolution, no expression grammar — and is tolerant by construction:
//! any token sequence it does not recognize as an item is skipped, so
//! malformed input degrades to fewer items, never to a panic.
//!
//! Spans are inclusive index ranges into the *significant* token stream
//! (whitespace and comments dropped). Sibling item spans never overlap
//! and child spans nest inside their parent's — a property the parser
//! proptest (`tests/parser_props.rs`) enforces on arbitrary input.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// What a parsed item is.
#[derive(Debug, Clone, PartialEq)]
pub enum ItemKind {
    /// A free or associated function.
    Fn(FnInfo),
    /// A struct, with its named fields.
    Struct { fields: Vec<FieldInfo> },
    /// An enum or union.
    Enum,
    /// A trait declaration (children hold provided methods).
    Trait,
    /// An `impl` block; `of_trait` is true for `impl Trait for Type`.
    Impl { of_trait: bool, self_ty: String },
    /// An inline or file module (children hold its items).
    Mod,
    /// A `use` declaration; `paths` are the expanded leaf paths.
    Use { paths: Vec<Vec<String>> },
    /// A `const` or `static` item.
    Const,
    /// A `type` alias.
    TypeAlias,
    /// A `macro_rules!` definition.
    MacroDef,
}

/// A named struct field and whether its declared type is a lock.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Whether the declared type mentions `Mutex` or `RwLock`.
    pub is_lock: bool,
    /// Whether the declared type mentions `HashMap` or `HashSet`
    /// (determinism-taint sources for `D3`).
    pub is_hash: bool,
    /// Declared type tokens, verbatim (type/effect layer input: numeric
    /// field types for `N1`/`N2`, `Atomic*` detection for `A1`).
    pub ty: Vec<String>,
}

/// One declared fn parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name; `self` for receiver forms, empty for pattern
    /// parameters (`(a, b): (u32, u32)`).
    pub name: String,
    /// Declared type tokens (empty for `self` receivers).
    pub ty: Vec<String>,
}

/// Function-level facts the rule passes consume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnInfo {
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Declared return type tokens, verbatim (empty for `()` fns). The
    /// type index derives ctor/method return types from these.
    pub ret: Vec<String>,
    /// Call and method-call expressions in the body, in source order
    /// (derived from `body`; kept for the statement-level passes).
    pub calls: Vec<CallSite>,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// The parsed body statements (expression grammar; see
    /// [`crate::expr`]). Empty for bodyless fns.
    pub body: Vec<crate::expr::Stmt>,
}

/// How a call's value leaves (or fails to leave) its statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discard {
    /// The call is not statement-final; its value flows onward.
    None,
    /// `let _ = call(...);` — value explicitly thrown away.
    LetUnderscore,
    /// `call(...);` as a bare statement — value implicitly dropped.
    StmtDrop,
}

/// One call or method-call expression inside a fn body.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Callee name: last path segment (`parse` in `Url::parse`) or the
    /// method name (`lock` in `self.metrics.lock()`).
    pub name: String,
    /// For method calls, the receiver's plain path (`["self", "metrics"]`
    /// for `self.metrics.lock()`); empty when the receiver is itself an
    /// expression (chained calls) or for path calls.
    pub recv: Vec<String>,
    /// For path calls, the full path (`["Url", "parse"]`); empty for
    /// method calls.
    pub path: Vec<String>,
    /// True for `.name(...)` method syntax.
    pub is_method: bool,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
    /// Whether (and how) the call's value is discarded.
    pub discard: Discard,
}

/// One parsed item with its nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Classification plus kind-specific facts.
    pub kind: ItemKind,
    /// Item name; empty for `impl` blocks and `use` declarations.
    pub name: String,
    /// Whether the item is plain `pub` (scoped visibility such as
    /// `pub(crate)` does not count — it is already restricted).
    pub is_pub: bool,
    /// Whether the item sits under a `#[cfg(test)]` attribute (directly
    /// or via an enclosing module).
    pub cfg_test: bool,
    /// 1-based line of the item's defining keyword.
    pub line: u32,
    /// 1-based column of the item's defining keyword.
    pub col: u32,
    /// Inclusive span in significant-token indices.
    pub span: (usize, usize),
    /// Identifier texts inside the item's span (children included, raw
    /// `r#` prefixes stripped) — the names this item references. Dead-pub
    /// liveness propagates through these.
    pub idents: BTreeSet<String>,
    /// Nested items (mod bodies, impl/trait members).
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first iteration over this item and all descendants.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Item>) {
        out.push(self);
        for child in &self.children {
            child.walk(out);
        }
    }
}

/// A fully parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Top-level items.
    pub items: Vec<Item>,
    /// Number of significant tokens (span upper bound).
    pub sig_len: usize,
}

impl ParsedFile {
    /// All items, flattened depth-first.
    pub fn all_items(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        for item in &self.items {
            item.walk(&mut out);
        }
        out
    }
}

/// Parse one file's source into its item tree.
pub fn parse_file(rel_path: &str, src: &str) -> ParsedFile {
    let tokens = lex(src);
    let sig: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let texts: Vec<&str> = sig.iter().map(|t| t.text).collect();
    let mut parser = Parser {
        sig: &sig,
        texts: &texts,
        pos: 0,
    };
    let mut items = parser.parse_items(false, false);
    fill_idents(&mut items, &sig);
    ParsedFile {
        rel_path: rel_path.to_string(),
        items,
        sig_len: sig.len(),
    }
}

/// Attach to every item the identifier texts inside its span.
fn fill_idents(items: &mut [Item], sig: &[&Token<'_>]) {
    for item in items {
        let (lo, hi) = item.span;
        item.idents = sig
            .iter()
            .take(hi + 1)
            .skip(lo)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.strip_prefix("r#").unwrap_or(t.text).to_string())
            .collect();
        fill_idents(&mut item.children, sig);
    }
}

struct Parser<'a, 'b> {
    sig: &'a [&'a Token<'b>],
    texts: &'a [&'b str],
    pos: usize,
}

/// Keywords that can never start the path of a call expression.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "break", "continue", "fn", "let",
    "move", "in", "as", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod", "struct",
    "enum", "trait", "const", "static", "type", "unsafe", "extern", "async", "await",
];

impl<'a, 'b> Parser<'a, 'b> {
    fn at(&self, i: usize) -> &str {
        self.texts.get(i).copied().unwrap_or("")
    }

    fn cur(&self) -> &str {
        self.at(self.pos)
    }

    fn peek(&self, n: usize) -> &str {
        self.at(self.pos + n)
    }

    fn pos_of(&self, i: usize) -> (u32, u32) {
        self.sig.get(i).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    /// Parse items until end-of-input or (when `stop_at_brace`) a `}` at
    /// this nesting level. `in_cfg_test` propagates `#[cfg(test)]` from an
    /// enclosing module.
    fn parse_items(&mut self, stop_at_brace: bool, in_cfg_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < self.texts.len() {
            if stop_at_brace && self.cur() == "}" {
                break;
            }
            let start = self.pos;
            let cfg_test = in_cfg_test | self.skip_attrs();
            let is_pub = self.skip_visibility();
            self.skip_fn_qualifiers();
            let (line, col) = self.pos_of(self.pos);
            let keyword = self.cur().to_string();
            let parsed = match keyword.as_str() {
                "fn" => self.parse_fn(),
                "struct" => self.parse_struct(),
                "enum" | "union" => self.parse_enum_like(),
                "trait" => self.parse_trait(cfg_test),
                "impl" => self.parse_impl(cfg_test),
                "mod" => self.parse_mod(cfg_test),
                "use" => self.parse_use(),
                "const" | "static" => self.parse_const_static(),
                "type" => self.parse_type_alias(),
                "macro_rules" => self.parse_macro_def(),
                _ => None,
            };
            match parsed {
                Some((kind, name, children)) => items.push(Item {
                    kind,
                    name,
                    is_pub,
                    cfg_test,
                    line,
                    col,
                    span: (start, self.pos.saturating_sub(1).max(start)),
                    idents: BTreeSet::new(),
                    children,
                }),
                None => {
                    // Not an item start: skip one token (tolerant recovery).
                    // Balanced groups are skipped whole so `}`s inside
                    // unrecognized constructs don't end an enclosing body.
                    match self.cur() {
                        "{" | "(" | "[" => self.skip_balanced(),
                        _ => self.pos += 1,
                    }
                }
            }
        }
        items
    }

    /// Skip leading attributes; report whether any is `#[cfg(test)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.cur() == "#" {
            let mut j = self.pos + 1;
            if self.at(j) == "!" {
                j += 1;
            }
            if self.at(j) != "[" {
                break;
            }
            let attr_start = j;
            let mut depth = 0usize;
            while j < self.texts.len() {
                match self.at(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let attr: Vec<&str> = self.texts[attr_start..=j.min(self.texts.len() - 1)].to_vec();
            if attr.windows(4).any(|w| w == ["cfg", "(", "test", ")"]) {
                cfg_test = true;
            }
            self.pos = (j + 1).min(self.texts.len());
        }
        cfg_test
    }

    /// Skip `pub`, `pub(crate)`, `pub(in path)`. Returns true only for
    /// *plain* `pub`: scoped visibility is already restricted, so the
    /// dead-pub rule treats it as non-public (demoting an unreferenced
    /// `pub` item to `pub(crate)` is a recognized fix).
    fn skip_visibility(&mut self) -> bool {
        if self.cur() != "pub" {
            return false;
        }
        self.pos += 1;
        if self.cur() == "(" {
            self.skip_balanced();
            return false;
        }
        true
    }

    /// Skip `const`/`unsafe`/`async`/`extern "C"` fn qualifiers (only when
    /// a `fn` actually follows, so `const NAME` items are untouched).
    fn skip_fn_qualifiers(&mut self) {
        loop {
            match self.cur() {
                "const" | "unsafe" | "async" if self.is_fn_ahead() => self.pos += 1,
                "extern" if self.is_fn_ahead() => {
                    self.pos += 1;
                    if self.sig.get(self.pos).map(|t| t.kind) == Some(TokenKind::Literal) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Whether a `fn` keyword follows within the next few qualifier slots.
    fn is_fn_ahead(&self) -> bool {
        (1..=3).any(|n| self.peek(n) == "fn")
    }

    /// Skip one balanced `(`/`[`/`{` group (cursor on the opener).
    fn skip_balanced(&mut self) {
        let (open, close) = match self.cur() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => {
                self.pos += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while self.pos < self.texts.len() {
            let is_open = self.cur() == open;
            let is_close = self.cur() == close;
            self.pos += 1;
            if is_open {
                depth += 1;
            } else if is_close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skip a generics list (cursor on `<`), tolerating `->` inside
    /// `Fn(..) -> T` bounds.
    fn skip_generics(&mut self) {
        if self.cur() != "<" {
            return;
        }
        let mut depth = 0i32;
        while self.pos < self.texts.len() {
            if self.cur() == "-" && self.peek(1) == ">" {
                self.pos += 2;
                continue;
            }
            let is_lt = self.cur() == "<";
            let is_gt = self.cur() == ">";
            self.pos += 1;
            if is_lt {
                depth += 1;
            } else if is_gt {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Collect type tokens until one of `stops` at bracket-depth 0;
    /// cursor is left on the stop token. Returns the collected texts.
    fn scan_type_until(&mut self, stops: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        let mut angle = 0i32;
        let mut group = 0i32;
        while self.pos < self.texts.len() {
            let t = self.cur();
            if t == "-" && self.peek(1) == ">" {
                out.push("->".to_string());
                self.pos += 2;
                continue;
            }
            if angle == 0 && group == 0 && stops.contains(&t) {
                break;
            }
            match t {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" | "[" | "{" => group += 1,
                ")" | "]" | "}" => {
                    if group == 0 {
                        break; // closing an enclosing group: stop here
                    }
                    group -= 1;
                }
                _ => {}
            }
            out.push(t.to_string());
            self.pos += 1;
        }
        out
    }

    fn parse_fn(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1; // fn
        let name = self.ident()?;
        self.skip_generics();
        if self.cur() != "(" {
            return None;
        }
        let params_start = self.pos;
        self.skip_balanced(); // params
        let params_end = self.pos; // one past `)`
        let params = self.parse_params(params_start + 1, params_end.saturating_sub(1));
        let mut returns_result = false;
        let mut ret = Vec::new();
        if self.cur() == "-" && self.peek(1) == ">" {
            self.pos += 2;
            ret = self.scan_type_until(&["{", ";", "where"]);
            returns_result = ret.iter().any(|t| t == "Result");
        }
        if self.cur() == "where" {
            self.scan_type_until(&["{", ";"]);
        }
        let mut calls = Vec::new();
        let mut body = Vec::new();
        if self.cur() == "{" {
            let body_start = self.pos;
            self.skip_balanced();
            let body_end = self.pos; // one past the closing brace
            body = crate::expr::parse_body(
                self.sig,
                self.texts,
                body_start + 1,
                body_end.saturating_sub(1),
            );
            calls = crate::expr::collect_calls(&body, self.sig);
        } else if self.cur() == ";" {
            self.pos += 1;
        }
        Some((
            ItemKind::Fn(FnInfo {
                returns_result,
                ret,
                calls,
                params,
                body,
            }),
            name,
            Vec::new(),
        ))
    }

    /// Parse the parameter list token range `[start, end)` (inside the
    /// parens) into [`Param`]s: depth-0 commas split parameters, the name
    /// is the single identifier before a depth-0 `:` (empty for pattern
    /// parameters), and receiver forms collapse to name `self`.
    fn parse_params(&mut self, start: usize, end: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut j = start;
        while j < end {
            // Find this parameter's end: a comma at bracket depth 0
            // (`->` inside `Fn(..) -> T` types skipped whole).
            let mut depth = 0i32;
            let mut k = j;
            while k < end {
                match self.at(k) {
                    "-" if self.at(k + 1) == ">" => {
                        k += 2;
                        continue;
                    }
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(param) = self.parse_one_param(j, k) {
                params.push(param);
            }
            j = k + 1;
        }
        params
    }

    /// Shape one parameter's token range `[j, k)`.
    fn parse_one_param(&self, mut j: usize, k: usize) -> Option<Param> {
        // Skip attributes and leading modifiers.
        while j < k {
            match self.at(j) {
                "#" => {
                    // `#[..]`: advance past the bracket group.
                    let mut depth = 0i32;
                    j += 1;
                    while j < k {
                        match self.at(j) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                "mut" | "&" => j += 1,
                t if self.sig.get(j).map(|s| s.kind) == Some(TokenKind::Lifetime)
                    && !t.is_empty() =>
                {
                    j += 1
                }
                _ => break,
            }
        }
        if j >= k {
            return None;
        }
        if self.at(j) == "self" {
            return Some(Param {
                name: "self".to_string(),
                ty: Vec::new(),
            });
        }
        // Find the depth-0 `:` separating pattern from type.
        let mut depth = 0i32;
        let mut colon = None;
        let mut m = j;
        while m < k {
            match self.at(m) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 && self.at(m + 1) != ":" && self.at(m.wrapping_sub(1)) != ":" => {
                    colon = Some(m);
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        let colon = colon?;
        let name = if colon == j + 1 && self.sig.get(j).map(|s| s.kind) == Some(TokenKind::Ident) {
            self.at(j).to_string()
        } else {
            String::new()
        };
        let ty: Vec<String> = ((colon + 1)..k).map(|i| self.at(i).to_string()).collect();
        Some(Param { name, ty })
    }

    fn parse_struct(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1; // struct
        let name = self.ident()?;
        self.skip_generics();
        if self.cur() == "where" {
            self.scan_type_until(&["{", ";", "("]);
        }
        let mut fields = Vec::new();
        match self.cur() {
            "(" => {
                self.skip_balanced();
                if self.cur() == ";" {
                    self.pos += 1;
                }
            }
            "{" => {
                let end = self.matching_brace(self.pos);
                self.pos += 1;
                while self.pos < end {
                    self.skip_attrs();
                    self.skip_visibility();
                    let Some(field) = self.ident() else {
                        self.pos += 1;
                        continue;
                    };
                    if self.cur() != ":" {
                        continue;
                    }
                    self.pos += 1;
                    let ty = self.scan_type_until(&[","]);
                    let is_lock = ty.iter().any(|t| t == "Mutex" || t == "RwLock");
                    let is_hash = ty.iter().any(|t| t == "HashMap" || t == "HashSet");
                    fields.push(FieldInfo {
                        name: field,
                        is_lock,
                        is_hash,
                        ty,
                    });
                    if self.cur() == "," {
                        self.pos += 1;
                    }
                }
                self.pos = (end + 1).min(self.texts.len());
            }
            ";" => self.pos += 1,
            _ => {}
        }
        Some((ItemKind::Struct { fields }, name, Vec::new()))
    }

    fn parse_enum_like(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1;
        let name = self.ident()?;
        self.skip_generics();
        if self.cur() == "where" {
            self.scan_type_until(&["{", ";"]);
        }
        if self.cur() == "{" {
            self.skip_balanced();
        } else if self.cur() == ";" {
            self.pos += 1;
        }
        Some((ItemKind::Enum, name, Vec::new()))
    }

    fn parse_trait(&mut self, cfg_test: bool) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1;
        let name = self.ident()?;
        self.skip_generics();
        self.scan_type_until(&["{", ";"]); // supertrait bounds / where
        let mut children = Vec::new();
        if self.cur() == "{" {
            self.pos += 1;
            children = self.parse_items(true, cfg_test);
            if self.cur() == "}" {
                self.pos += 1;
            }
        } else if self.cur() == ";" {
            self.pos += 1;
        }
        Some((ItemKind::Trait, name, children))
    }

    fn parse_impl(&mut self, cfg_test: bool) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1;
        self.skip_generics();
        let first_ty = self.scan_type_until(&["{", "for", ";"]);
        let (of_trait, self_ty) = if self.cur() == "for" {
            self.pos += 1;
            let ty = self.scan_type_until(&["{", ";", "where"]);
            (true, type_head(&ty))
        } else {
            (false, type_head(&first_ty))
        };
        if self.cur() == "where" {
            self.scan_type_until(&["{", ";"]);
        }
        let mut children = Vec::new();
        if self.cur() == "{" {
            self.pos += 1;
            children = self.parse_items(true, cfg_test);
            if self.cur() == "}" {
                self.pos += 1;
            }
        } else if self.cur() == ";" {
            self.pos += 1;
        }
        Some((
            ItemKind::Impl { of_trait, self_ty },
            String::new(),
            children,
        ))
    }

    fn parse_mod(&mut self, cfg_test: bool) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1;
        let name = self.ident()?;
        let mut children = Vec::new();
        if self.cur() == "{" {
            self.pos += 1;
            children = self.parse_items(true, cfg_test);
            if self.cur() == "}" {
                self.pos += 1;
            }
        } else if self.cur() == ";" {
            self.pos += 1;
        }
        Some((ItemKind::Mod, name, children))
    }

    fn parse_use(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1; // use
        let mut paths = Vec::new();
        self.parse_use_tree(&mut Vec::new(), &mut paths);
        if self.cur() == ";" {
            self.pos += 1;
        }
        Some((ItemKind::Use { paths }, String::new(), Vec::new()))
    }

    /// Parse one use-tree level, expanding `{...}` groups into leaf paths.
    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<Vec<String>>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.cur() {
                "{" => {
                    self.pos += 1;
                    loop {
                        self.parse_use_tree(prefix, out);
                        if self.cur() == "," {
                            self.pos += 1;
                            continue;
                        }
                        break;
                    }
                    if self.cur() == "}" {
                        self.pos += 1;
                    }
                    break;
                }
                "*" => {
                    self.pos += 1;
                    prefix.push("*".to_string());
                    out.push(prefix.clone());
                    prefix.pop();
                    break;
                }
                "as" => {
                    // Rename: record the leaf under its original path.
                    self.pos += 1;
                    self.ident();
                    out.push(prefix.clone());
                    break;
                }
                t if is_path_segment(t) => {
                    prefix.push(t.to_string());
                    self.pos += 1;
                    if self.cur() == ":" && self.peek(1) == ":" {
                        self.pos += 2;
                        continue;
                    }
                    out.push(prefix.clone());
                    break;
                }
                _ => break,
            }
        }
        prefix.truncate(depth_at_entry);
    }

    fn parse_const_static(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1; // const | static
        if self.cur() == "mut" {
            self.pos += 1;
        }
        let name = self.ident()?;
        // Skip `: Type = expr;` — brackets balanced, stop at depth-0 `;`.
        let mut depth = 0i32;
        while self.pos < self.texts.len() {
            let t = self.cur();
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        Some((ItemKind::Const, name, Vec::new()))
    }

    fn parse_type_alias(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1;
        let name = self.ident()?;
        self.scan_type_until(&[";"]);
        if self.cur() == ";" {
            self.pos += 1;
        }
        Some((ItemKind::TypeAlias, name, Vec::new()))
    }

    fn parse_macro_def(&mut self) -> Option<(ItemKind, String, Vec<Item>)> {
        self.pos += 1; // macro_rules
        if self.cur() == "!" {
            self.pos += 1;
        }
        let name = self.ident()?;
        if matches!(self.cur(), "{" | "(" | "[") {
            self.skip_balanced();
        }
        Some((ItemKind::MacroDef, name, Vec::new()))
    }

    /// Consume one identifier token, if present.
    fn ident(&mut self) -> Option<String> {
        let tok = self.sig.get(self.pos)?;
        if tok.kind != TokenKind::Ident {
            return None;
        }
        self.pos += 1;
        Some(tok.text.to_string())
    }

    /// Index of the `}` matching the `{` at `open` (or last token).
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.texts.len() {
            match self.at(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.texts.len().saturating_sub(1)
    }
}

/// Whether a token can be a use-path segment.
fn is_path_segment(t: &str) -> bool {
    !t.is_empty()
        && t.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'#')
        && t != "as"
}

/// The "head" identifier of a type token run: the last identifier seen at
/// angle-depth 0 (`html::dom::Node<T>` → `Node`, `fmt::Display` →
/// `Display`).
fn type_head(ty: &[String]) -> String {
    let mut depth = 0i32;
    let mut head = String::new();
    for t in ty {
        match t.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            _ => {
                if depth == 0
                    && t.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                    && t.bytes().next().map_or(false, |b| !b.is_ascii_digit())
                    && !NON_CALL_KEYWORDS.contains(&t.as_str())
                {
                    head = t.clone();
                }
            }
        }
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<&str> {
        items.iter().map(|i| i.name.as_str()).collect()
    }

    #[test]
    fn parses_top_level_items() {
        let src = r#"
            use std::collections::BTreeMap;
            pub struct Config { pub depth: u32 }
            pub enum Mode { A, B }
            pub trait Runner { fn run(&self); }
            pub const LIMIT: usize = 10;
            pub type Pair = (u32, u32);
            pub fn go(x: u32) -> u32 { x + 1 }
            mod inner { pub fn helper() {} }
        "#;
        let file = parse_file("crates/x/src/lib.rs", src);
        assert_eq!(
            names(&file.items),
            vec!["", "Config", "Mode", "Runner", "LIMIT", "Pair", "go", "inner"]
        );
        let inner = &file.items[7];
        assert_eq!(names(&inner.children), vec!["helper"]);
        assert!(inner.children[0].is_pub);
    }

    #[test]
    fn sibling_spans_do_not_overlap() {
        let src = "fn a() { b(); }\nfn b() {}\nstruct S;\n";
        let file = parse_file("x.rs", src);
        assert_eq!(file.items.len(), 3);
        for w in file.items.windows(2) {
            assert!(w[0].span.1 < w[1].span.0, "{:?}", file.items);
        }
    }

    #[test]
    fn fn_return_type_result_detected() {
        let src = "pub fn f() -> Result<u32, Error> { Ok(1) }\npub fn g() -> u32 { 1 }\npub fn h() -> io::Result<()> { Ok(()) }\n";
        let file = parse_file("x.rs", src);
        let results: Vec<bool> = file
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Fn(f) => Some(f.returns_result),
                _ => None,
            })
            .collect();
        assert_eq!(results, vec![true, false, true]);
    }

    #[test]
    fn impl_blocks_classify_trait_vs_inherent() {
        let src =
            "impl Foo { pub fn a(&self) {} }\nimpl fmt::Display for Foo { fn fmt(&self) {} }\n";
        let file = parse_file("x.rs", src);
        match (&file.items[0].kind, &file.items[1].kind) {
            (
                ItemKind::Impl {
                    of_trait: false,
                    self_ty: t1,
                },
                ItemKind::Impl {
                    of_trait: true,
                    self_ty: t2,
                },
            ) => {
                assert_eq!(t1, "Foo");
                assert_eq!(t2, "Foo");
            }
            other => panic!("unexpected kinds: {other:?}"),
        }
        assert_eq!(names(&file.items[0].children), vec!["a"]);
        assert!(file.items[0].children[0].is_pub);
    }

    #[test]
    fn use_trees_expand_to_leaf_paths() {
        let src = "use aipan_net::{Client, host::{Internet, StaticSite}};\nuse aipan_taxonomy::Aspect as A;\nuse std::fmt::*;\n";
        let file = parse_file("x.rs", src);
        let mut all: Vec<Vec<String>> = Vec::new();
        for item in &file.items {
            if let ItemKind::Use { paths } = &item.kind {
                all.extend(paths.clone());
            }
        }
        let joined: Vec<String> = all.iter().map(|p| p.join("::")).collect();
        assert_eq!(
            joined,
            vec![
                "aipan_net::Client",
                "aipan_net::host::Internet",
                "aipan_net::host::StaticSite",
                "aipan_taxonomy::Aspect",
                "std::fmt::*",
            ]
        );
    }

    #[test]
    fn struct_lock_fields_detected() {
        let src = "pub struct Shared { metrics: Arc<Mutex<Metrics>>, hosts: RwLock<u32>, name: String }\n";
        let file = parse_file("x.rs", src);
        let ItemKind::Struct { fields } = &file.items[0].kind else {
            panic!("expected struct");
        };
        let locks: Vec<(&str, bool)> = fields
            .iter()
            .map(|f| (f.name.as_str(), f.is_lock))
            .collect();
        assert_eq!(
            locks,
            vec![("metrics", true), ("hosts", true), ("name", false)]
        );
    }

    #[test]
    fn calls_and_discards_extracted() {
        let src = r#"
            fn work(&self) {
                let _ = Url::parse(input);
                fetch(url);
                let ok = compute();
                self.metrics.lock();
                chain().last();
            }
        "#;
        let file = parse_file("x.rs", src);
        let ItemKind::Fn(info) = &file.items[0].kind else {
            panic!("expected fn");
        };
        let got: Vec<(&str, Discard, bool)> = info
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.discard, c.is_method))
            .collect();
        assert_eq!(
            got,
            vec![
                ("parse", Discard::LetUnderscore, false),
                ("fetch", Discard::StmtDrop, false),
                ("compute", Discard::None, false),
                ("lock", Discard::StmtDrop, true),
                ("chain", Discard::None, false),
                ("last", Discard::StmtDrop, true),
            ]
        );
        assert_eq!(info.calls[0].path, vec!["Url", "parse"]);
        assert_eq!(info.calls[3].recv, vec!["self", "metrics"]);
    }

    #[test]
    fn cfg_test_propagates_to_children() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\npub fn real() {}\n";
        let file = parse_file("x.rs", src);
        assert!(file.items[0].cfg_test);
        assert!(file.items[0].children[0].cfg_test);
        assert!(!file.items[1].cfg_test);
    }

    #[test]
    fn question_mark_is_not_a_discard() {
        let src = "fn f() -> Result<(), E> { g()?; Ok(()) }\n";
        let file = parse_file("x.rs", src);
        let ItemKind::Fn(info) = &file.items[0].kind else {
            panic!("expected fn");
        };
        assert_eq!(info.calls[0].discard, Discard::None);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn",
            "fn (",
            "struct {",
            "impl for {}",
            "use ;",
            "pub pub pub",
            "}}}{{{",
            "fn f( { } )",
            "#[cfg(test)",
        ] {
            let _ = parse_file("x.rs", src);
        }
    }
}
