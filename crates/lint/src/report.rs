//! Rendering lint results: human diff-style text, machine-readable JSON,
//! and SARIF 2.1.0.
//!
//! The JSON and SARIF forms are the CI surface (`cargo lint -- --format
//! json|sarif`), so their shapes are deliberately rigid: object members
//! are emitted from `BTreeMap`s, i.e. in sorted key order, and arrays in
//! the report's deterministic finding order — two runs over the same
//! tree produce byte-identical output.

use crate::findings::{Finding, Severity};
use crate::scan::Report;
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render findings in a diff-style human format:
///
/// ```text
/// crates/net/src/url.rs:88:21: deny R1: `unwrap` can panic in library code...
///    |
/// 88 |         let host = parts.next().unwrap();
///    |
/// ```
pub fn human(report: &Report, deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.line > 0 {
            let _ = writeln!(
                out,
                "{}:{}:{}: {} {}: {}",
                f.file,
                f.line,
                f.col,
                f.severity.name(),
                f.rule,
                f.message
            );
            if !f.snippet.is_empty() {
                let gutter = f.line.to_string();
                let pad = " ".repeat(gutter.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{gutter} | {}", f.snippet);
                let _ = writeln!(out, "{pad} |");
            }
        } else {
            let _ = writeln!(
                out,
                "{}: {} {}: {}",
                f.file,
                f.severity.name(),
                f.rule,
                f.message
            );
            if !f.snippet.is_empty() {
                let _ = writeln!(out, "  | {}", f.snippet);
            }
        }
    }
    let denies = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = report.findings.len() - denies;
    let _ = writeln!(
        out,
        "aipan-lint: {} file(s) scanned, {denies} deny, {warns} warn ({} allowlisted) — {}",
        report.files_scanned,
        report.suppressed.len(),
        if report.failed(deny_warnings) {
            "FAIL"
        } else {
            "ok"
        }
    );
    out
}

/// JSON shape version. Bumped to 4 with the v6 type- and effect-aware
/// vocabulary (`N1`/`N2`/`A1`/`F1`) and the SARIF output surface. The
/// `--incremental` cache embeds this constant so a shape change
/// invalidates every cached report.
pub const SCHEMA_VERSION: u64 = 4;

/// Render the report as a single JSON object with sorted member order:
/// `{"files_scanned": N, "findings": [...], "schema_version": 2,
/// "suppressed": [...]}`.
pub fn json(report: &Report) -> String {
    let obj = sorted_object(vec![
        ("files_scanned", (report.files_scanned as u64).to_value()),
        ("findings", findings_value(&report.findings)),
        ("schema_version", SCHEMA_VERSION.to_value()),
        ("suppressed", findings_value(&report.suppressed)),
    ]);
    serde_json::to_string_pretty(&obj).unwrap_or_else(|_| obj.to_string())
}

/// SARIF severity level for a finding.
fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

/// One SARIF `result` object for a finding. Data-invariant findings
/// (line 0) carry no `region` — SARIF requires 1-based lines.
fn sarif_result(f: &Finding) -> Value {
    let mut physical = vec![(
        "artifactLocation",
        sorted_object(vec![("uri", f.file.to_value())]),
    )];
    if f.line > 0 {
        physical.push((
            "region",
            sorted_object(vec![
                ("startColumn", (u64::from(f.col.max(1))).to_value()),
                ("startLine", u64::from(f.line).to_value()),
            ]),
        ));
    }
    sorted_object(vec![
        ("level", sarif_level(f.severity).to_value()),
        (
            "locations",
            Value::Array(vec![sorted_object(vec![(
                "physicalLocation",
                sorted_object(physical),
            )])]),
        ),
        (
            "message",
            sorted_object(vec![("text", f.message.to_value())]),
        ),
        ("ruleId", f.rule.to_value()),
    ])
}

/// Render the report as SARIF 2.1.0 (`cargo lint -- --format sarif`),
/// the interchange shape CI annotation surfaces ingest. Determinism
/// matches the JSON form: every object's members are emitted in sorted
/// key order, the single run lists the full rule catalog in catalog
/// order, and results ride in the report's deterministic finding order —
/// two runs over the same tree are byte-identical.
pub fn sarif(report: &Report) -> String {
    let rules: Vec<Value> = crate::catalog::RULES
        .iter()
        .map(|r| {
            sorted_object(vec![
                (
                    "defaultConfiguration",
                    sorted_object(vec![("level", sarif_level(r.severity).to_value())]),
                ),
                ("id", r.id.to_value()),
                (
                    "shortDescription",
                    sorted_object(vec![("text", r.summary.to_value())]),
                ),
            ])
        })
        .collect();
    let run = sorted_object(vec![
        (
            "results",
            Value::Array(report.findings.iter().map(sarif_result).collect()),
        ),
        (
            "tool",
            sorted_object(vec![(
                "driver",
                sorted_object(vec![
                    ("name", "aipan-lint".to_value()),
                    ("rules", Value::Array(rules)),
                ]),
            )]),
        ),
    ]);
    let obj = sorted_object(vec![
        (
            "$schema",
            "https://json.schemastore.org/sarif-2.1.0.json".to_value(),
        ),
        ("runs", Value::Array(vec![run])),
        ("version", "2.1.0".to_value()),
    ]);
    serde_json::to_string_pretty(&obj).unwrap_or_else(|_| obj.to_string())
}

/// Build an object whose members are sorted by key via a `BTreeMap`, so
/// field order can never depend on struct declaration or insertion order.
pub(crate) fn sorted_object(members: Vec<(&str, Value)>) -> Value {
    let map: BTreeMap<String, Value> = members
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    Value::Object(map.into_iter().collect())
}

pub(crate) fn findings_value(findings: &[Finding]) -> Value {
    Value::Array(findings.iter().map(finding_value).collect())
}

pub(crate) fn finding_value(f: &Finding) -> Value {
    sorted_object(vec![
        ("col", (f.col as u64).to_value()),
        ("file", f.file.to_value()),
        ("fix", fix_value(f.fix.as_ref())),
        ("line", (f.line as u64).to_value()),
        ("message", f.message.to_value()),
        ("rule", f.rule.to_value()),
        ("severity", f.severity.name().to_value()),
        ("snippet", f.snippet.to_value()),
    ])
}

/// Rebuild a [`Finding`] from its JSON value (the `--incremental` cache
/// round-trip). Returns `None` on any shape mismatch — the caller treats
/// that as a cold cache, never as an error. The rule id is interned
/// through [`crate::catalog::find`] so the `&'static str` identity
/// matches freshly-emitted findings exactly.
pub(crate) fn finding_from_value(v: &Value) -> Option<Finding> {
    let rule = crate::catalog::find(v.get("rule")?.as_str()?)?.id;
    let severity = match v.get("severity")?.as_str()? {
        "deny" => Severity::Deny,
        "warn" => Severity::Warn,
        _ => return None,
    };
    let fix = match v.get("fix")? {
        Value::Null => None,
        fx => {
            let title = fx.get("title")?.as_str()?.to_string();
            let mut edits = Vec::new();
            for e in fx.get("edits")?.as_array()? {
                edits.push(crate::fix::FixEdit {
                    start: e.get("start")?.as_u64()? as usize,
                    end: e.get("end")?.as_u64()? as usize,
                    replacement: e.get("replacement")?.as_str()?.to_string(),
                });
            }
            Some(crate::fix::Fix { title, edits })
        }
    };
    Some(Finding {
        rule,
        severity,
        file: v.get("file")?.as_str()?.to_string(),
        line: v.get("line")?.as_u64()? as u32,
        col: v.get("col")?.as_u64()? as u32,
        message: v.get("message")?.as_str()?.to_string(),
        snippet: v.get("snippet")?.as_str()?.to_string(),
        fix,
    })
}

/// Rebuild a finding list from a cached JSON array (`None` on mismatch).
pub(crate) fn findings_from_value(v: &Value) -> Option<Vec<Finding>> {
    v.as_array()?.iter().map(finding_from_value).collect()
}

/// The `fix` member: `null` when the rule attached no rewrite, otherwise
/// an object with the edit spans in sorted member order.
fn fix_value(fix: Option<&crate::fix::Fix>) -> Value {
    let Some(fix) = fix else {
        return Value::Null;
    };
    let edits: Vec<Value> = fix
        .edits
        .iter()
        .map(|e| {
            sorted_object(vec![
                ("end", (e.end as u64).to_value()),
                ("replacement", e.replacement.to_value()),
                ("start", (e.start as u64).to_value()),
            ])
        })
        .collect();
    sorted_object(vec![
        ("edits", Value::Array(edits)),
        ("title", fix.title.to_value()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Finding;

    fn sample_report() -> Report {
        Report {
            findings: vec![
                Finding::at(
                    "R1",
                    Severity::Deny,
                    "crates/x/src/a.rs",
                    12,
                    9,
                    "`unwrap` can panic".to_string(),
                    "let v = o.unwrap();".to_string(),
                ),
                Finding::for_data(
                    "T2",
                    "crates/taxonomy/src/rights.rs",
                    "dup".to_string(),
                    String::new(),
                ),
            ],
            suppressed: Vec::new(),
            files_scanned: 3,
        }
    }

    #[test]
    fn human_format_names_file_line_rule() {
        let text = human(&sample_report(), false);
        assert!(text.contains("crates/x/src/a.rs:12:9: deny R1:"), "{text}");
        assert!(text.contains("12 | let v = o.unwrap();"), "{text}");
        assert!(text.contains("2 deny, 0 warn"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let text = json(&sample_report());
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v.field("files_scanned").unwrap().as_u64(), Some(3));
        let findings = v.field("findings").unwrap().as_array().expect("array");
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].field("rule").unwrap().as_str(), Some("R1"));
        assert_eq!(findings[0].field("line").unwrap().as_u64(), Some(12));
        assert_eq!(
            findings[0].field("severity").unwrap().as_str(),
            Some("deny")
        );
    }

    #[test]
    fn sarif_names_rules_levels_and_locations() {
        let text = sarif(&sample_report());
        let v: Value = serde_json::from_str(&text).expect("valid SARIF JSON");
        assert_eq!(v.field("version").unwrap().as_str(), Some("2.1.0"));
        let runs = v.field("runs").unwrap().as_array().expect("runs");
        assert_eq!(runs.len(), 1);
        let results = runs[0]
            .field("results")
            .unwrap()
            .as_array()
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].field("ruleId").unwrap().as_str(), Some("R1"));
        assert_eq!(results[0].field("level").unwrap().as_str(), Some("error"));
        // Data finding (line 0) carries no region.
        let data_loc = &results[1]
            .field("locations")
            .unwrap()
            .as_array()
            .expect("locs")[0];
        assert!(
            data_loc
                .field("physicalLocation")
                .unwrap()
                .field("region")
                .is_err(),
            "{text}"
        );
        // The driver lists the full catalog, and rendering is stable.
        let driver = runs[0].field("tool").unwrap().field("driver").unwrap();
        let rules = driver.field("rules").unwrap().as_array().expect("rules");
        assert_eq!(rules.len(), crate::catalog::RULES.len());
        assert_eq!(text, sarif(&sample_report()));
    }

    #[test]
    fn json_member_order_is_sorted_and_stable() {
        let text = json(&sample_report());
        // Top-level keys in sorted order.
        let fs = text.find("\"files_scanned\"").expect("files_scanned key");
        let fi = text.find("\"findings\"").expect("findings key");
        let sv = text.find("\"schema_version\"").expect("schema_version key");
        let su = text.find("\"suppressed\"").expect("suppressed key");
        assert!(
            fs < fi && fi < sv && sv < su,
            "top-level keys must be sorted"
        );
        // Finding keys in sorted order: col < file < fix < line < message
        // < rule < severity < snippet within the first finding object.
        let first = &text[fi..sv];
        let positions: Vec<usize> = [
            "col", "file", "fix", "line", "message", "rule", "severity", "snippet",
        ]
        .iter()
        .map(|k| first.find(&format!("\"{k}\"")).expect("finding key"))
        .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "finding keys must be sorted");
        // Byte-identical across renders.
        assert_eq!(text, json(&sample_report()));
    }
}
