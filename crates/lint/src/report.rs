//! Rendering lint results: human diff-style text and machine-readable JSON.

use crate::findings::{Finding, Severity};
use crate::scan::Report;
use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Render findings in a diff-style human format:
///
/// ```text
/// crates/net/src/url.rs:88:21: deny R1: `unwrap` can panic in library code...
///    |
/// 88 |         let host = parts.next().unwrap();
///    |
/// ```
pub fn human(report: &Report, deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.line > 0 {
            let _ = writeln!(
                out,
                "{}:{}:{}: {} {}: {}",
                f.file,
                f.line,
                f.col,
                f.severity.name(),
                f.rule,
                f.message
            );
            if !f.snippet.is_empty() {
                let gutter = f.line.to_string();
                let pad = " ".repeat(gutter.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{gutter} | {}", f.snippet);
                let _ = writeln!(out, "{pad} |");
            }
        } else {
            let _ = writeln!(
                out,
                "{}: {} {}: {}",
                f.file,
                f.severity.name(),
                f.rule,
                f.message
            );
            if !f.snippet.is_empty() {
                let _ = writeln!(out, "  | {}", f.snippet);
            }
        }
    }
    let denies = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = report.findings.len() - denies;
    let _ = writeln!(
        out,
        "aipan-lint: {} file(s) scanned, {denies} deny, {warns} warn ({} allowlisted) — {}",
        report.files_scanned,
        report.suppressed.len(),
        if report.failed(deny_warnings) {
            "FAIL"
        } else {
            "ok"
        }
    );
    out
}

/// Render the report as a single JSON object:
/// `{"files_scanned": N, "findings": [...], "suppressed": [...]}`.
pub fn json(report: &Report) -> String {
    let obj = Value::Object(vec![
        (
            "files_scanned".to_string(),
            (report.files_scanned as u64).to_value(),
        ),
        ("findings".to_string(), findings_value(&report.findings)),
        ("suppressed".to_string(), findings_value(&report.suppressed)),
    ]);
    serde_json::to_string_pretty(&obj).unwrap_or_else(|_| obj.to_string())
}

fn findings_value(findings: &[Finding]) -> Value {
    Value::Array(findings.iter().map(|f| f.to_value()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Finding;

    fn sample_report() -> Report {
        Report {
            findings: vec![
                Finding::at(
                    "R1",
                    Severity::Deny,
                    "crates/x/src/a.rs",
                    12,
                    9,
                    "`unwrap` can panic".to_string(),
                    "let v = o.unwrap();".to_string(),
                ),
                Finding::for_data(
                    "T2",
                    "crates/taxonomy/src/rights.rs",
                    "dup".to_string(),
                    String::new(),
                ),
            ],
            suppressed: Vec::new(),
            files_scanned: 3,
        }
    }

    #[test]
    fn human_format_names_file_line_rule() {
        let text = human(&sample_report(), false);
        assert!(text.contains("crates/x/src/a.rs:12:9: deny R1:"), "{text}");
        assert!(text.contains("12 | let v = o.unwrap();"), "{text}");
        assert!(text.contains("2 deny, 0 warn"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let text = json(&sample_report());
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v.field("files_scanned").unwrap().as_u64(), Some(3));
        let findings = v.field("findings").unwrap().as_array().expect("array");
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].field("rule").unwrap().as_str(), Some("R1"));
        assert_eq!(findings[0].field("line").unwrap().as_u64(), Some(12));
    }
}
