//! `S1`/`S2`: interprocedural memory-retention and escape analysis.
//!
//! The ROADMAP's streaming refactor needs the analyzer to *see* which
//! collections materialize corpus-scale data. This pass classifies each
//! growable collection a fn builds as **streamed** (consumed inside the
//! loop that grows it), **retained** (accumulated across the loop and
//! escaping the fn), or **local** (neither escapes nor streams), seeded
//! from the [`crate::cost`] hot set and loop-depth machinery.
//!
//! **`S1` retained-accumulator-with-streaming-consumer** (Warn): a
//! collection grown inside a loop of a *hot* fn escapes via `return`,
//! and the fn's sole workspace caller iterates the result exactly once.
//! The producer materializes the whole corpus only for the consumer to
//! walk it front-to-back — the pair is a streaming candidate (yield
//! per-item via a callback or iterator instead). Findings carry the
//! entry→fn witness chain like `X1`/`H2`.
//!
//! **`S2` unbounded-growth-in-loop** (Warn): a collection grown inside a
//! `loop`/`while` (or a `for` over an unbounded iterator) of a hot fn,
//! with no visible bound: no length/limit test in the loop condition, no
//! guarded `break`/`return`, no visited-set guard around the growth, and
//! — for worklist loops — the drained queue is itself re-fed inside the
//! body. At the 30k/300k-domain universe an unbounded accumulator is an
//! OOM, not a slowdown.
//!
//! Approximation directions (see DESIGN.md §6a): *streamed* requires a
//! syntactic consume (`clear`/`drain`/rebind) inside the growing loop,
//! so a collection consumed through a helper is conservatively treated
//! as retained (over-approximates retention — more `S1` candidates,
//! never a missed one); bound evidence for `S2` is recognized
//! syntactically, so an exotic bound yields a spurious finding rather
//! than a silent OOM (`S2` over-approximates unboundedness), while both
//! rules fire only inside the hot set (fns the pipeline provably
//! reaches), which under-approximates the workspace as a whole.

use crate::callgraph::{CallGraph, FnNode};
use crate::cost::CostModel;
use crate::expr::{child_blocks, for_each_child, Expr, ExprKind, Pat, Stmt};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// Constructors that start a growable collection.
const GROWABLE_HEADS: &[&str] = &[
    "Vec", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Methods that add elements to a collection.
const GROW_METHODS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "extend",
    "append",
    "insert",
];

/// Methods that consume/reset a collection in place (the streamed shape).
const CONSUME_METHODS: &[&str] = &["clear", "drain", "take", "split_off"];

/// Identifier fragments that signal a loop bound (budgets, caps, limits).
const BOUND_NAME_HINTS: &[&str] = &[
    "len",
    "limit",
    "max",
    "cap",
    "budget",
    "remaining",
    "count",
    "attempt",
    "tries",
    "depth",
    "bound",
    "quota",
];

/// How a fn's collection relates to the loop that grows it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Consumed (cleared/drained/rebound) inside the growing loop.
    Streamed,
    /// Escapes the fn via `return` after accumulating across the loop.
    Retained,
    /// Grows in a loop but neither streams nor escapes.
    Local,
}

/// One classified collection in one fn.
#[derive(Debug, Clone)]
pub struct RetentionRecord {
    /// Workspace-relative file of the defining fn.
    pub file: String,
    /// Defining fn name.
    pub fn_name: String,
    /// Collection binding name.
    pub name: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// 1-based column of the binding.
    pub col: u32,
    /// Classification.
    pub class: Retention,
    /// Whether the defining fn is in the pipeline hot set.
    pub hot: bool,
}

/// Whether an initializer expression builds a growable collection:
/// `Vec::new()`, `HashMap::with_capacity(..)`, `vec![..]`, `String::from`,
/// or a `collect()` into one (type-directed collects are unknowable, so
/// only ctor forms count — under-approximating the candidate set).
fn growable_init(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                segs.iter().any(|s| GROWABLE_HEADS.contains(&s.as_str()))
            } else {
                false
            }
        }
        ExprKind::MacroCall { path, .. } => path.last().is_some_and(|s| s == "vec"),
        _ => false,
    }
}

/// A growable binding in one fn body.
#[derive(Debug)]
struct Accumulator {
    name: String,
    line: u32,
    col: u32,
}

/// Every `let <name> = <growable ctor>` in a body, in source order.
fn accumulators(body: &[Stmt]) -> Vec<Accumulator> {
    let mut out = Vec::new();
    crate::expr::for_each_let(body, &mut |pat, _ty, init| {
        let Pat::Ident { name, .. } = pat else {
            return;
        };
        if init.is_some_and(growable_init) {
            out.push(Accumulator {
                name: name.clone(),
                line: init.map(|e| e.line).unwrap_or(0),
                col: init.map(|e| e.col).unwrap_or(0),
            });
        }
    });
    out
}

/// Whether an expression is a grow call on the named binding
/// (`name.push(..)` and friends).
fn is_grow_on(e: &Expr, name: &str) -> bool {
    let ExprKind::MethodCall { recv, name: m, .. } = &e.kind else {
        return false;
    };
    GROW_METHODS.contains(&m.as_str())
        && matches!(&recv.kind, ExprKind::Path(segs) if segs.as_slice() == [name])
}

/// Whether an expression consumes/resets the named binding in place.
fn is_consume_on(e: &Expr, name: &str) -> bool {
    match &e.kind {
        ExprKind::MethodCall { recv, name: m, .. } => {
            CONSUME_METHODS.contains(&m.as_str())
                && matches!(&recv.kind, ExprKind::Path(segs) if segs.as_slice() == [name])
        }
        // `mem::take(&mut name)` / `std::mem::take(&mut name)`.
        ExprKind::Call { callee, args } => {
            matches!(&callee.kind, ExprKind::Path(segs) if segs.last().is_some_and(|s| s == "take"))
                && args.iter().any(|a| match &a.kind {
                    ExprKind::Ref { operand, .. } => {
                        matches!(&operand.kind, ExprKind::Path(segs) if segs.as_slice() == [name])
                    }
                    _ => false,
                })
        }
        // Rebinding the accumulator resets it for the next iteration.
        ExprKind::Assign { lhs, op, .. } => {
            op == "=" && matches!(&lhs.kind, ExprKind::Path(segs) if segs.as_slice() == [name])
        }
        _ => false,
    }
}

/// Whether any expression in a tree satisfies `pred`. Unlike the shared
/// [`for_each_expr`](crate::expr::for_each_expr) walk this also descends
/// into match-arm guards and bodies, which the retention rules need
/// (accumulators are often grown inside `match` arms).
pub(crate) fn tree_any(e: &Expr, pred: &impl Fn(&Expr) -> bool) -> bool {
    if pred(e) {
        return true;
    }
    let mut found = false;
    for_each_child(e, &mut |c| {
        if !found {
            found = tree_any(c, pred);
        }
    });
    if found {
        return true;
    }
    if let ExprKind::Match { arms, .. } = &e.kind {
        for arm in arms {
            if arm.guard.as_ref().is_some_and(|g| tree_any(g, pred)) || tree_any(&arm.body, pred) {
                return true;
            }
        }
    }
    for block in child_blocks(e) {
        if stmts_any(block, pred) {
            return true;
        }
    }
    false
}

pub(crate) fn stmts_any(stmts: &[Stmt], pred: &impl Fn(&Expr) -> bool) -> bool {
    for stmt in stmts {
        let hit = match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                init.as_ref().is_some_and(|e| tree_any(e, pred))
                    || else_block.as_ref().is_some_and(|b| stmts_any(b, pred))
            }
            Stmt::Expr { expr, .. } => tree_any(expr, pred),
        };
        if hit {
            return true;
        }
    }
    false
}

/// One loop that grows an accumulator: the loop expression plus which
/// in-loop facts were observed.
struct GrowingLoop<'a> {
    /// The loop expression itself.
    lp: &'a Expr,
    /// First grow site (line, col) inside the loop.
    site: (u32, u32),
}

/// Find every loop that grows `name`, walking the body with a loop stack
/// (closures are descended into — the CFG inlines them the same way).
fn growing_loops<'a>(body: &'a [Stmt], name: &str) -> Vec<GrowingLoop<'a>> {
    let mut out: Vec<GrowingLoop<'a>> = Vec::new();
    let mut stack: Vec<&'a Expr> = Vec::new();
    walk(body, name, &mut stack, &mut out);
    fn walk<'a>(
        stmts: &'a [Stmt],
        name: &str,
        stack: &mut Vec<&'a Expr>,
        out: &mut Vec<GrowingLoop<'a>>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        walk_expr(e, name, stack, out);
                    }
                    if let Some(b) = else_block {
                        walk(b, name, stack, out);
                    }
                }
                Stmt::Expr { expr, .. } => walk_expr(expr, name, stack, out),
            }
        }
    }
    fn walk_expr<'a>(
        e: &'a Expr,
        name: &str,
        stack: &mut Vec<&'a Expr>,
        out: &mut Vec<GrowingLoop<'a>>,
    ) {
        let is_loop = matches!(
            e.kind,
            ExprKind::While { .. }
                | ExprKind::WhileLet { .. }
                | ExprKind::For { .. }
                | ExprKind::Loop { .. }
        );
        if is_loop {
            stack.push(e);
        }
        if is_grow_on(e, name) {
            if let Some(lp) = stack.last() {
                if !out
                    .iter()
                    .any(|g| (g.lp.line, g.lp.col) == (lp.line, lp.col))
                {
                    out.push(GrowingLoop {
                        lp,
                        site: (e.line, e.col),
                    });
                }
            }
        }
        for_each_child(e, &mut |c| walk_expr(c, name, stack, out));
        if let ExprKind::Match { arms, .. } = &e.kind {
            for arm in arms {
                walk_expr(&arm.body, name, stack, out);
            }
        }
        for block in child_blocks(e) {
            walk(block, name, stack, out);
        }
        if is_loop {
            stack.pop();
        }
    }
    out
}

/// Whether the fn returns the named binding: a tail expression or
/// `return` of `name`, optionally wrapped in `Ok(..)`/`Some(..)`.
fn escapes_by_return(body: &[Stmt], name: &str) -> bool {
    fn is_name_or_wrapped(e: &Expr, name: &str) -> bool {
        match &e.kind {
            ExprKind::Path(segs) => segs.as_slice() == [name],
            ExprKind::Call { callee, args } => {
                matches!(
                    &callee.kind,
                    ExprKind::Path(segs)
                        if matches!(segs.last().map(String::as_str), Some("Ok" | "Some"))
                ) && args.len() == 1
                    && args.first().is_some_and(|a| is_name_or_wrapped(a, name))
            }
            _ => false,
        }
    }
    // Tail position: the last statement, expression form, no semicolon.
    let tail = matches!(
        body.last(),
        Some(Stmt::Expr { expr, semi: false }) if is_name_or_wrapped(expr, name)
    );
    if tail {
        return true;
    }
    stmts_any(body, &|e| match &e.kind {
        ExprKind::Return(Some(inner)) => is_name_or_wrapped(inner, name),
        _ => false,
    })
}

/// Whether an expression tree mentions a bound-shaped identifier, a
/// `.len()`/`.is_empty()` probe, or a fn-local the body derived from a
/// sized input (see [`bound_locals`]) — the syntactic evidence `S2`
/// accepts.
pub(crate) fn mentions_bound(e: &Expr, bounds: &BTreeSet<String>) -> bool {
    tree_any(e, &|x| match &x.kind {
        ExprKind::MethodCall { name, .. } => {
            name == "len" || name == "is_empty" || name == "min" || name == "capacity"
        }
        ExprKind::Path(segs) => segs.iter().any(|s| {
            let lower = s.to_ascii_lowercase();
            BOUND_NAME_HINTS.iter().any(|h| lower.contains(h))
                || matches!(segs.as_slice(), [one] if bounds.contains(one))
        }),
        _ => false,
    })
}

/// Locals whose initializer is itself bound evidence: `let n =
/// items.len()` or `let cap = limit.min(..)`. Comparing against such a
/// local inside a loop guard is a bound even though the `.len()` call is
/// lexically outside the loop. (A bare literal initializer does NOT
/// qualify — `let i = 0` is a counter, not a cap.)
pub(crate) fn bound_locals(body: &[Stmt]) -> BTreeSet<String> {
    let empty = BTreeSet::new();
    let mut out = BTreeSet::new();
    crate::expr::for_each_let(body, &mut |pat, _ty, init| {
        let Pat::Ident { name, .. } = pat else {
            return;
        };
        if init.is_some_and(|e| mentions_bound(e, &empty)) {
            out.insert(name.clone());
        }
    });
    out
}

/// Whether an expression tree contains a visited-set guard: an
/// `insert`/`contains`/`contains_key` probe on some collection.
fn visited_guard(e: &Expr) -> bool {
    tree_any(e, &|x| {
        matches!(
            &x.kind,
            ExprKind::MethodCall { name, .. }
                if name == "insert" || name == "contains" || name == "contains_key"
        )
    })
}

/// Whether a `break`/`return` inside the loop body sits under an `if` or
/// `match` whose condition shows a bound or visited-set probe.
pub(crate) fn guarded_exit(body: &[Stmt], bounds: &BTreeSet<String>) -> bool {
    fn expr_has(e: &Expr, bounds: &BTreeSet<String>) -> bool {
        let own = match &e.kind {
            ExprKind::If {
                cond, then_block, ..
            } => {
                (mentions_bound(cond, bounds) || visited_guard(cond))
                    && stmts_any(then_block, &|x| {
                        matches!(x.kind, ExprKind::Break(_) | ExprKind::Return(_))
                    })
            }
            ExprKind::Match { scrutinee, arms } => {
                (mentions_bound(scrutinee, bounds) || visited_guard(scrutinee))
                    && arms.iter().any(|arm| {
                        tree_any(&arm.body, &|x| {
                            matches!(x.kind, ExprKind::Break(_) | ExprKind::Return(_))
                        })
                    })
            }
            _ => false,
        };
        if own {
            return true;
        }
        let mut found = false;
        for_each_child(e, &mut |c| {
            if !found {
                found = expr_has(c, bounds);
            }
        });
        if found {
            return true;
        }
        child_blocks(e).iter().any(|b| stmts_has(b, bounds))
    }
    fn stmts_has(stmts: &[Stmt], bounds: &BTreeSet<String>) -> bool {
        stmts.iter().any(|stmt| match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                init.as_ref().is_some_and(|e| expr_has(e, bounds))
                    || else_block.as_ref().is_some_and(|b| stmts_has(b, bounds))
            }
            Stmt::Expr { expr, .. } => expr_has(expr, bounds),
        })
    }
    stmts_has(body, bounds)
}

/// Worklist-drain scrutinee: `while let Some(x) = <queue>.pop*()` /
/// `.next()` — returns the drained queue's root name.
fn drained_root(scrutinee: &Expr) -> Option<String> {
    let ExprKind::MethodCall { recv, name, .. } = &scrutinee.kind else {
        return None;
    };
    if !matches!(name.as_str(), "pop" | "pop_front" | "pop_back" | "next") {
        return None;
    }
    match &recv.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [one] => Some(one.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Whether a loop shows any bound the rule accepts. `body`/`cond` are
/// the loop's own statements and condition (when it has one); `bounds`
/// holds the fn's sized-input locals (see [`bound_locals`]).
fn loop_is_bounded(lp: &Expr, grow_line: u32, grow_col: u32, bounds: &BTreeSet<String>) -> bool {
    match &lp.kind {
        // A `for` loop over anything but an unbounded generator is
        // inherently bounded by its input.
        ExprKind::For { iter, body, .. } => {
            let unbounded = tree_any(iter, &|x| match &x.kind {
                ExprKind::MethodCall { name, .. } => name == "cycle",
                ExprKind::Call { callee, .. } => matches!(
                    &callee.kind,
                    ExprKind::Path(segs)
                        if segs.last().is_some_and(|s| s == "repeat" || s == "repeat_with")
                ),
                ExprKind::Range { hi, .. } => hi.is_none(),
                _ => false,
            });
            !unbounded || guarded_exit(body, bounds)
        }
        ExprKind::While { cond, body } => {
            mentions_bound(cond, bounds)
                || guarded_exit(body, bounds)
                || grow_is_guarded(body, grow_line, grow_col, bounds)
        }
        ExprKind::WhileLet {
            scrutinee, body, ..
        } => {
            // Draining a worklist is bounded unless the body re-feeds the
            // same queue without a visited-set guard.
            if let Some(queue) = drained_root(scrutinee) {
                let refeeds = stmts_any(body, &|x| is_grow_on(x, &queue));
                if !refeeds {
                    return true;
                }
            }
            guarded_exit(body, bounds) || grow_is_guarded(body, grow_line, grow_col, bounds)
        }
        ExprKind::Loop { body } => {
            guarded_exit(body, bounds) || grow_is_guarded(body, grow_line, grow_col, bounds)
        }
        _ => true,
    }
}

/// Whether the grow site at `(line, col)` sits under an `if` whose
/// condition carries a visited-set or bound probe.
fn grow_is_guarded(body: &[Stmt], line: u32, col: u32, bounds: &BTreeSet<String>) -> bool {
    fn contains_site(stmts: &[Stmt], line: u32, col: u32) -> bool {
        stmts_any(stmts, &|e| e.line == line && e.col == col)
    }
    fn expr_guards(e: &Expr, line: u32, col: u32, bounds: &BTreeSet<String>) -> bool {
        let own = match &e.kind {
            ExprKind::If {
                cond, then_block, ..
            } => {
                (visited_guard(cond) || mentions_bound(cond, bounds))
                    && contains_site(then_block, line, col)
            }
            ExprKind::IfLet {
                scrutinee,
                then_block,
                ..
            } => {
                (visited_guard(scrutinee) || mentions_bound(scrutinee, bounds))
                    && contains_site(then_block, line, col)
            }
            _ => false,
        };
        if own {
            return true;
        }
        let mut found = false;
        for_each_child(e, &mut |c| {
            if !found {
                found = expr_guards(c, line, col, bounds);
            }
        });
        if found {
            return true;
        }
        child_blocks(e)
            .iter()
            .any(|b| stmts_guard(b, line, col, bounds))
    }
    fn stmts_guard(stmts: &[Stmt], line: u32, col: u32, bounds: &BTreeSet<String>) -> bool {
        stmts.iter().any(|stmt| match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                init.as_ref()
                    .is_some_and(|e| expr_guards(e, line, col, bounds))
                    || else_block
                        .as_ref()
                        .is_some_and(|b| stmts_guard(b, line, col, bounds))
            }
            Stmt::Expr { expr, .. } => expr_guards(expr, line, col, bounds),
        })
    }
    stmts_guard(body, line, col, bounds)
}

/// Classify every growable collection in every fn of the workspace.
pub fn retention_records(
    ws: &Workspace,
    graph: &CallGraph<'_>,
    model: &CostModel,
) -> Vec<RetentionRecord> {
    let mut out = Vec::new();
    for (id, node) in graph.fns.iter().enumerate() {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let body = &node.info.body;
        for acc in accumulators(body) {
            let loops = growing_loops(body, &acc.name);
            if loops.is_empty() {
                continue;
            }
            let streamed = loops.iter().all(|g| {
                let blocks = child_blocks(g.lp);
                blocks
                    .iter()
                    .any(|b| stmts_any(b, &|e| is_consume_on(e, &acc.name)))
            });
            let class = if streamed {
                Retention::Streamed
            } else if escapes_by_return(body, &acc.name) {
                Retention::Retained
            } else {
                Retention::Local
            };
            out.push(RetentionRecord {
                file: file.parsed.rel_path.clone(),
                fn_name: node.name.to_string(),
                name: acc.name.clone(),
                line: acc.line,
                col: acc.col,
                class,
                hot: model.is_hot(id),
            });
        }
    }
    out
}

/// Call-graph callers of `id`, with the call-site line of the first edge.
fn callers_of(graph: &CallGraph<'_>, id: usize) -> Vec<(usize, u32, u32)> {
    let mut out = Vec::new();
    for (u, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            if e.to == id {
                out.push((u, e.line, e.col));
                break;
            }
        }
    }
    out
}

/// Whether `caller` consumes the call at `(line, col)` by iterating its
/// result exactly once: either `for x in f(..)` directly, or
/// `let ys = f(..)` where `ys` is used exactly once, as a `for` iterable.
fn sole_iterating_consumer(caller: &FnNode<'_>, line: u32, col: u32) -> bool {
    let body = &caller.info.body;
    // Direct form: the call appears inside a `for` head.
    let mut direct = false;
    let mut bound_name: Option<String> = None;
    crate::expr::for_each_expr(body, &mut |e| {
        if let ExprKind::For { iter, .. } = &e.kind {
            if tree_any(iter, &|x| x.line == line && x.col == col) {
                direct = true;
            }
        }
    });
    if direct {
        return true;
    }
    // Bound form: find the `let` whose initializer holds the call.
    crate::expr::for_each_let(body, &mut |pat, _ty, init| {
        if bound_name.is_some() {
            return;
        }
        let Pat::Ident { name, .. } = pat else {
            return;
        };
        if init.is_some_and(|e| tree_any(e, &|x| x.line == line && x.col == col)) {
            bound_name = Some(name.clone());
        }
    });
    let Some(name) = bound_name else {
        return false;
    };
    // Count uses of the binding outside its own `let`.
    let mut uses = 0usize;
    let mut for_uses = 0usize;
    crate::expr::for_each_expr(body, &mut |e| {
        if let ExprKind::For { iter, .. } = &e.kind {
            let in_head = match &iter.kind {
                ExprKind::Path(segs) => segs.as_slice() == [name.as_str()],
                ExprKind::Ref { operand, .. } => {
                    matches!(&operand.kind, ExprKind::Path(segs) if segs.as_slice() == [name.as_str()])
                }
                ExprKind::MethodCall { recv, name: m, .. } => {
                    matches!(m.as_str(), "iter" | "into_iter" | "iter_mut" | "drain")
                        && matches!(&recv.kind, ExprKind::Path(segs) if segs.as_slice() == [name.as_str()])
                }
                _ => false,
            };
            if in_head {
                for_uses += 1;
            }
        }
        if matches!(&e.kind, ExprKind::Path(segs) if segs.as_slice() == [name.as_str()])
            && !(e.line == line && e.col == col)
        {
            uses += 1;
        }
    });
    for_uses == 1 && uses == 1
}

/// Run the `S1`/`S2` retention passes over an analyzed workspace.
pub fn check_retention(ws: &Workspace, graph: &CallGraph<'_>, model: &CostModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Pre-index record lookups per fn id for S1.
    let mut by_fn: BTreeMap<usize, Vec<(Accumulator, bool)>> = BTreeMap::new();
    for (id, node) in graph.fns.iter().enumerate() {
        if !model.is_hot(id) {
            continue;
        }
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let body = &node.info.body;
        let bounds = bound_locals(body);
        for acc in accumulators(body) {
            let loops = growing_loops(body, &acc.name);
            if loops.is_empty() {
                continue;
            }
            let streamed = loops.iter().all(|g| {
                child_blocks(g.lp)
                    .iter()
                    .any(|b| stmts_any(b, &|e| is_consume_on(e, &acc.name)))
            });

            // S2: any growing loop with no visible bound.
            for g in &loops {
                if !loop_is_bounded(g.lp, g.site.0, g.site.1, &bounds) {
                    findings.push(Finding::at(
                        "S2",
                        Severity::Warn,
                        &file.parsed.rel_path,
                        g.site.0,
                        g.site.1,
                        format!(
                            "`{}` grows inside a loop with no bound derived from a sized \
                             input (hot path: {}); at corpus scale this is unbounded \
                             memory — add a length/budget check, a visited-set guard, \
                             or a guarded break",
                            acc.name,
                            model
                                .hot_path(graph, id)
                                .unwrap_or_else(|| node.name.to_string()),
                        ),
                        file.snippet(g.site.0),
                    ));
                    break;
                }
            }

            if !streamed && escapes_by_return(body, &acc.name) {
                by_fn.entry(id).or_default().push((acc, true));
            }
        }
    }

    // S1: retained accumulator whose fn has exactly one workspace caller
    // that iterates the result exactly once.
    for (id, accs) in &by_fn {
        let Some(node) = graph.fns.get(*id) else {
            continue;
        };
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let callers = callers_of(graph, *id);
        let [(caller_id, line, col)] = callers.as_slice() else {
            continue;
        };
        let Some(caller) = graph.fns.get(*caller_id) else {
            continue;
        };
        if !sole_iterating_consumer(caller, *line, *col) {
            continue;
        }
        for (acc, _) in accs {
            findings.push(Finding::at(
                "S1",
                Severity::Warn,
                &file.parsed.rel_path,
                acc.line,
                acc.col,
                format!(
                    "corpus-scale accumulator `{}` escapes hot fn `{}` and its sole \
                     consumer `{}` iterates it exactly once (hot path: {}); stream \
                     per-item via a callback or iterator instead of materializing \
                     the whole collection",
                    acc.name,
                    node.name,
                    caller.name,
                    model
                        .hot_path(graph, *id)
                        .unwrap_or_else(|| node.name.to_string()),
                ),
                file.snippet(acc.line),
            ));
        }
    }
    findings
}
