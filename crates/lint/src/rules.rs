//! Token-level lint rules over the workspace's own sources.
//!
//! | rule | severity | what it catches |
//! |------|----------|-----------------|
//! | `D1` | deny | wall-clock / entropy (`SystemTime::now`, `Instant::now`, `thread_rng`, `from_entropy`) outside `crates/bench` |
//! | `D2` | warn | iteration over `HashMap`/`HashSet` in files that write ordered output |
//! | `R1` | deny | `.unwrap()` / `.expect(..)` / `panic!` in library code |
//! | `O1` | warn | `println!` / `eprintln!` in library code |
//! | `H1` | warn | to-do markers missing an issue tag (`TODO(#NNN)`-style required) |
//! | `B1` | warn | `loop`/`while` retry loops around fetch/complete calls with no visible attempt/retry/budget bound |
//!
//! Rules operate on the [`crate::lexer`] token stream, so occurrences inside
//! string literals and comments never fire (except `H1`, which looks *only*
//! at comments). Code under `#[cfg(test)]`, and files in `tests/`,
//! `benches/`, or `examples/` trees, are exempt from `R1`/`O1`; `crates/bench`
//! is exempt from `D1`.

use crate::findings::{Finding, Severity};
use crate::lexer::{lex, Token, TokenKind};

/// What kind of compilation target a file belongs to; drives rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Under `crates/bench/` (timing is this crate's whole point).
    pub bench_crate: bool,
    /// Integration test, bench, or example target (`tests/`, `benches/`, `examples/`).
    pub test_target: bool,
    /// Binary target (`main.rs` or under `src/bin/`).
    pub binary: bool,
}

impl FileClass {
    /// Classify a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileClass {
        let in_dir = |d: &str| {
            rel_path.starts_with(&format!("{d}/")) || rel_path.contains(&format!("/{d}/"))
        };
        FileClass {
            bench_crate: rel_path.starts_with("crates/bench/"),
            test_target: in_dir("tests") || in_dir("benches") || in_dir("examples"),
            binary: rel_path.ends_with("/main.rs") || in_dir("bin"),
        }
    }

    /// Whether library-code rules (`R1`, `O1`) apply to this file.
    pub fn is_library_code(self) -> bool {
        !self.test_target && !self.binary
    }
}

/// Lint one file's source text. `rel_path` is workspace-relative and is used
/// both for scoping (see [`FileClass`]) and in the emitted findings.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let class = FileClass::classify(rel_path);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    // Significant tokens: everything the grammar sees (no whitespace/comments).
    let sig: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let excluded = cfg_test_ranges(&sig);
    let in_test_code = |i: usize| excluded.iter().any(|&(start, end)| i >= start && i <= end);

    let mut findings = Vec::new();
    rule_d1(
        &sig,
        class,
        &in_test_code,
        rel_path,
        &snippet,
        &mut findings,
    );
    rule_d2(&sig, &in_test_code, rel_path, &snippet, &mut findings);
    rule_r1_o1(
        &sig,
        class,
        &in_test_code,
        rel_path,
        &snippet,
        &mut findings,
    );
    rule_h1(&tokens, rel_path, &mut findings);
    rule_b1(
        &sig,
        class,
        &in_test_code,
        rel_path,
        &snippet,
        &mut findings,
    );
    findings
}

/// Index ranges (into the significant-token stream) covered by
/// `#[cfg(test)]` items — typically the whole `mod tests { ... }` block.
fn cfg_test_ranges(sig: &[&Token<'_>]) -> Vec<(usize, usize)> {
    const CFG_TEST: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < sig.len() {
        let is_attr = sig.get(i..i + 7).is_some_and(|w| {
            w.iter()
                .zip(CFG_TEST.iter())
                .all(|(t, want)| t.text == *want)
        });
        if !is_attr {
            i += 1;
            continue;
        }
        // Skip to the item's body: the first `{` before any `;` ends the
        // search (e.g. `#[cfg(test)] use foo;` has no body).
        let mut j = i + 7;
        while j < sig.len() && sig[j].text != "{" && sig[j].text != ";" {
            j += 1;
        }
        if j < sig.len() && sig[j].text == "{" {
            let mut depth = 0usize;
            let mut k = j;
            while k < sig.len() {
                match sig[k].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            ranges.push((i, k.min(sig.len() - 1)));
            i = k + 1;
        } else {
            ranges.push((i, j.min(sig.len() - 1)));
            i = j + 1;
        }
    }
    ranges
}

fn rule_d1(
    sig: &[&Token<'_>],
    class: FileClass,
    in_test_code: &dyn Fn(usize) -> bool,
    rel_path: &str,
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    if class.bench_crate {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test_code(i) {
            continue;
        }
        let clock_call = (t.text == "SystemTime" || t.text == "Instant")
            && sig.get(i + 1).map_or(false, |t| t.text == ":")
            && sig.get(i + 2).map_or(false, |t| t.text == ":")
            && sig.get(i + 3).map_or(false, |t| t.text == "now");
        let entropy = t.text == "thread_rng" || t.text == "from_entropy";
        if clock_call || entropy {
            let what = if clock_call {
                format!("{}::now()", t.text)
            } else {
                format!("{}()", t.text)
            };
            out.push(Finding::at(
                "D1",
                Severity::Deny,
                rel_path,
                t.line,
                t.col,
                format!(
                    "{what} introduces wall-clock/entropy nondeterminism; outside crates/bench \
                     all randomness must flow from a seeded generator"
                ),
                snippet(t.line),
            ));
        }
    }
}

/// Words whose presence marks a file as one that emits ordered output
/// (reports, tables, serialized artifacts). `D2` only fires in such files.
const ORDERED_OUTPUT_MARKERS: &[&str] = &[
    "write",
    "writeln",
    "fmt",
    "Display",
    "to_json",
    "serialize",
    "Serialize",
    "push_str",
];

fn rule_d2(
    sig: &[&Token<'_>],
    in_test_code: &dyn Fn(usize) -> bool,
    rel_path: &str,
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    let writes_output = sig.iter().enumerate().any(|(i, t)| {
        t.kind == TokenKind::Ident && ORDERED_OUTPUT_MARKERS.contains(&t.text) && !in_test_code(i)
    });
    if !writes_output {
        return;
    }

    // Pass 1: names bound or typed as HashMap/HashSet.
    let mut hash_names: Vec<&str> = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `name: [path::]HashMap<...>` (field or let annotation) — walk back
        // over path segments to the `:`, then take the preceding ident.
        let mut j = i;
        while j >= 2 && sig[j - 1].text == ":" && sig[j - 2].text == ":" {
            if j >= 3 && sig[j - 3].kind == TokenKind::Ident {
                j -= 3;
            } else {
                break;
            }
        }
        if j >= 2 && sig[j - 1].text == ":" && sig[j - 2].kind == TokenKind::Ident {
            hash_names.push(sig[j - 2].text);
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(..)`.
        if i >= 2 && sig[i - 1].text == "=" && sig[i - 2].kind == TokenKind::Ident {
            hash_names.push(sig[i - 2].text);
        }
    }
    if hash_names.is_empty() {
        return;
    }

    // Pass 2: iteration over any of those names.
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || !hash_names.contains(&t.text) || in_test_code(i) {
            continue;
        }
        // `name.iter()` / `.keys()` / `.values()` / `.into_iter()` / `.drain()`.
        let method_iter = sig.get(i + 1).map_or(false, |t| t.text == ".")
            && sig.get(i + 2).map_or(false, |t| {
                matches!(t.text, "iter" | "keys" | "values" | "into_iter" | "drain")
            });
        // `for pat in [&][mut ][self.]name`: walk back over the tokens a
        // borrow/field path can contain, then require the `in` keyword.
        let for_iter = {
            let mut j = i;
            while j >= 1 && matches!(sig[j - 1].text, "&" | "mut" | "self" | ".") {
                j -= 1;
            }
            j >= 1 && sig[j - 1].text == "in"
        };
        if method_iter || for_iter {
            out.push(Finding::at(
                "D2",
                Severity::Warn,
                rel_path,
                t.line,
                t.col,
                format!(
                    "iterating hash-ordered collection `{}` in a file that writes ordered \
                     output; use BTreeMap/BTreeSet or collect-and-sort before emitting",
                    t.text
                ),
                snippet(t.line),
            ));
        }
    }
}

fn rule_r1_o1(
    sig: &[&Token<'_>],
    class: FileClass,
    in_test_code: &dyn Fn(usize) -> bool,
    rel_path: &str,
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    if !class.is_library_code() {
        return;
    }
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test_code(i) {
            continue;
        }
        let method_call = |name: &str| {
            t.text == name
                && i >= 1
                && sig[i - 1].text == "."
                && sig.get(i + 1).map_or(false, |t| t.text == "(")
        };
        let macro_call =
            |name: &str| t.text == name && sig.get(i + 1).map_or(false, |t| t.text == "!");
        if method_call("unwrap") || method_call("expect") || macro_call("panic") {
            out.push(Finding::at(
                "R1",
                Severity::Deny,
                rel_path,
                t.line,
                t.col,
                format!(
                    "`{}` can panic in library code; return a typed error (`?`) or handle \
                     the None/Err case explicitly",
                    t.text
                ),
                snippet(t.line),
            ));
        } else if macro_call("println") || macro_call("eprintln") {
            out.push(Finding::at(
                "O1",
                Severity::Warn,
                rel_path,
                t.line,
                t.col,
                format!(
                    "`{}!` in library code writes to the process's stdio; return data or \
                     take a `io::Write` sink instead",
                    t.text
                ),
                snippet(t.line),
            ));
        }
    }
}

fn rule_h1(tokens: &[Token<'_>], rel_path: &str, out: &mut Vec<Finding>) {
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        for marker in ["TODO", "FIXME"] {
            let mut search = 0;
            while let Some(at) = t.text[search..].find(marker) {
                let abs = search + at;
                let tagged = t.text[abs + marker.len()..].starts_with('(');
                if !tagged {
                    let newlines = t.text[..abs].bytes().filter(|&b| b == b'\n').count();
                    let marker_line = t
                        .line
                        .saturating_add(u32::try_from(newlines).unwrap_or(u32::MAX));
                    out.push(Finding::at(
                        "H1",
                        Severity::Warn,
                        rel_path,
                        marker_line,
                        0,
                        format!(
                            "`{marker}` comment without an issue tag; write \
                             `{marker}(#NNN)` or `{marker}(tracked: ...)` so it can't rot"
                        ),
                        t.text.lines().next().unwrap_or("").trim().to_string(),
                    ));
                }
                search = abs + marker.len();
            }
        }
    }
}

/// Name fragments that count as evidence a retry loop is bounded: an
/// attempt counter, a retry budget, or a tries cap somewhere in the loop's
/// header or body.
const BOUND_MARKERS: &[&str] = &["attempt", "retr", "tries", "budget"];

/// Whether an identifier carries bound evidence (case-insensitive
/// substring match against [`BOUND_MARKERS`]).
fn is_bound_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    BOUND_MARKERS.iter().any(|m| lower.contains(m))
}

fn rule_b1(
    sig: &[&Token<'_>],
    class: FileClass,
    in_test_code: &dyn Fn(usize) -> bool,
    rel_path: &str,
    snippet: &dyn Fn(u32) -> String,
    out: &mut Vec<Finding>,
) {
    if !class.is_library_code() {
        return;
    }
    // One finding per call site, even when loops nest.
    let mut flagged: Vec<(u32, u32)> = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || !matches!(t.text, "loop" | "while") || in_test_code(i) {
            continue;
        }
        // The loop's span runs from the keyword (so `while attempt < n`
        // conditions count as bound evidence) through the body's brace pair.
        let Some(open) = sig
            .iter()
            .enumerate()
            .skip(i + 1)
            .find(|(_, t)| t.text == "{")
            .map(|(j, _)| j)
        else {
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        while close < sig.len() {
            match sig[close].text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        let span = &sig[i..=close.min(sig.len() - 1)];
        if span
            .iter()
            .any(|t| t.kind == TokenKind::Ident && is_bound_ident(t.text))
        {
            continue;
        }
        for (off, c) in span.iter().enumerate() {
            // Atomic read-modify-write methods (`fetch_add`, `fetch_or`, ...)
            // share the `fetch` prefix but never touch the network.
            let atomic_rmw = matches!(
                c.text,
                "fetch_add"
                    | "fetch_sub"
                    | "fetch_and"
                    | "fetch_or"
                    | "fetch_xor"
                    | "fetch_nand"
                    | "fetch_max"
                    | "fetch_min"
                    | "fetch_update"
            );
            let is_call = c.kind == TokenKind::Ident
                && !atomic_rmw
                && (c.text.starts_with("fetch") || c.text.starts_with("complete"))
                && span.get(off + 1).map_or(false, |t| t.text == "(");
            if is_call && !flagged.contains(&(c.line, c.col)) {
                flagged.push((c.line, c.col));
                out.push(Finding::at(
                    "B1",
                    Severity::Warn,
                    rel_path,
                    c.line,
                    c.col,
                    format!(
                        "`{}` is called from a `{}` loop with no visible attempt/retry/budget \
                         bound; cap the loop (e.g. `for attempt in 0..max`) or route the call \
                         through a RetryPolicy",
                        c.text, t.text
                    ),
                    snippet(c.line),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_paths() {
        assert!(FileClass::classify("crates/bench/src/lib.rs").bench_crate);
        assert!(FileClass::classify("crates/net/tests/roundtrip.rs").test_target);
        assert!(FileClass::classify("crates/bench/benches/speed.rs").test_target);
        assert!(FileClass::classify("src/bin/aipan.rs").binary);
        let lib = FileClass::classify("crates/net/src/url.rs");
        assert!(lib.is_library_code());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_lib_code_fires_r1() {
        let src = "pub fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let f = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R1", 1));
        // unwrap_or / unwrap_or_default are fine.
        let src = "pub fn ok(v: Option<u32>) -> u32 { v.unwrap_or(0) }\n";
        assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn string_and_comment_mentions_do_not_fire() {
        let src = "pub fn ok() -> &'static str { \"call .unwrap() and panic!\" }\n// .unwrap() here too\n";
        assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d1_fires_outside_bench_only() {
        let src = "pub fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(rules_fired("crates/core/src/lib.rs", src), vec!["D1"]);
        assert!(rules_fired("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn h1_wants_issue_tags() {
        let src =
            "// TODO: someday\nfn a() {}\n// TODO(#12): tracked fine\n/* FIXME inside block */\n";
        let f = lint_source("crates/x/src/lib.rs", src);
        let lines: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "H1")
            .map(|f| f.line)
            .collect();
        assert_eq!(lines, vec![1, 4]);
    }

    #[test]
    fn d2_needs_both_hash_iteration_and_output() {
        // Hash iteration but no ordered output: silent.
        let src = "use std::collections::HashMap;\npub fn f(m: HashMap<u32, u32>) -> u64 {\n    m.iter().map(|(_, v)| *v as u64).sum()\n}\n";
        assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
        // Same iteration, but the file writes output: flagged.
        let src = "use std::collections::HashMap;\npub fn f(m: HashMap<u32, u32>) -> String {\n    let mut out = String::new();\n    for (k, v) in &m {\n        out.push_str(&format!(\"{k}={v}\"));\n    }\n    out\n}\n";
        assert_eq!(rules_fired("crates/x/src/lib.rs", src), vec!["D2"]);
    }

    #[test]
    fn b1_flags_unbounded_retry_loops_only() {
        // Unbounded `loop` around a fetch-family call: flagged once.
        let src = "pub fn poll(c: &Client) -> Page {\n\
                   \x20   loop {\n\
                   \x20       if let Ok(p) = c.fetch_page(\"/\") { return p; }\n\
                   \x20   }\n\
                   }\n";
        assert_eq!(rules_fired("crates/net/src/x.rs", src), vec!["B1"]);
        // Same loop with an attempt counter in the header: bounded.
        let src = "pub fn poll(c: &Client) -> Option<Page> {\n\
                   \x20   let mut attempt = 0;\n\
                   \x20   while attempt < 3 {\n\
                   \x20       attempt += 1;\n\
                   \x20       if let Ok(p) = c.fetch_page(\"/\") { return Some(p); }\n\
                   \x20   }\n\
                   \x20   None\n\
                   }\n";
        assert!(rules_fired("crates/net/src/x.rs", src).is_empty());
        // `for` loops are inherently bounded; tests and binaries are exempt.
        let src = "pub fn poll(c: &Client) { for _ in 0..3 { let _ = c.fetch_page(\"/\"); } }\n";
        assert!(rules_fired("crates/net/src/x.rs", src).is_empty());
        let src = "pub fn poll(c: &Client) { loop { let _ = c.fetch_page(\"/\"); } }\n";
        assert!(rules_fired("crates/net/tests/x.rs", src).is_empty());
        // A drain loop with no fetch/complete call never fires.
        let src = "pub fn drain(q: &mut Vec<u32>) { while let Some(x) = q.pop() { use_it(x); } }\n";
        assert!(rules_fired("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn o1_flags_lib_prints_not_binaries() {
        let src = "pub fn f() { println!(\"hi\"); }\n";
        assert_eq!(rules_fired("crates/x/src/lib.rs", src), vec!["O1"]);
        assert!(rules_fired("src/bin/aipan.rs", src).is_empty());
        assert!(rules_fired("crates/x/src/main.rs", src).is_empty());
    }
}
