//! Workspace discovery and the end-to-end lint driver.
//!
//! Scans the workspace's own Rust sources — `crates/`, `src/`, `tests/`,
//! `examples/`, `benches/` — skipping `vendor/` (offline stand-in crates are
//! third-party API mirrors, not our code), `target/`, and hidden
//! directories.

use crate::allow::Allowlist;
use crate::findings::{sort_findings, Finding};
use crate::{invariants, rules};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target"];

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All lintable source files under `root`, as sorted workspace-relative
/// forward-slash paths.
pub fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Outcome of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted deterministically.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.allow` (kept for `--verbose` display).
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run fails under the given strictness.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        if deny_warnings {
            !self.findings.is_empty()
        } else {
            self.findings
                .iter()
                .any(|f| f.severity == crate::findings::Severity::Deny)
        }
    }
}

/// Lint the whole workspace at `root` against `allowlist`: every source
/// file through the token rules, plus the taxonomy data invariants, plus
/// unused-allowlist-entry findings.
pub fn run(root: &Path, mut allowlist: Allowlist) -> io::Result<Report> {
    let files = source_files(root)?;
    let mut raw = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        raw.extend(rules::lint_source(rel, &src));
    }
    raw.extend(invariants::check_all());

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for finding in raw {
        if allowlist.permits(&finding) {
            suppressed.push(finding);
        } else {
            findings.push(finding);
        }
    }
    findings.extend(allowlist.unused());
    sort_findings(&mut findings);
    sort_findings(&mut suppressed);
    Ok(Report {
        findings,
        suppressed,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("lint crate lives in the workspace");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }

    #[test]
    fn scan_skips_vendor_and_sorts() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = source_files(&root).unwrap();
        assert!(!files.is_empty());
        assert!(
            files.iter().all(|f| !f.starts_with("vendor/")),
            "vendor must be skipped"
        );
        assert!(files.iter().any(|f| f == "crates/lint/src/lexer.rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
