//! Workspace discovery and the end-to-end lint driver.
//!
//! Scans the workspace's own Rust sources — `crates/`, `src/`, `tests/`,
//! `examples/`, `benches/` — skipping `vendor/` (offline stand-in crates are
//! third-party API mirrors, not our code), `target/`, and hidden
//! directories.
//!
//! The driver runs two analysis layers over the same file set:
//!
//! 1. **token rules** ([`crate::rules`]): each file independently through
//!    the lexer-level passes (`D1`/`D2`/`R1`/`O1`/`H1`);
//! 2. **graph rules**: all files parsed ([`crate::parser`]) into a
//!    [`crate::graph::Workspace`] plus a [`crate::callgraph::CallGraph`],
//!    then `L1` layering (against the `lint.toml` contract), `E1` error
//!    flow, `K1` lock order, `X1` interprocedural panic-reachability,
//!    `D3` determinism taint, and `P1` dead pub across the whole set at
//!    once.
//!
//! Taxonomy data invariants and allowlist bookkeeping (`A0`) run last, as
//! before.

use crate::allow::Allowlist;
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::findings::{sort_findings, Finding};
use crate::graph::Workspace;
use crate::{
    atomics, cost, effects, error_flow, guards, invariants, locks, numeric, panic_reach, retain,
    rules, share, taint, types,
};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for `.rs` files.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["vendor", "target"];

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// All lintable source files under `root`, as sorted workspace-relative
/// forward-slash paths.
pub(crate) fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk_dir(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
            continue;
        }
        if path.is_dir() {
            walk_dir(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Outcome of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted deterministically.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.allow` (kept for `--verbose` display).
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run fails under the given strictness.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        if deny_warnings {
            !self.findings.is_empty()
        } else {
            self.findings
                .iter()
                .any(|f| f.severity == crate::findings::Severity::Deny)
        }
    }
}

/// Lint the whole workspace at `root` against `allowlist`.
pub fn run(root: &Path, allowlist: Allowlist) -> io::Result<Report> {
    run_filtered(root, allowlist, |_| true)
}

/// Build the interprocedural cost model for the workspace at `root` and
/// render the `--hotpaths` ranking of the top `top` costliest pipeline
/// entry chains.
pub fn hotpaths(root: &Path, top: usize) -> io::Result<String> {
    let files = source_files(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        sources.push((rel.clone(), src));
    }
    let workspace = Workspace::build(&sources);
    let callgraph = CallGraph::build(&workspace);
    let model = cost::CostModel::build(&workspace, &callgraph);
    Ok(cost::hotpath_report(&workspace, &callgraph, &model, top))
}

/// Layer 1: the per-file token rules for one source file. The
/// incremental driver caches this layer per content hash — it depends
/// only on the file text, never on the rest of the workspace.
pub(crate) fn token_findings(rel: &str, src: &str) -> Vec<Finding> {
    rules::lint_source(rel, src)
}

/// Layer 2: the whole-workspace graph rules (layering, call-graph
/// passes, retention, sharing, dead pub) plus the data invariants.
/// These see every kept file at once, so the incremental driver re-runs
/// this layer whenever any file changed.
pub(crate) fn graph_findings(
    root: &Path,
    sources: &[(String, String)],
) -> io::Result<Vec<Finding>> {
    let mut raw = Vec::new();
    let workspace = Workspace::build(sources);
    let config_path = root.join("lint.toml");
    if config_path.is_file() {
        let text = fs::read_to_string(&config_path)?;
        let config = Config::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        raw.extend(workspace.check_layering(&config));
    }
    let callgraph = CallGraph::build(&workspace);
    let cost_model = cost::CostModel::build(&workspace, &callgraph);
    let type_index = types::TypeIndex::build(&workspace);
    let effect_model = effects::EffectModel::build(&workspace, &callgraph);
    raw.extend(error_flow::check_with_graph(&workspace, &callgraph));
    raw.extend(locks::check_lock_order(&workspace));
    raw.extend(panic_reach::check_panic_reach(&workspace, &callgraph));
    raw.extend(taint::check_taint(&workspace, &callgraph));
    raw.extend(cost::check_cost(&workspace, &callgraph, &cost_model));
    raw.extend(guards::check_guards(&workspace, &callgraph, &cost_model));
    raw.extend(retain::check_retention(&workspace, &callgraph, &cost_model));
    raw.extend(share::check_sharing(&workspace, &callgraph, &cost_model));
    raw.extend(numeric::check_numeric(
        &workspace,
        &callgraph,
        &cost_model,
        &type_index,
    ));
    raw.extend(atomics::check_atomics(&workspace, &callgraph, &type_index));
    raw.extend(effects::check_effects(
        &workspace,
        &callgraph,
        &cost_model,
        &effect_model,
    ));
    raw.extend(workspace.check_dead_pub());
    raw.extend(invariants::check_all());
    Ok(raw)
}

/// Final step shared by every driver: partition raw findings through the
/// allowlist, append `A0` unused-entry findings, and sort.
pub(crate) fn finish(raw: Vec<Finding>, mut allowlist: Allowlist, files_scanned: usize) -> Report {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for finding in raw {
        if allowlist.permits(&finding) {
            suppressed.push(finding);
        } else {
            findings.push(finding);
        }
    }
    findings.extend(allowlist.unused());
    sort_findings(&mut findings);
    sort_findings(&mut suppressed);
    Report {
        findings,
        suppressed,
        files_scanned,
    }
}

/// Read every kept source file under `root` as `(rel_path, text)` pairs.
///
/// Public so out-of-crate harnesses (`lintbench`) can rebuild the exact
/// scan set and time individual passes against it.
pub fn read_sources(root: &Path, keep: impl Fn(&str) -> bool) -> io::Result<Vec<(String, String)>> {
    let files: Vec<String> = source_files(root)?
        .into_iter()
        .filter(|rel| keep(rel))
        .collect();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// Lint the subset of workspace files whose relative path satisfies
/// `keep`. The graph passes see only the kept files, so a subset run
/// answers "is this corner self-consistent?" — `tests/lint_self_clean.rs`
/// uses it to hold `crates/lint` to its own rules with no allowlist.
pub fn run_filtered(
    root: &Path,
    allowlist: Allowlist,
    keep: impl Fn(&str) -> bool,
) -> io::Result<Report> {
    let sources = read_sources(root, keep)?;
    let mut raw = Vec::new();
    for (rel, src) in &sources {
        raw.extend(token_findings(rel, src));
    }
    raw.extend(graph_findings(root, &sources)?);
    Ok(finish(raw, allowlist, sources.len()))
}

/// Build the analyzed workspace at `root` and render the `--contention`
/// per-lock ranking (the streaming-refactor worklist).
pub fn contention(root: &Path) -> io::Result<String> {
    let sources = read_sources(root, |_| true)?;
    let workspace = Workspace::build(&sources);
    let callgraph = CallGraph::build(&workspace);
    let model = cost::CostModel::build(&workspace, &callgraph);
    Ok(share::contention_report(&workspace, &callgraph, &model))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("lint crate lives in the workspace");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }

    #[test]
    fn scan_skips_vendor_and_sorts() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = source_files(&root).unwrap();
        assert!(!files.is_empty());
        assert!(
            files.iter().all(|f| !f.starts_with("vendor/")),
            "vendor must be skipped"
        );
        assert!(files.iter().any(|f| f == "crates/lint/src/lexer.rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    #[test]
    fn hotpaths_ranks_annotate_reachable_chains_above_crawl_only() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let report = hotpaths(&root, 10).expect("hotpath report builds");
        // `run_pipeline` reaches both the crawl and annotate layers, so its
        // chain must outrank the crawl-only `crawl_all` entry, and the
        // annotate surface itself must appear among the ranked entries.
        let lines: Vec<&str> = report.lines().collect();
        let pipeline_rank = lines
            .iter()
            .position(|l| l.contains(". run_pipeline (cost"))
            .expect("run_pipeline ranked");
        let crawl_rank = lines
            .iter()
            .position(|l| l.contains(". crawl_all (cost"))
            .expect("crawl_all ranked");
        assert!(
            pipeline_rank < crawl_rank,
            "annotate-reachable chain must outrank crawl-only chain:\n{report}"
        );
        assert!(report.contains("annotate_policy_with"), "{report}");
    }

    #[test]
    fn contention_no_longer_ranks_annotate_stage_ledger_first() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let report = contention(&root).expect("contention report builds");
        let lines: Vec<&str> = report.lines().collect();
        let rank_of = |needle: &str| {
            lines
                .iter()
                .position(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("`{needle}` missing from ranking:\n{report}"))
        };
        // The annotate-stage usage ledger used to be the #1 lock (one
        // Mutex around the whole usage map, clone-heavy breakdown work
        // held inside it). After sharding it into per-task atomic
        // counters behind a read-mostly RwLock index it must rank below
        // the crawl-side host registry — the streaming-refactor worklist
        // moved on. The old monolithic lock is gone entirely.
        assert!(
            !report.contains("chatbot::UsageLedger.inner"),
            "monolithic ledger mutex should no longer exist:\n{report}"
        );
        let ledger = rank_of("chatbot::UsageLedger.tasks");
        assert!(
            rank_of("net::Internet.hosts") < ledger,
            "sharded ledger index must rank below the host registry:\n{report}"
        );
        assert!(
            !lines
                .get(2)
                .is_some_and(|l| l.contains("chatbot::UsageLedger")),
            "ledger must not be the top-ranked lock:\n{report}"
        );
    }

    #[test]
    fn filtered_run_sees_only_kept_files() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let report = run_filtered(&root, Allowlist::default(), |rel| {
            rel.starts_with("crates/lint/src/")
        })
        .expect("subset scan");
        let all = source_files(&root).unwrap();
        assert!(report.files_scanned > 0);
        assert!(report.files_scanned < all.len());
    }
}
