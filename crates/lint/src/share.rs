//! `W1`/`W2`: static sharing and lock-contention analysis for worker
//! pools, plus the `--contention` ranking report.
//!
//! BENCH_pipeline.json shows multi-worker cells *slower* than serial:
//! workers parallelize the crawl but serialize on shared state in the
//! annotate-heavy stage. This pass finds the static signatures of that
//! failure. From every spawn point inside a loop (a worker pool), it
//! computes the values reachable by the worker closure — capture
//! analysis over the [`crate::expr`] walkers plus the
//! [`crate::callgraph`] for callee effects — and combines them with the
//! [`crate::guards`] lock vocabulary and [`crate::cost`] weights.
//!
//! **`W1` unsynchronized-worker-mutation** (Deny): a worker closure
//! spawned in a loop mutates state that is shared across workers (bound
//! outside the spawning loop) through no recognized synchronization
//! primitive. Mutation is an assignment, a `&mut` borrow, a known
//! mutating method, or a resolved workspace call whose callee mutates
//! the corresponding parameter or `self`. Per-worker state (re-bound
//! inside the spawning loop, e.g. cloned channel handles) and accesses
//! through `Mutex`/`RwLock`/atomic/channel methods are exempt.
//!
//! **`W2` hot-loop-lock-with-expensive-region** (Warn): a lock acquired
//! inside a *corpus-scale* loop of a hot fn, holding allocation work of
//! weight ≥ [`W2_HELD_MIN`] while other workers wait. Worker-scale loops
//! (`for _ in 0..workers`) are not corpus loops — spawning N workers
//! acquires N times, iterating the corpus acquires 30k times.
//!
//! **Contention ranking** (`cargo lint --contention`): every recognized
//! acquisition site in the hot set is priced `(1 + held allocation
//! weight) << 3·depth`, where depth saturates like the cost model's and
//! adds the interprocedural loop multiplicity of the fn (propagated from
//! the pipeline entries over hot call edges) to the site's own corpus
//! loop depth. Sites aggregate per lock by *maximum* (contention is
//! bounded by the worst site, not the sum of cheap ones), and the
//! ranking is the streaming-refactor worklist recorded in
//! EXPERIMENTS.md.
//!
//! Approximation directions (see DESIGN.md §6a): the bound-name set
//! inside a closure is over-approximated (any binding anywhere in the
//! closure), so captures — and therefore `W1` findings — are
//! under-approximated; a `Deny` rule must not cry wolf. Sharing is
//! decided purely by binding position, which over-approximates sharing
//! for values rebound via helpers, but every such value must still show
//! an unsynchronized mutation to fire.

use crate::callgraph::{CallGraph, FnNode, Resolution};
use crate::cfg::Cfg;
use crate::cost::{self, CostModel};
use crate::expr::{child_blocks, for_each_child, Expr, ExprKind, Pat, Stmt};
use crate::findings::{Finding, Severity};
use crate::graph::Workspace;
use crate::guards;
use crate::retain::{self, tree_any};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Held allocation weight at or above which `W2` fires (a bare
/// counter-bump region weighs 1 and stays quiet; one clone or grow
/// inside the region reaches 2).
pub const W2_HELD_MIN: u64 = 2;

/// Methods whose receiver is a synchronization primitive: accessing
/// shared state through these is the *sanctioned* path, never a `W1`
/// mutation.
const SYNC_METHODS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_xor",
    "iter",
    "join",
    "load",
    "lock",
    "notify_all",
    "notify_one",
    "read",
    "recv",
    "recv_timeout",
    "send",
    "store",
    "swap",
    "try_iter",
    "try_recv",
    "wait",
    "write",
];

/// Methods that mutate their receiver in place (the `W1` trigger set;
/// deliberately explicit rather than "anything not read-only" — a `Deny`
/// rule fires on evidence, not on ignorance).
const MUTATING_METHODS: &[&str] = &[
    "append",
    "clear",
    "dedup",
    "drain",
    "entry",
    "extend",
    "get_mut",
    "insert",
    "iter_mut",
    "pop",
    "pop_back",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "remove",
    "replace",
    "resize",
    "retain",
    "set",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "take",
    "truncate",
    "values_mut",
];

/// Identifier fragments that mark a loop as worker-scale rather than
/// corpus-scale (`for _ in 0..workers`): spawning N workers is O(N) in
/// worker count, not in corpus size.
const WORKER_LOOP_HINTS: &[&str] = &["worker", "thread"];

/// Path roots that name types/modules rather than runtime values.
fn is_value_root(root: &str) -> bool {
    !matches!(root, "crate" | "super" | "std" | "core" | "alloc" | "Self")
        && !root.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Root identifier of a place expression, peeling fields, indexing,
/// derefs, and borrows; `self.x.y` roots at `self`.
fn place_root_of(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [one] => Some(one.clone()),
            _ => None,
        },
        ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => place_root_of(base),
        ExprKind::Unary { operand, .. } | ExprKind::Ref { operand, .. } => place_root_of(operand),
        _ => None,
    }
}

/// Deep statement walk: every statement and every expression in the
/// tree, match-arm guards and bodies included (the shared walkers stop
/// at arm boundaries, which the capture analysis cannot afford).
fn deep_walk_stmts<'e>(
    stmts: &'e [Stmt],
    on_stmt: &mut impl FnMut(&'e Stmt),
    on_expr: &mut impl FnMut(&'e Expr),
) {
    for stmt in stmts {
        on_stmt(stmt);
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    deep_walk_expr(e, on_stmt, on_expr);
                }
                if let Some(b) = else_block {
                    deep_walk_stmts(b, on_stmt, on_expr);
                }
            }
            Stmt::Expr { expr, .. } => deep_walk_expr(expr, on_stmt, on_expr),
        }
    }
}

fn deep_walk_expr<'e>(
    e: &'e Expr,
    on_stmt: &mut impl FnMut(&'e Stmt),
    on_expr: &mut impl FnMut(&'e Expr),
) {
    on_expr(e);
    for_each_child(e, &mut |c| deep_walk_expr(c, on_stmt, on_expr));
    if let ExprKind::Match { arms, .. } = &e.kind {
        for arm in arms {
            if let Some(g) = &arm.guard {
                deep_walk_expr(g, on_stmt, on_expr);
            }
            deep_walk_expr(&arm.body, on_stmt, on_expr);
        }
    }
    for block in child_blocks(e) {
        deep_walk_stmts(block, on_stmt, on_expr);
    }
}

/// All names bound anywhere inside an expression tree: `let` patterns,
/// `for`/`if let`/`while let` patterns, match-arm patterns, and nested
/// closure params. Over-approximating boundness under-approximates the
/// capture set — the safe direction for a `Deny` rule.
fn bound_names_in(e: &Expr, out: &mut BTreeSet<String>) {
    let mut pats: Vec<&Pat> = Vec::new();
    // Two walks: the walker takes two independent `FnMut`s, so one
    // collector per pass keeps the borrows disjoint.
    deep_walk_expr(
        e,
        &mut |s| {
            if let Stmt::Let { pat, .. } = s {
                pats.push(pat);
            }
        },
        &mut |_| {},
    );
    deep_walk_expr(e, &mut |_| {}, &mut |x| match &x.kind {
        ExprKind::IfLet { pat, .. }
        | ExprKind::WhileLet { pat, .. }
        | ExprKind::For { pat, .. } => pats.push(pat),
        ExprKind::Match { arms, .. } => {
            for arm in arms {
                pats.push(&arm.pat);
            }
        }
        ExprKind::Closure { params, .. } => {
            for p in params {
                pats.push(p);
            }
        }
        _ => {}
    });
    for pat in pats {
        let mut names = Vec::new();
        pat.bound_names(&mut names);
        out.extend(names);
    }
}

/// Value roots *used* inside an expression tree (single-segment path
/// roots of places, plus `self`), match-arm and closure bodies included.
fn used_roots_in(e: &Expr, out: &mut BTreeSet<String>) {
    deep_walk_expr(e, &mut |_| {}, &mut |x| {
        if let ExprKind::Path(segs) = &x.kind {
            if let [one] = segs.as_slice() {
                if is_value_root(one) {
                    out.insert(one.clone());
                }
            }
        }
    });
}

/// The free value roots a closure captures from its environment: every
/// root used in the body minus the closure params and every name bound
/// inside the body. This is the worker-reachable set for `W1`, and — by
/// construction — depends only on the closure text, never on how many
/// workers the enclosing loop spawns.
pub fn captured_roots(params: &[Pat], body: &Expr) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for p in params {
        let mut names = Vec::new();
        p.bound_names(&mut names);
        bound.extend(names);
    }
    bound_names_in(body, &mut bound);
    let mut used = BTreeSet::new();
    used_roots_in(body, &mut used);
    used.retain(|r| !bound.contains(r));
    used
}

/// A spawn call's worker closure, when the expression is one: the first
/// closure among the call arguments (searching through nested trees, so
/// `scope.spawn(move |_| { .. })` and builder forms both resolve).
fn spawn_closure(e: &Expr) -> Option<&Expr> {
    let args = match &e.kind {
        ExprKind::MethodCall { name, args, .. } if name == "spawn" => args,
        ExprKind::Call { callee, args } => {
            if matches!(&callee.kind, ExprKind::Path(segs) if segs.last().is_some_and(|s| s == "spawn"))
            {
                args
            } else {
                return None;
            }
        }
        _ => return None,
    };
    fn first_closure(e: &Expr) -> Option<&Expr> {
        if matches!(e.kind, ExprKind::Closure { .. }) {
            return Some(e);
        }
        let mut found = None;
        for_each_child(e, &mut |c| {
            if found.is_none() {
                found = first_closure(c);
            }
        });
        found
    }
    args.iter().find_map(first_closure)
}

/// Whether a `for` head iterates worker-count state rather than the
/// corpus (`for _ in 0..workers.min(n)`).
fn is_worker_loop(lp: &Expr) -> bool {
    let ExprKind::For { iter, .. } = &lp.kind else {
        return false;
    };
    tree_any(iter, &|x| match &x.kind {
        ExprKind::Path(segs) => segs.iter().any(|s| {
            let lower = s.to_ascii_lowercase();
            WORKER_LOOP_HINTS.iter().any(|h| lower.contains(h))
        }),
        _ => false,
    })
}

/// Per-fn effect summary for the interprocedural leg of `W1`: whether
/// the fn mutates `self`, and which params it mutates.
struct EffectSummary {
    mutates_self: bool,
    mutated_params: BTreeSet<String>,
}

fn effect_summary(node: &FnNode<'_>) -> EffectSummary {
    let params: BTreeSet<String> = node.info.params.iter().map(|p| p.name.clone()).collect();
    let mut mutates_self = false;
    let mut mutated_params = BTreeSet::new();
    deep_walk_stmts(&node.info.body, &mut |_| {}, &mut |e| {
        let target = match &e.kind {
            ExprKind::Assign { lhs, .. } => place_root_of(lhs),
            ExprKind::Ref {
                mutable: true,
                operand,
            } => place_root_of(operand),
            ExprKind::MethodCall { recv, name, .. }
                if MUTATING_METHODS.contains(&name.as_str()) =>
            {
                place_root_of(recv)
            }
            _ => None,
        };
        if let Some(root) = target {
            if root == "self" {
                mutates_self = true;
            } else if params.contains(&root) {
                mutated_params.insert(root);
            }
        }
    });
    EffectSummary {
        mutates_self,
        mutated_params,
    }
}

/// One spawn point inside a loop, with the worker closure and the set of
/// names bound inside the spawning loop (per-worker state).
struct SpawnPoint<'a> {
    spawn_line: u32,
    closure: &'a Expr,
    per_worker: BTreeSet<String>,
}

/// Every spawn-in-a-loop in a fn body.
fn spawn_points<'a>(body: &'a [Stmt]) -> Vec<SpawnPoint<'a>> {
    let mut out = Vec::new();
    fn walk<'a>(stmts: &'a [Stmt], stack: &mut Vec<&'a Expr>, out: &mut Vec<SpawnPoint<'a>>) {
        for stmt in stmts {
            match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        walk_expr(e, stack, out);
                    }
                    if let Some(b) = else_block {
                        walk(b, stack, out);
                    }
                }
                Stmt::Expr { expr, .. } => walk_expr(expr, stack, out),
            }
        }
    }
    fn walk_expr<'a>(e: &'a Expr, stack: &mut Vec<&'a Expr>, out: &mut Vec<SpawnPoint<'a>>) {
        let is_loop = matches!(
            e.kind,
            ExprKind::While { .. }
                | ExprKind::WhileLet { .. }
                | ExprKind::For { .. }
                | ExprKind::Loop { .. }
        );
        if is_loop {
            stack.push(e);
        }
        if let (Some(closure), Some(lp)) = (spawn_closure(e), stack.last()) {
            let mut per_worker = BTreeSet::new();
            // Names bound by the innermost loop: its own pattern plus
            // anything bound in its body (the per-iteration clones).
            if let ExprKind::For { pat, .. } | ExprKind::WhileLet { pat, .. } = &lp.kind {
                let mut names = Vec::new();
                pat.bound_names(&mut names);
                per_worker.extend(names);
            }
            for block in child_blocks(lp) {
                deep_walk_stmts(
                    block,
                    &mut |s| {
                        if let Stmt::Let { pat, .. } = s {
                            let mut names = Vec::new();
                            pat.bound_names(&mut names);
                            per_worker.extend(names);
                        }
                    },
                    &mut |_| {},
                );
            }
            out.push(SpawnPoint {
                spawn_line: e.line,
                closure,
                per_worker,
            });
        }
        for_each_child(e, &mut |c| walk_expr(c, stack, out));
        if let ExprKind::Match { arms, .. } = &e.kind {
            for arm in arms {
                walk_expr(&arm.body, stack, out);
            }
        }
        for block in child_blocks(e) {
            walk(block, stack, out);
        }
        if is_loop {
            stack.pop();
        }
    }
    let mut stack = Vec::new();
    walk(body, &mut stack, &mut out);
    out
}

/// A mutation of a shared capture found inside a worker closure.
struct SharedMutation {
    capture: String,
    line: u32,
    col: u32,
    how: String,
}

/// Mutations of any shared capture inside the closure body, including
/// the interprocedural leg through resolved workspace callees.
fn shared_mutations(
    node: &FnNode<'_>,
    graph: &CallGraph<'_>,
    effects: &[EffectSummary],
    closure_body: &Expr,
    shared: &BTreeSet<String>,
) -> Vec<SharedMutation> {
    let mut out = Vec::new();
    deep_walk_expr(closure_body, &mut |_| {}, &mut |e| {
        match &e.kind {
            ExprKind::Assign { lhs, .. } => {
                if let Some(root) = place_root_of(lhs) {
                    if shared.contains(&root) {
                        out.push(SharedMutation {
                            capture: root,
                            line: lhs.line,
                            col: lhs.col,
                            how: "assigned".to_string(),
                        });
                    }
                }
            }
            ExprKind::Ref {
                mutable: true,
                operand,
            } => {
                if let Some(root) = place_root_of(operand) {
                    if shared.contains(&root) {
                        out.push(SharedMutation {
                            capture: root,
                            line: operand.line,
                            col: operand.col,
                            how: "mutably borrowed".to_string(),
                        });
                    }
                }
            }
            ExprKind::MethodCall { recv, name, .. } => {
                if SYNC_METHODS.contains(&name.as_str()) {
                    return;
                }
                let Some(root) = place_root_of(recv) else {
                    return;
                };
                if !shared.contains(&root) {
                    return;
                }
                if MUTATING_METHODS.contains(&name.as_str()) {
                    out.push(SharedMutation {
                        capture: root,
                        line: e.line,
                        col: e.col,
                        how: format!("mutated via `.{name}()`"),
                    });
                    return;
                }
                // Interprocedural: a resolved workspace method on the
                // capture whose body mutates `self` (matched to the
                // parser's call sites by line + name).
                for cs in &node.info.calls {
                    if cs.line == e.line && cs.is_method && cs.name == *name {
                        if let Resolution::Fns(ids) = graph.resolve(node.file, node.self_ty, cs) {
                            if ids
                                .iter()
                                .any(|id| effects.get(*id).is_some_and(|s| s.mutates_self))
                            {
                                out.push(SharedMutation {
                                    capture: root.clone(),
                                    line: e.line,
                                    col: e.col,
                                    how: format!("mutated through workspace method `{name}`"),
                                });
                            }
                        }
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                // Interprocedural: the capture passed to a resolved
                // workspace fn that mutates the matching parameter.
                let callee_name = match &callee.kind {
                    ExprKind::Path(segs) => segs.last().cloned(),
                    _ => None,
                };
                let Some(callee_name) = callee_name else {
                    return;
                };
                for cs in &node.info.calls {
                    if cs.line != e.line || cs.is_method || cs.name != callee_name {
                        continue;
                    }
                    let Resolution::Fns(ids) = graph.resolve(node.file, node.self_ty, cs) else {
                        continue;
                    };
                    for (pos, arg) in args.iter().enumerate() {
                        let root = match &arg.kind {
                            ExprKind::Ref { operand, .. } => place_root_of(operand),
                            _ => place_root_of(arg),
                        };
                        let Some(root) = root else { continue };
                        if !shared.contains(&root) {
                            continue;
                        }
                        for id in &ids {
                            let Some(callee_fn) = graph.fns.get(*id) else {
                                continue;
                            };
                            let Some(param) = callee_fn.info.params.get(pos) else {
                                continue;
                            };
                            if effects
                                .get(*id)
                                .is_some_and(|s| s.mutated_params.contains(&param.name))
                            {
                                out.push(SharedMutation {
                                    capture: root.clone(),
                                    line: arg.line,
                                    col: arg.col,
                                    how: format!(
                                        "mutated through workspace fn `{}`",
                                        callee_fn.name
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    });
    out
}

/// Whether a loop is *constant-bounded* rather than corpus-scale: a
/// `while` whose condition shows bound evidence, or a `loop`/`while let`
/// whose body has a bound-guarded exit (`if redirects >= MAX { return }`,
/// `if i >= n { break }` with `n` derived from `.len()`). Such loops run
/// a small constant number of times (retries, redirects, index hand-off)
/// and must not multiply contention depth the way a per-domain corpus
/// loop does. `for` loops never qualify — iterating a sized input IS the
/// corpus-scale case.
fn is_constant_bounded_loop(e: &Expr, bounds: &BTreeSet<String>) -> bool {
    match &e.kind {
        ExprKind::While { cond, body } => {
            retain::mentions_bound(cond, bounds) || retain::guarded_exit(body, bounds)
        }
        ExprKind::WhileLet { body, .. } | ExprKind::Loop { body } => {
            retain::guarded_exit(body, bounds)
        }
        _ => false,
    }
}

/// One recognized lock-acquisition site.
struct AcquisitionSite {
    /// Lock identity (`crate::Struct.field` or `crate::fn::local`).
    lock: String,
    line: u32,
    col: u32,
    /// 1 + allocation weight of the held region.
    held: u64,
    /// Corpus loop depth of the site inside its fn.
    depth: u32,
}

/// Collect every acquisition site in one fn, with held weight and corpus
/// loop depth. Guard binds hold until `drop(guard)` or scope end; a
/// chained acquisition holds for its own statement.
fn acquisition_sites(
    node: &FnNode<'_>,
    fields: Option<&BTreeSet<String>>,
    locals: &BTreeSet<String>,
) -> Vec<AcquisitionSite> {
    let mut out = Vec::new();
    let body = &node.info.body;
    let bounds = retain::bound_locals(body);
    fn lock_name(node: &FnNode<'_>, e: &Expr) -> Option<String> {
        fn acq_recv<'e>(e: &'e Expr) -> Option<&'e Expr> {
            if let ExprKind::MethodCall { recv, name, .. } = &e.kind {
                if guards::ACQUIRE_METHODS.contains(&name.as_str()) {
                    return Some(recv);
                }
            }
            let mut found = None;
            for_each_child(e, &mut |c| {
                if found.is_none() {
                    found = acq_recv(c);
                }
            });
            found
        }
        let recv = acq_recv(e)?;
        match &recv.kind {
            ExprKind::Field { base, name } if matches!(&base.kind, ExprKind::Path(segs) if segs.as_slice() == ["self"]) => {
                Some(format!(
                    "{}::{}.{}",
                    node.crate_name,
                    node.self_ty.unwrap_or("?"),
                    name
                ))
            }
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] => Some(format!("{}::{}::{}", node.crate_name, node.name, one)),
                _ => None,
            },
            _ => None,
        }
    }
    fn walk(
        stmts: &[Stmt],
        depth: u32,
        node: &FnNode<'_>,
        fields: Option<&BTreeSet<String>>,
        locals: &BTreeSet<String>,
        bounds: &BTreeSet<String>,
        out: &mut Vec<AcquisitionSite>,
    ) {
        for (i, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Let {
                    pat, init, line, ..
                } => {
                    if let Some(init) = init {
                        if guards::acquisition_in(init, fields, locals).is_some() {
                            if let Some(lock) = lock_name(node, init) {
                                let mut guard_names = Vec::new();
                                pat.bound_names(&mut guard_names);
                                // Held region: the remainder of this
                                // statement list, clipped at an explicit
                                // `drop(guard)`.
                                let mut held = cost::alloc_weight(init);
                                for later in stmts.iter().skip(i + 1) {
                                    if let Stmt::Expr { expr, .. } = later {
                                        let dropped = guard_names
                                            .first()
                                            .is_some_and(|g| is_drop_of(expr, g));
                                        if dropped {
                                            break;
                                        }
                                    }
                                    held = held.saturating_add(stmt_alloc_weight(later));
                                }
                                out.push(AcquisitionSite {
                                    lock,
                                    line: *line,
                                    col: init.col,
                                    held: held.saturating_add(1),
                                    depth,
                                });
                            }
                        }
                        walk_expr(init, depth, node, fields, locals, bounds, out);
                        continue;
                    }
                }
                Stmt::Expr { expr, .. } => {
                    if guards::acquisition_in(expr, fields, locals).is_some() {
                        if let Some(lock) = lock_name(node, expr) {
                            out.push(AcquisitionSite {
                                lock,
                                line: expr.line,
                                col: expr.col,
                                held: cost::alloc_weight(expr).saturating_add(1),
                                depth,
                            });
                        }
                        // The acquisition is priced at this statement;
                        // still walk nested blocks for deeper sites.
                    }
                    walk_expr(expr, depth, node, fields, locals, bounds, out);
                }
            }
        }
    }
    fn walk_expr(
        e: &Expr,
        depth: u32,
        node: &FnNode<'_>,
        fields: Option<&BTreeSet<String>>,
        locals: &BTreeSet<String>,
        bounds: &BTreeSet<String>,
        out: &mut Vec<AcquisitionSite>,
    ) {
        let is_loop = matches!(
            e.kind,
            ExprKind::While { .. }
                | ExprKind::WhileLet { .. }
                | ExprKind::For { .. }
                | ExprKind::Loop { .. }
        );
        let inner = if is_loop && !is_worker_loop(e) && !is_constant_bounded_loop(e, bounds) {
            depth.saturating_add(1)
        } else {
            depth
        };
        for_each_child(e, &mut |c| {
            walk_expr(c, depth, node, fields, locals, bounds, out)
        });
        if let ExprKind::Match { arms, .. } = &e.kind {
            for arm in arms {
                walk_expr(&arm.body, depth, node, fields, locals, bounds, out);
            }
        }
        for block in child_blocks(e) {
            walk(block, inner, node, fields, locals, bounds, out);
        }
    }
    walk(body, 0, node, fields, locals, &bounds, &mut out);
    out
}

/// Whether an expression is `drop(name)`.
fn is_drop_of(e: &Expr, name: &str) -> bool {
    tree_any(e, &|x| match &x.kind {
        ExprKind::Call { callee, args } => {
            matches!(&callee.kind, ExprKind::Path(segs) if segs.last().is_some_and(|s| s == "drop"))
                && args
                    .iter()
                    .any(|a| matches!(&a.kind, ExprKind::Path(segs) if segs.as_slice() == [name]))
        }
        _ => false,
    })
}

/// Allocation weight of everything one statement evaluates, including
/// nested blocks (the held region is priced pessimistically — the guard
/// outlives everything declared after it in the block).
fn stmt_alloc_weight(stmt: &Stmt) -> u64 {
    let mut total = 0u64;
    let add = |total: &mut u64, e: &Expr| {
        *total = total.saturating_add(cost::alloc_weight(e));
    };
    match stmt {
        Stmt::Let {
            init, else_block, ..
        } => {
            if let Some(e) = init {
                add(&mut total, e);
            }
            for s in else_block.iter().flatten() {
                total = total.saturating_add(stmt_alloc_weight(s));
            }
        }
        Stmt::Expr { expr, .. } => add(&mut total, expr),
    }
    total
}

/// Per-line corpus loop depth for one fn (worker loops excluded),
/// recorded as the max depth of any expression on the line.
fn corpus_line_depths(body: &[Stmt]) -> BTreeMap<u32, u32> {
    let mut map = BTreeMap::new();
    let bounds = retain::bound_locals(body);
    fn walk(stmts: &[Stmt], depth: u32, bounds: &BTreeSet<String>, map: &mut BTreeMap<u32, u32>) {
        for stmt in stmts {
            match stmt {
                Stmt::Let {
                    init,
                    else_block,
                    line,
                    ..
                } => {
                    note(map, *line, depth);
                    if let Some(e) = init {
                        walk_expr(e, depth, bounds, map);
                    }
                    if let Some(b) = else_block {
                        walk(b, depth, bounds, map);
                    }
                }
                Stmt::Expr { expr, .. } => walk_expr(expr, depth, bounds, map),
            }
        }
    }
    fn walk_expr(e: &Expr, depth: u32, bounds: &BTreeSet<String>, map: &mut BTreeMap<u32, u32>) {
        note(map, e.line, depth);
        let is_loop = matches!(
            e.kind,
            ExprKind::While { .. }
                | ExprKind::WhileLet { .. }
                | ExprKind::For { .. }
                | ExprKind::Loop { .. }
        );
        let inner = if is_loop && !is_worker_loop(e) && !is_constant_bounded_loop(e, bounds) {
            depth.saturating_add(1)
        } else {
            depth
        };
        for_each_child(e, &mut |c| walk_expr(c, depth, bounds, map));
        if let ExprKind::Match { arms, .. } = &e.kind {
            for arm in arms {
                walk_expr(&arm.body, depth, bounds, map);
            }
        }
        for block in child_blocks(e) {
            walk(block, inner, bounds, map);
        }
    }
    fn note(map: &mut BTreeMap<u32, u32>, line: u32, depth: u32) {
        let entry = map.entry(line).or_insert(0);
        *entry = (*entry).max(depth);
    }
    walk(body, 0, &bounds, &mut map);
    map
}

/// Interprocedural corpus-loop multiplicity per hot fn: entries start at
/// 0; a callee inherits `min(MAX, caller + callsite depth)`, maximized
/// over hot callers, to a fixpoint (monotone and bounded, so it
/// terminates).
fn hot_multiplicity(graph: &CallGraph<'_>, model: &CostModel) -> Vec<Option<u32>> {
    let n = graph.fns.len();
    let mut depth_maps: Vec<Option<BTreeMap<u32, u32>>> = vec![None; n];
    let mut mult: Vec<Option<u32>> = vec![None; n];
    for &e in &model.entries {
        if let Some(slot) = mult.get_mut(e) {
            *slot = Some(0);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            let Some(du) = mult.get(u).copied().flatten() else {
                continue;
            };
            if depth_maps.get(u).is_some_and(Option::is_none) {
                let map = graph
                    .fns
                    .get(u)
                    .map(|nd| corpus_line_depths(&nd.info.body))
                    .unwrap_or_default();
                if let Some(slot) = depth_maps.get_mut(u) {
                    *slot = Some(map);
                }
            }
            let edges = graph.edges.get(u).map(Vec::as_slice).unwrap_or(&[]);
            for edge in edges {
                if !model.is_hot(edge.to) {
                    continue;
                }
                let site_depth = depth_maps
                    .get(u)
                    .and_then(|m| m.as_ref())
                    .and_then(|m| m.get(&edge.line))
                    .copied()
                    .unwrap_or(0);
                let cand = du.saturating_add(site_depth).min(cost::MAX_SCALED_DEPTH);
                let slot = mult.get_mut(edge.to);
                if let Some(slot) = slot {
                    if slot.is_none() || slot.is_some_and(|v| v < cand) {
                        *slot = Some(cand);
                        changed = true;
                    }
                }
            }
        }
    }
    mult
}

/// Run the `W1`/`W2` sharing passes over an analyzed workspace.
pub fn check_sharing(ws: &Workspace, graph: &CallGraph<'_>, model: &CostModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registry = guards::lock_registry(ws);
    let effects: Vec<EffectSummary> = graph.fns.iter().map(effect_summary).collect();

    for (id, node) in graph.fns.iter().enumerate() {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let params: BTreeSet<String> = node.info.params.iter().map(|p| p.name.clone()).collect();

        // W1: spawn-in-loop worker pools.
        for sp in spawn_points(&node.info.body) {
            let ExprKind::Closure {
                params: cl_params,
                body,
                ..
            } = &sp.closure.kind
            else {
                continue;
            };
            let captures = captured_roots(cl_params, body);
            let shared: BTreeSet<String> = captures
                .into_iter()
                .filter(|c| c == "self" || params.contains(c) || !sp.per_worker.contains(c))
                .collect();
            if shared.is_empty() {
                continue;
            }
            for m in shared_mutations(node, graph, &effects, body, &shared) {
                findings.push(Finding::at(
                    "W1",
                    Severity::Deny,
                    &file.parsed.rel_path,
                    m.line,
                    m.col,
                    format!(
                        "worker closure spawned in a loop (line {}) reaches `{}` shared \
                         across workers, and it is {} outside any lock region; guard it \
                         with a Mutex/RwLock/atomic or give each worker its own copy",
                        sp.spawn_line, m.capture, m.how
                    ),
                    file.snippet(m.line),
                ));
            }
        }

        // W2: expensive lock regions inside corpus-scale hot loops.
        if !model.is_hot(id) {
            continue;
        }
        let cfg = Cfg::build(&node.info.body);
        let locals = guards::lock_locals(node, &cfg);
        let fields = node
            .self_ty
            .and_then(|ty| registry.get(&(file.crate_name.clone(), ty.to_string())));
        for site in acquisition_sites(node, fields, &locals) {
            if site.depth == 0 || site.held < W2_HELD_MIN {
                continue;
            }
            findings.push(Finding::at(
                "W2",
                Severity::Warn,
                &file.parsed.rel_path,
                site.line,
                site.col,
                format!(
                    "lock `{}` is acquired inside a corpus-scale loop with held \
                     allocation weight {} (threshold {}) (hot path: {}); move the \
                     allocation out of the region or batch updates per iteration \
                     (rank regions with `cargo lint --contention`)",
                    site.lock,
                    site.held,
                    W2_HELD_MIN,
                    model
                        .hot_path(graph, id)
                        .unwrap_or_else(|| node.name.to_string()),
                ),
                file.snippet(site.line),
            ));
        }
    }
    findings
}

/// One aggregated lock in the contention ranking.
pub struct ContentionEntry {
    /// Lock identity (`crate::Struct.field` or `crate::fn::local`).
    pub lock: String,
    /// Max site score `(1 + held) << 3·depth`.
    pub score: u64,
    /// Number of hot acquisition sites aggregated.
    pub sites: usize,
    /// `file:line` of the highest-scoring site.
    pub top_site: String,
}

/// Rank every lock by worst-case hot contention. Deterministic: sites
/// aggregate per lock by maximum score, entries order by score
/// descending then lock name ascending.
///
/// Every acquisition site in the workspace participates: fns the call
/// graph proves hot scale by their interprocedural corpus multiplicity;
/// fns it cannot resolve a path to (cross-type method calls do not
/// resolve, so most annotate/crawl-stage methods are "cold" to the
/// graph) are priced at base depth, where the held allocation weight
/// still separates an allocate-under-lock ledger from a counter bump.
/// This under-approximates depth for unresolved-but-reachable fns —
/// scores are a lower bound, never an overstatement.
pub fn contention_ranking(
    ws: &Workspace,
    graph: &CallGraph<'_>,
    model: &CostModel,
) -> Vec<ContentionEntry> {
    let registry = guards::lock_registry(ws);
    let mult = hot_multiplicity(graph, model);
    let mut per_lock: BTreeMap<String, (u64, usize, String)> = BTreeMap::new();
    for (id, node) in graph.fns.iter().enumerate() {
        let d_fn = mult.get(id).copied().flatten().unwrap_or(0);
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        let cfg = Cfg::build(&node.info.body);
        let locals = guards::lock_locals(node, &cfg);
        let fields = node
            .self_ty
            .and_then(|ty| registry.get(&(file.crate_name.clone(), ty.to_string())));
        for site in acquisition_sites(node, fields, &locals) {
            let depth = d_fn.saturating_add(site.depth).min(cost::MAX_SCALED_DEPTH);
            let score = cost::scaled(site.held, depth);
            let where_ = format!("{}:{}", file.parsed.rel_path, site.line);
            let entry = per_lock
                .entry(site.lock.clone())
                .or_insert((0, 0, where_.clone()));
            entry.1 = entry.1.saturating_add(1);
            if score > entry.0 {
                entry.0 = score;
                entry.2 = where_;
            }
        }
    }
    let mut ranked: Vec<ContentionEntry> = per_lock
        .into_iter()
        .map(|(lock, (score, sites, top_site))| ContentionEntry {
            lock,
            score,
            sites,
            top_site,
        })
        .collect();
    ranked.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.lock.cmp(&b.lock)));
    ranked
}

/// Render the `--contention` report.
pub fn contention_report(ws: &Workspace, graph: &CallGraph<'_>, model: &CostModel) -> String {
    let ranked = contention_ranking(ws, graph, model);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aipan-lint --contention: per-lock hot contention ranking \
         (score = (1 + held alloc weight) << 3*depth, max over sites)"
    );
    if ranked.is_empty() {
        let _ = writeln!(
            out,
            "  (no lock acquisitions reachable from pipeline entries)"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "{:>4}  {:>8}  {:>5}  {:40}  top site",
        "rank", "score", "sites", "lock"
    );
    for (i, e) in ranked.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>4}  {:>8}  {:>5}  {:40}  {}",
            i + 1,
            e.score,
            e.sites,
            e.lock,
            e.top_site
        );
    }
    out
}
