//! `D3`: determinism taint — hash-order values must be sorted before
//! they reach output.
//!
//! The token-level `D2` rule catches `map.iter()` feeding `writeln!` in
//! one expression; this pass tracks the same hazard *through bindings*
//! with a may-dataflow over the fn's CFG. A value is **tainted** when it
//! is produced by iterating a `HashMap`/`HashSet` (whose order varies
//! per process); taint propagates through `let` rebinding and dies at a
//! **sanitizer** — an in-place `sort`/`sort_unstable`/`sort_by*` or a
//! `collect` into a `BTreeMap`/`BTreeSet`. A finding fires when a
//! tainted value reaches an **output sink**:
//!
//! - a `write!`/`print!`-family macro argument or `{name}` capture;
//! - `serde_json::to_string`/`to_vec`/`to_writer`/`to_value` or a
//!   `.serialize(..)` call;
//! - `push`/`insert`/`extend` into a collection the fn returns (the
//!   caller sees the nondeterministic order), unless that collection is
//!   itself a BTree (self-ordering).
//!
//! Hash-typed names come from parameter types, `let` annotations and
//! initializers (`HashMap::new()`, `collect::<HashMap<..>>()`), and
//! `self.<field>` for struct fields whose type mentions a hash
//! container. Approximation notes. **Over**: any mention of a tainted
//! name inside a sink argument fires, even inside arithmetic that
//! erases order (e.g. summing). **Under**: taint through fields of
//! structs built from tainted values, through fn returns, and through
//! non-`self` method receivers is not tracked.

use crate::callgraph::CallGraph;
use crate::cfg::{Cfg, Step};
use crate::dataflow::{self, Analysis};
use crate::expr::{for_each_child, for_each_expr, for_each_let, Expr, ExprKind, Pat, Stmt};
use crate::findings::{Finding, Severity};
use crate::graph::{AnalyzedFile, Workspace};
use crate::parser::ItemKind;
use std::collections::BTreeSet;

/// Run the `D3` pass over an analyzed workspace and its call graph.
pub fn check_taint(ws: &Workspace, graph: &CallGraph<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for node in &graph.fns {
        let Some(file) = ws.files.get(node.file) else {
            continue;
        };
        check_fn(file, &node.info.body, &node.info.params, &mut findings);
    }
    findings
}

fn check_fn(
    file: &AnalyzedFile,
    body: &[Stmt],
    params: &[crate::parser::Param],
    findings: &mut Vec<Finding>,
) {
    let env = Env::collect(file, body, params);
    if env.hash_names.is_empty() {
        return;
    }
    let cfg = Cfg::build(body);
    let analysis = TaintFlow { env: &env };
    let facts = dataflow::solve(&cfg, &analysis);
    for (id, node) in cfg.nodes.iter().enumerate() {
        let Some(fact_in) = facts.get(id).and_then(|f| f.as_ref()) else {
            continue;
        };
        dataflow::replay(&analysis, &node.steps, fact_in, &mut |step, fact| {
            let expr = match step {
                Step::Eval(e) | Step::Cond(e) => Some(*e),
                Step::Bind { init, .. } => *init,
                Step::ForHead { iter, .. } => Some(*iter),
                Step::PatBind { .. } => None,
            };
            if let Some(e) = expr {
                scan_sinks(e, fact, &env, file, findings);
            }
        });
    }
}

/// Flow-insensitive facts about one fn: which names are hash containers,
/// which are BTree containers, which the fn returns.
struct Env {
    hash_names: BTreeSet<String>,
    btree_names: BTreeSet<String>,
    returned: BTreeSet<String>,
}

impl Env {
    fn collect(file: &AnalyzedFile, body: &[Stmt], params: &[crate::parser::Param]) -> Env {
        let mut hash_names = BTreeSet::new();
        let mut btree_names = BTreeSet::new();
        for p in params {
            if ty_mentions(&p.ty, &["HashMap", "HashSet"]) {
                hash_names.insert(p.name.clone());
            }
            if ty_mentions(&p.ty, &["BTreeMap", "BTreeSet"]) {
                btree_names.insert(p.name.clone());
            }
        }
        // `self.<field>` for hash-typed struct fields anywhere in the
        // file (over-approximates across impls in one file; harmless).
        collect_hash_fields(&file.parsed.items, &mut hash_names);
        for_each_let(body, &mut |pat, ty, init| {
            let Pat::Ident { name, .. } = pat else {
                return;
            };
            if ty_mentions(ty, &["HashMap", "HashSet"]) || init.is_some_and(is_hash_producer) {
                hash_names.insert(name.clone());
            }
            if ty_mentions(ty, &["BTreeMap", "BTreeSet"]) || init.is_some_and(is_btree_producer) {
                btree_names.insert(name.clone());
            }
        });
        hash_names.retain(|n| !btree_names.contains(n));
        let mut returned = BTreeSet::new();
        collect_returned(body, &mut returned);
        Env {
            hash_names,
            btree_names,
            returned,
        }
    }
}

fn ty_mentions(ty: &[String], names: &[&str]) -> bool {
    ty.iter().any(|t| names.contains(&t.as_str()))
}

fn collect_hash_fields(items: &[crate::parser::Item], out: &mut BTreeSet<String>) {
    for item in items {
        if let ItemKind::Struct { fields } = &item.kind {
            for f in fields {
                if f.is_hash {
                    out.insert(format!("self.{}", f.name));
                }
            }
        }
        collect_hash_fields(&item.children, out);
    }
}

/// `HashMap::new()` / `HashSet::with_capacity(..)` / `collect::<HashMap..>()`.
fn is_hash_producer(e: &Expr) -> bool {
    constructor_of(e, &["HashMap", "HashSet"])
}

fn is_btree_producer(e: &Expr) -> bool {
    constructor_of(e, &["BTreeMap", "BTreeSet"])
}

fn constructor_of(e: &Expr, tys: &[&str]) -> bool {
    match &e.kind {
        ExprKind::Call { callee, .. } => callee
            .plain_path()
            .is_some_and(|segs| segs.iter().any(|s| tys.contains(&s.as_str()))),
        ExprKind::MethodCall {
            name, turbofish, ..
        } if name == "collect" => turbofish.iter().any(|t| tys.contains(&t.as_str())),
        _ => false,
    }
}

/// Names the fn hands back: the tail expression, `return n`, and the
/// payload of `Ok(n)` / `Some(n)` in either position.
fn collect_returned(body: &[Stmt], out: &mut BTreeSet<String>) {
    if let Some(Stmt::Expr { expr, semi: false }) = body.last() {
        returned_name(expr, out);
    }
    for_each_expr(body, &mut |e| {
        if let ExprKind::Return(Some(val)) = &e.kind {
            returned_name(val, out);
        }
    });
}

fn returned_name(e: &Expr, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Path(segs) => {
            if let [single] = segs.as_slice() {
                out.insert(single.clone());
            }
        }
        ExprKind::Call { callee, args } => {
            let wrapper = callee
                .plain_path()
                .is_some_and(|p| matches!(p.last().map(String::as_str), Some("Ok" | "Some")));
            if wrapper {
                if let [arg] = args.as_slice() {
                    returned_name(arg, out);
                }
            }
        }
        _ => {}
    }
}

/// The taint lattice: the set of tainted names, union join.
struct TaintFlow<'e> {
    env: &'e Env,
}

impl<'a> Analysis<'a> for TaintFlow<'_> {
    type Fact = BTreeSet<String>;

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) {
        acc.extend(other.iter().cloned());
    }

    fn step(&self, step: &Step<'a>, fact: &mut Self::Fact) {
        match step {
            Step::Bind { pat, ty, init, .. } => {
                // A `BTreeSet`/`BTreeMap` annotation orders the collected
                // value even without a `collect::<BTree..>` turbofish.
                let ordered = ty_mentions(ty, &["BTreeMap", "BTreeSet"]);
                let tainted = !ordered && init.is_some_and(|e| expr_tainted(e, fact, self.env));
                rebind(pat, tainted, fact);
            }
            Step::PatBind { pat, from } => {
                let tainted = iter_tainted(from, fact, self.env);
                rebind(pat, tainted, fact);
            }
            Step::ForHead { pat, iter } => {
                let tainted = iter_tainted(iter, fact, self.env);
                rebind(pat, tainted, fact);
            }
            Step::Eval(e) | Step::Cond(e) => apply_sanitizers(e, fact),
        }
    }
}

fn rebind(pat: &Pat, tainted: bool, fact: &mut BTreeSet<String>) {
    let mut names = Vec::new();
    pat.bound_names(&mut names);
    for n in names {
        if tainted {
            fact.insert(n);
        } else {
            fact.remove(&n);
        }
    }
}

/// `v.sort()` / `v.sort_unstable_by(..)` as a statement cleanses `v`.
fn apply_sanitizers(e: &Expr, fact: &mut BTreeSet<String>) {
    if let ExprKind::MethodCall { recv, name, .. } = &e.kind {
        if name.starts_with("sort") {
            if let Some(place) = place_name(recv) {
                fact.remove(&place);
            }
        }
    }
    for_each_child(e, &mut |c| {
        if !c.is_control() {
            apply_sanitizers(c, fact);
        }
    });
}

fn place_name(e: &Expr) -> Option<String> {
    e.plain_path().map(|segs| segs.join("."))
}

/// Is this expression's value hash-order dependent?
fn expr_tainted(e: &Expr, fact: &BTreeSet<String>, env: &Env) -> bool {
    if hash_iteration_chain(e, env) {
        return true;
    }
    if sanitized_chain(e) {
        return false;
    }
    let mut found = false;
    mentions_tainted(e, fact, &mut found);
    found
}

/// Like [`expr_tainted`], but in *iteration position* (a `for` head or
/// `while let` scrutinee), where naming a hash container directly —
/// `for k in &set` — is itself hash-order iteration.
fn iter_tainted(e: &Expr, fact: &BTreeSet<String>, env: &Env) -> bool {
    let mut root = e;
    while let ExprKind::Ref { operand, .. } = &root.kind {
        root = operand;
    }
    if place_name(root).is_some_and(|p| env.hash_names.contains(&p)) {
        return true;
    }
    expr_tainted(e, fact, env)
}

fn mentions_tainted(e: &Expr, fact: &BTreeSet<String>, found: &mut bool) {
    if *found {
        return;
    }
    if let Some(place) = place_name(e) {
        if fact.contains(&place)
            || place
                .split('.')
                .next()
                .is_some_and(|root| fact.contains(root))
        {
            *found = true;
            return;
        }
    }
    for_each_child(e, &mut |c| {
        if !c.is_control() {
            mentions_tainted(c, fact, found);
        }
    });
}

/// A method chain rooted at a hash container that applies an iteration
/// method, with no re-ordering `collect::<BTree..>` step.
fn hash_iteration_chain(e: &Expr, env: &Env) -> bool {
    let mut cur = e;
    let mut saw_iter = false;
    loop {
        match &cur.kind {
            ExprKind::MethodCall {
                recv,
                name,
                turbofish,
                ..
            } => {
                if name == "collect" && turbofish.iter().any(|t| t == "BTreeMap" || t == "BTreeSet")
                {
                    return false;
                }
                if matches!(
                    name.as_str(),
                    "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut" | "drain"
                ) {
                    saw_iter = true;
                }
                cur = recv;
            }
            ExprKind::Ref { operand, .. } | ExprKind::Try { operand } => cur = operand,
            _ => break,
        }
    }
    saw_iter && place_name(cur).is_some_and(|p| env.hash_names.contains(&p))
}

/// A chain that ends in an explicit re-ordering step.
fn sanitized_chain(e: &Expr) -> bool {
    if let ExprKind::MethodCall {
        name, turbofish, ..
    } = &e.kind
    {
        if name == "collect" && turbofish.iter().any(|t| t == "BTreeMap" || t == "BTreeSet") {
            return true;
        }
    }
    false
}

/// Output-sink macros: their arguments become user-visible bytes.
const SINK_MACROS: &[&str] = &[
    "write", "writeln", "print", "println", "eprint", "eprintln", "format",
];

/// Detect tainted values reaching sinks in one step's expression tree.
fn scan_sinks(
    e: &Expr,
    fact: &BTreeSet<String>,
    env: &Env,
    file: &AnalyzedFile,
    findings: &mut Vec<Finding>,
) {
    match &e.kind {
        ExprKind::MacroCall {
            path,
            args,
            captures,
        } => {
            let last = path.last().map(String::as_str).unwrap_or("");
            if SINK_MACROS.contains(&last) {
                let arg_hit = args.iter().any(|a| expr_tainted(a, fact, env));
                let cap_hit = captures.iter().find(|c| fact.contains(c.as_str()));
                if arg_hit || cap_hit.is_some() {
                    push_sink(e, format!("`{last}!`"), cap_hit, fact, file, findings);
                }
            }
        }
        ExprKind::Call { callee, args } => {
            let serde = callee.plain_path().is_some_and(|p| {
                p.first().map(String::as_str) == Some("serde_json")
                    && matches!(
                        p.last().map(String::as_str),
                        Some("to_string" | "to_vec" | "to_writer" | "to_value")
                    )
            });
            if serde && args.iter().any(|a| expr_tainted(a, fact, env)) {
                push_sink(
                    e,
                    "serde serialization".to_string(),
                    None,
                    fact,
                    file,
                    findings,
                );
            }
        }
        ExprKind::MethodCall {
            recv, name, args, ..
        } => {
            if name == "serialize" && args.iter().any(|a| expr_tainted(a, fact, env)) {
                push_sink(
                    e,
                    "`.serialize(..)`".to_string(),
                    None,
                    fact,
                    file,
                    findings,
                );
            }
            if matches!(name.as_str(), "push" | "insert" | "extend") {
                if let Some(r) = place_name(recv) {
                    if env.returned.contains(&r)
                        && !env.btree_names.contains(&r)
                        && args.iter().any(|a| expr_tainted(a, fact, env))
                    {
                        push_sink(
                            e,
                            format!("returned collection `{r}`"),
                            None,
                            fact,
                            file,
                            findings,
                        );
                    }
                }
            }
        }
        _ => {}
    }
    for_each_child(e, &mut |c| {
        if !c.is_control() {
            scan_sinks(c, fact, env, file, findings);
        }
    });
}

fn push_sink(
    e: &Expr,
    sink: String,
    capture: Option<&String>,
    fact: &BTreeSet<String>,
    file: &AnalyzedFile,
    findings: &mut Vec<Finding>,
) {
    let what = capture
        .cloned()
        .or_else(|| fact.iter().next().cloned())
        .unwrap_or_else(|| "value".to_string());
    findings.push(Finding::at(
        "D3",
        Severity::Deny,
        &file.parsed.rel_path,
        e.line,
        e.col,
        format!(
            "hash-order-dependent value `{what}` reaches output sink {sink}; \
             sort it or collect into a BTree first (iteration order of \
             HashMap/HashSet varies per process)"
        ),
        file.snippet(e.line),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![("crates/x/src/lib.rs".to_string(), src.to_string())];
        let ws = Workspace::build(&files);
        let graph = CallGraph::build(&ws);
        check_taint(&ws, &graph)
    }

    #[test]
    fn keys_through_binding_to_writeln_fires() {
        let f = findings(
            "use std::collections::HashMap;\n\
             pub fn dump(map: &HashMap<String, u32>) -> String {\n\
                 let mut out = String::new();\n\
                 let names: Vec<&String> = map.keys().collect();\n\
                 for n in names {\n\
                     writeln!(out, \"{n}\").ok();\n\
                 }\n\
                 out\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D3");
        assert!(f[0].message.contains("writeln"), "{}", f[0].message);
    }

    #[test]
    fn sorted_binding_is_clean() {
        let f = findings(
            "use std::collections::HashMap;\n\
             pub fn dump(map: &HashMap<String, u32>) -> String {\n\
                 let mut out = String::new();\n\
                 let mut names: Vec<&String> = map.keys().collect();\n\
                 names.sort();\n\
                 for n in names {\n\
                     writeln!(out, \"{n}\").ok();\n\
                 }\n\
                 out\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn btree_collect_is_clean() {
        let f = findings(
            "use std::collections::{BTreeSet, HashMap};\n\
             pub fn dump(map: &HashMap<String, u32>) -> String {\n\
                 let mut out = String::new();\n\
                 let names: BTreeSet<&String> = map.keys().collect::<BTreeSet<_>>();\n\
                 for n in names {\n\
                     writeln!(out, \"{n}\").ok();\n\
                 }\n\
                 out\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn direct_hash_for_loop_into_returned_vec_fires() {
        let f = findings(
            "use std::collections::HashSet;\n\
             pub fn collect_ids(seen: &HashSet<u32>) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for id in seen {\n\
                     out.push(*id);\n\
                 }\n\
                 out\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("returned collection `out`"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn hash_field_iteration_to_format_fires() {
        let f = findings(
            "use std::collections::HashMap;\n\
             pub struct Index { counts: HashMap<String, u32> }\n\
             impl Index {\n\
                 pub fn render(&self) -> String {\n\
                     let pairs: Vec<_> = self.counts.iter().collect();\n\
                     format!(\"{:?}\", pairs)\n\
                 }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn btree_iteration_is_never_tainted() {
        let f = findings(
            "use std::collections::BTreeMap;\n\
             pub fn dump(map: &BTreeMap<String, u32>) -> String {\n\
                 let mut out = String::new();\n\
                 for (k, v) in map.iter() {\n\
                     writeln!(out, \"{k} {v}\").ok();\n\
                 }\n\
                 out\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn aggregate_without_sink_is_clean() {
        let f = findings(
            "use std::collections::HashMap;\n\
             pub fn total(map: &HashMap<String, u32>) -> u32 {\n\
                 let mut sum = 0;\n\
                 for v in map.values() {\n\
                     sum += v;\n\
                 }\n\
                 sum\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
