//! Workspace type index and per-fn local type inference — the *type
//! layer* the v6 rules (`N1`/`N2`/`A1`/`F1`) consume.
//!
//! Two pieces:
//!
//! 1. [`TypeIndex`]: a workspace-wide map from struct fields and fn
//!    signatures to [`Ty`] facts, built once per scan. Field entries
//!    also record `Atomic*` wrappers (the `A1` site set); fn entries
//!    record declared return types so ctor and method returns propagate
//!    (`Pool::new()` is a `Pool`, `self.gauge.peak_bytes()` is whatever
//!    `peak_bytes` declares).
//! 2. [`LocalTypes`]: a forward dataflow analysis over the existing
//!    [`crate::dataflow`] worklist solver whose fact is a map from local
//!    name to [`TyFact`] — the inferred type plus a *corpus-scale*
//!    provenance bit. Scale provenance seeds from `.len()`/`.count()`
//!    results and counter-family names (`total`, `bytes`, `count`, ...)
//!    and propagates through arithmetic, casts, and saturating/checked
//!    combinators; it is what lets `N1` confine itself to quantities
//!    that actually grow with the corpus.
//!
//! Approximation directions (DESIGN.md §6a): inference never guesses —
//! an unsuffixed literal, an unresolved call, or a conflicting join is
//! [`Ty::Unknown`], and every consumer treats `Unknown` as "stay
//! silent". Types therefore *under*-approximate (a missed cast, never a
//! spurious one), while the scale bit *over*-approximates (an `||` join
//! and name-hint seeding can only add candidates, which the lossy-cast
//! check then filters by provable type facts). `usize`/`isize` are
//! modeled as 64-bit: the pipeline targets 64-bit hosts, and the model
//! is only consulted to *rule out* findings (`u64 -> usize` is treated
//! as width-preserving), never to create them.

use crate::callgraph::FnNode;
use crate::cfg::{Cfg, Step};
use crate::dataflow::{self, Analysis};
use crate::expr::{Expr, ExprKind, Pat};
use crate::graph::Workspace;
use crate::parser::{FnInfo, ItemKind};
use std::collections::BTreeMap;

/// Version stamp folded into the incremental cache's config signature:
/// bump whenever index construction or inference changes shape, so warm
/// replays never mix facts from two analyzer generations.
pub const TYPES_SCHEMA: u64 = 1;

/// The primitive-focused type lattice. `Named` carries the head of any
/// nominal type (`String`, `Vec`, `AtomicU64`, `PolicyDoc`); everything
/// the analyzer cannot prove is `Unknown`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ty {
    /// `u8`/`u16`/`u32`/`u64`/`u128` (the width in bits).
    Uint(u16),
    /// `i8`..`i128`.
    Int(u16),
    /// `usize` (modeled as 64-bit; see module docs).
    Usize,
    /// `isize` (modeled as 64-bit).
    Isize,
    /// `f32`.
    F32,
    /// `f64`.
    F64,
    /// `bool`.
    Bool,
    /// `char`.
    Char,
    /// A nominal type's head segment.
    Named(String),
    /// No provable fact.
    Unknown,
}

impl Ty {
    /// Parse a primitive type name.
    pub fn prim(name: &str) -> Option<Ty> {
        Some(match name {
            "u8" => Ty::Uint(8),
            "u16" => Ty::Uint(16),
            "u32" => Ty::Uint(32),
            "u64" => Ty::Uint(64),
            "u128" => Ty::Uint(128),
            "i8" => Ty::Int(8),
            "i16" => Ty::Int(16),
            "i32" => Ty::Int(32),
            "i64" => Ty::Int(64),
            "i128" => Ty::Int(128),
            "usize" => Ty::Usize,
            "isize" => Ty::Isize,
            "f32" => Ty::F32,
            "f64" => Ty::F64,
            "bool" => Ty::Bool,
            "char" => Ty::Char,
            _ => return None,
        })
    }

    /// Resolve declared type tokens to a `Ty`: strip references,
    /// mutability, and lifetimes, then classify the head. `Self` maps to
    /// `self_ty` when one is supplied.
    pub fn from_tokens_with(tokens: &[String], self_ty: Option<&str>) -> Ty {
        let mut head = None;
        for t in tokens {
            match t.as_str() {
                "&" | "mut" | "*" | "const" => continue,
                s if s.starts_with('\'') => continue,
                s => {
                    head = Some(s);
                    break;
                }
            }
        }
        let Some(head) = head else {
            return Ty::Unknown;
        };
        if head == "Self" {
            return match self_ty {
                Some(name) => Ty::Named(name.to_string()),
                None => Ty::Unknown,
            };
        }
        match Ty::prim(head) {
            Some(ty) => ty,
            None if head.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                Ty::Named(head.to_string())
            }
            None => Ty::Unknown,
        }
    }

    /// [`Ty::from_tokens_with`] without a `Self` context.
    pub fn from_tokens(tokens: &[String]) -> Ty {
        Ty::from_tokens_with(tokens, None)
    }

    /// Bit width for numeric types (`usize`/`isize` modeled as 64).
    pub fn bits(&self) -> Option<u16> {
        match self {
            Ty::Uint(b) | Ty::Int(b) => Some(*b),
            Ty::Usize | Ty::Isize | Ty::F64 => Some(64),
            Ty::F32 => Some(32),
            _ => None,
        }
    }

    /// Whether the type is an integer (signed or unsigned, any width).
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::Uint(_) | Ty::Int(_) | Ty::Usize | Ty::Isize)
    }

    /// Whether the type is `f32`/`f64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// Integer or float.
    pub fn is_numeric(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// Whether the integer type is signed.
    pub fn is_signed(&self) -> bool {
        matches!(self, Ty::Int(_) | Ty::Isize)
    }

    /// Rust source name, for messages and autofix replacements (`Named`
    /// renders its head; `Unknown` renders `_`).
    pub fn name(&self) -> String {
        match self {
            Ty::Uint(b) => format!("u{b}"),
            Ty::Int(b) => format!("i{b}"),
            Ty::Usize => "usize".to_string(),
            Ty::Isize => "isize".to_string(),
            Ty::F32 => "f32".to_string(),
            Ty::F64 => "f64".to_string(),
            Ty::Bool => "bool".to_string(),
            Ty::Char => "char".to_string(),
            Ty::Named(s) => s.clone(),
            Ty::Unknown => "_".to_string(),
        }
    }
}

/// How an `as` cast relates source and destination type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastKind {
    /// Every source value is representable; `from_impl` says whether the
    /// exact std `From` impl exists (the `N1` autofix rewrites only
    /// those — `u32 as usize` widens on 64-bit hosts but has no `From`).
    Widen {
        /// `Dst::from(src)` compiles.
        from_impl: bool,
    },
    /// Some source values change meaning: truncation, sign wrap, or
    /// float precision loss. The payload is the reason, for messages.
    Lossy(&'static str),
    /// Same representation (including same-width `usize`/`u64` under
    /// the 64-bit host model).
    Noop,
    /// At least one side is not provably numeric.
    Opaque,
}

/// Whether the exact `impl From<src> for dst` exists in std. The table
/// is deliberately exhaustive rather than rule-derived: `From<u32> for
/// usize` and `From<usize> for u64` famously do *not* exist, so a
/// width-based rule would rewrite casts into compile errors.
fn from_impl(src: &Ty, dst: &Ty) -> bool {
    match (src, dst) {
        (Ty::Uint(a), Ty::Uint(b)) | (Ty::Int(a), Ty::Int(b)) | (Ty::Uint(a), Ty::Int(b)) => b > a,
        (Ty::Uint(8) | Ty::Uint(16), Ty::Usize) => true,
        (Ty::Uint(8) | Ty::Int(8) | Ty::Int(16), Ty::Isize) => true,
        (Ty::Uint(8) | Ty::Uint(16) | Ty::Int(8) | Ty::Int(16), Ty::F32) => true,
        (
            Ty::Uint(8) | Ty::Uint(16) | Ty::Uint(32) | Ty::Int(8) | Ty::Int(16) | Ty::Int(32),
            Ty::F64,
        ) => true,
        (Ty::F32, Ty::F64) => true,
        _ => false,
    }
}

/// Classify a numeric `as` cast (see [`CastKind`]).
pub fn classify_cast(src: &Ty, dst: &Ty) -> CastKind {
    if !src.is_numeric() || !dst.is_numeric() {
        return CastKind::Opaque;
    }
    if src == dst {
        return CastKind::Noop;
    }
    if src.is_float() && dst.is_integer() {
        return CastKind::Lossy("float-to-integer truncates");
    }
    if src.is_integer() && dst.is_float() {
        // Exact only when the `From` impl exists (f64 holds u32 exactly,
        // not u64); inexact int-to-float casts are tolerated — f64 is
        // exact to 2^53, beyond any plausible corpus quantity.
        return CastKind::Widen {
            from_impl: from_impl(src, dst),
        };
    }
    if src.is_float() && dst.is_float() {
        return match (src.bits(), dst.bits()) {
            (Some(a), Some(b)) if b < a => CastKind::Lossy("f64-to-f32 loses precision"),
            _ => CastKind::Widen {
                from_impl: from_impl(src, dst),
            },
        };
    }
    // Integer to integer.
    let (Some(sb), Some(db)) = (src.bits(), dst.bits()) else {
        return CastKind::Opaque;
    };
    if src.is_signed() && !dst.is_signed() {
        return CastKind::Lossy("signed-to-unsigned wraps negatives");
    }
    if db < sb {
        return CastKind::Lossy("narrowing truncates high bits");
    }
    if db == sb {
        if !src.is_signed() && dst.is_signed() {
            return CastKind::Lossy("same-width unsigned-to-signed wraps large values");
        }
        return CastKind::Noop;
    }
    CastKind::Widen {
        from_impl: from_impl(src, dst),
    }
}

/// Name families that mark a binding, field, or fn as carrying a
/// corpus-scale quantity (matched per `_`-separated word, not substring,
/// so `silence` does not match `len`).
const SCALE_NAME_HINTS: &[&str] = &[
    "len", "count", "counts", "total", "totals", "bytes", "size", "sizes", "tokens", "calls",
    "retries", "hits", "errors", "attempts", "written", "seen", "sum",
];

/// Whether a name belongs to the corpus-scale counter families.
pub fn scale_name(name: &str) -> bool {
    name.split('_').any(|w| SCALE_NAME_HINTS.contains(&w))
}

/// One struct field's type facts.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldFact {
    /// Declared type head.
    pub ty: Ty,
    /// When the declared type is `Atomic*`, the wrapped value type
    /// (`AtomicU64` -> `Uint(64)`, `AtomicBool` -> `Bool`).
    pub atomic: Option<Ty>,
}

/// The `Atomic*` wrapper's inner type, when `head` names one.
fn atomic_inner(head: &str) -> Option<Ty> {
    let inner = head.strip_prefix("Atomic")?;
    match inner {
        "Usize" => Some(Ty::Usize),
        "Isize" => Some(Ty::Isize),
        "Bool" => Some(Ty::Bool),
        _ => Ty::prim(&inner.to_ascii_lowercase()),
    }
}

/// Workspace-wide type facts: struct fields and fn return types, keyed
/// by name with cross-crate collisions degraded to `Unknown` (never a
/// wrong fact, at worst a missing one).
#[derive(Debug, Default)]
pub struct TypeIndex {
    /// `(struct name, field name)` -> fact.
    fields: BTreeMap<(String, String), FieldFact>,
    /// Field name -> fact when the name is unique workspace-wide;
    /// `None` marks an ambiguous name.
    field_by_name: BTreeMap<String, Option<FieldFact>>,
    /// `(self type or "", fn name)` -> declared return type.
    returns: BTreeMap<(String, String), Ty>,
}

impl TypeIndex {
    /// Build the index from every parsed item in the workspace.
    pub fn build(ws: &Workspace) -> TypeIndex {
        let mut index = TypeIndex::default();
        for file in &ws.files {
            for item in &file.parsed.items {
                index.add_item(item, None);
            }
        }
        index
    }

    fn add_item(&mut self, item: &crate::parser::Item, self_ty: Option<&str>) {
        match &item.kind {
            ItemKind::Struct { fields } => {
                for field in fields {
                    let ty = Ty::from_tokens(&field.ty);
                    let atomic = match &ty {
                        Ty::Named(head) => atomic_inner(head),
                        _ => None,
                    };
                    let fact = FieldFact { ty, atomic };
                    let key = (item.name.clone(), field.name.clone());
                    match self.fields.get(&key) {
                        Some(existing) if *existing != fact => {
                            self.fields.insert(
                                key,
                                FieldFact {
                                    ty: Ty::Unknown,
                                    atomic: None,
                                },
                            );
                        }
                        Some(_) => {}
                        None => {
                            self.fields.insert(key, fact.clone());
                        }
                    }
                    match self.field_by_name.get(&field.name) {
                        Some(Some(existing)) if *existing != fact => {
                            self.field_by_name.insert(field.name.clone(), None);
                        }
                        Some(_) => {}
                        None => {
                            self.field_by_name.insert(field.name.clone(), Some(fact));
                        }
                    }
                }
            }
            ItemKind::Fn(info) => {
                let ret = Ty::from_tokens_with(&info.ret, self_ty);
                let key = (self_ty.unwrap_or("").to_string(), item.name.clone());
                match self.returns.get(&key) {
                    Some(existing) if *existing != ret => {
                        self.returns.insert(key, Ty::Unknown);
                    }
                    Some(_) => {}
                    None => {
                        self.returns.insert(key, ret);
                    }
                }
            }
            _ => {}
        }
        let child_self_ty = match &item.kind {
            ItemKind::Impl { self_ty, .. } => Some(self_ty.as_str()),
            _ => self_ty,
        };
        for child in &item.children {
            self.add_item(child, child_self_ty);
        }
    }

    /// Field fact by `(struct, field)`.
    pub fn field(&self, struct_name: &str, field: &str) -> Option<&FieldFact> {
        self.fields
            .get(&(struct_name.to_string(), field.to_string()))
    }

    /// Field fact by name alone, when the name is unique workspace-wide.
    pub fn field_named(&self, field: &str) -> Option<&FieldFact> {
        self.field_by_name.get(field).and_then(|f| f.as_ref())
    }

    /// Declared return type of `self_ty::name` (free fns use `""`).
    pub fn ret(&self, self_ty: &str, name: &str) -> Ty {
        self.returns
            .get(&(self_ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or(Ty::Unknown)
    }
}

/// One inferred fact: the type plus corpus-scale provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TyFact {
    /// Inferred type (`Unknown` when unprovable).
    pub ty: Ty,
    /// Whether the value derives from a corpus-scale quantity
    /// (`.len()`/`.count()` results, counter-family names, and anything
    /// arithmetic over them).
    pub scale: bool,
}

impl TyFact {
    /// An unprovable fact with no scale provenance.
    pub fn unknown() -> TyFact {
        TyFact {
            ty: Ty::Unknown,
            scale: false,
        }
    }
}

/// Numeric `recv.method(..)` combinators that preserve the receiver's
/// type (`x.max(y)`, `n.saturating_add(m)`, ...).
const TY_PRESERVING_METHODS: &[&str] = &[
    "min",
    "max",
    "clamp",
    "pow",
    "abs",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "rotate_left",
    "rotate_right",
    "swap_bytes",
    "to_le",
    "to_be",
];

/// The per-fn local type inference, as a [`crate::dataflow`] client.
/// The fact maps in-scope names to [`TyFact`]s; the boundary fact holds
/// the declared parameter types.
pub struct LocalTypes<'w> {
    /// Workspace type facts.
    pub index: &'w TypeIndex,
    /// Enclosing impl type, for `self.field` resolution.
    pub self_ty: Option<String>,
    /// Declared parameter facts (the boundary).
    pub params: BTreeMap<String, TyFact>,
}

impl<'w> LocalTypes<'w> {
    /// Inference context for one call-graph fn.
    pub fn new(index: &'w TypeIndex, node: &FnNode<'_>) -> LocalTypes<'w> {
        LocalTypes::for_info(index, node.self_ty.map(str::to_string), node.info)
    }

    /// Inference context from raw fn facts (fixture tests use this).
    pub fn for_info(
        index: &'w TypeIndex,
        self_ty: Option<String>,
        info: &FnInfo,
    ) -> LocalTypes<'w> {
        let mut params = BTreeMap::new();
        for p in &info.params {
            if p.name.is_empty() || p.name == "self" {
                continue;
            }
            params.insert(
                p.name.clone(),
                TyFact {
                    ty: Ty::from_tokens_with(&p.ty, self_ty.as_deref()),
                    scale: scale_name(&p.name),
                },
            );
        }
        LocalTypes {
            index,
            self_ty,
            params,
        }
    }

    /// Look up a field through the receiver's inferred type, falling
    /// back to the unique-name map.
    fn field_fact(&self, fact: &BTreeMap<String, TyFact>, base: &Expr, name: &str) -> TyFact {
        let owner = match &base.kind {
            ExprKind::Path(segs) if segs.as_slice() == ["self"] => self.self_ty.clone(),
            _ => match self.infer(fact, base).ty {
                Ty::Named(s) => Some(s),
                _ => None,
            },
        };
        let looked = match owner {
            Some(owner) => self.index.field(&owner, name),
            None => self.index.field_named(name),
        };
        match looked {
            Some(f) => TyFact {
                ty: f.ty.clone(),
                scale: scale_name(name),
            },
            None => TyFact {
                ty: Ty::Unknown,
                scale: scale_name(name),
            },
        }
    }

    /// Infer one expression's fact under the current local facts. Never
    /// guesses: anything unresolvable is `Unknown` (see module docs).
    pub fn infer(&self, fact: &BTreeMap<String, TyFact>, e: &Expr) -> TyFact {
        match &e.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [s] if s == "self" => TyFact {
                    ty: self
                        .self_ty
                        .as_ref()
                        .map(|s| Ty::Named(s.clone()))
                        .unwrap_or(Ty::Unknown),
                    scale: false,
                },
                [one] => fact.get(one).cloned().unwrap_or_else(|| TyFact {
                    ty: Ty::Unknown,
                    scale: scale_name(one),
                }),
                [head, konst] if matches!(konst.as_str(), "MAX" | "MIN") => TyFact {
                    ty: Ty::prim(head).unwrap_or(Ty::Unknown),
                    scale: false,
                },
                _ => TyFact::unknown(),
            },
            ExprKind::Lit(text) => TyFact {
                ty: lit_ty(text),
                scale: false,
            },
            ExprKind::Unary { op, operand } => match op {
                '-' | '!' => self.infer(fact, operand),
                _ => TyFact::unknown(),
            },
            ExprKind::Ref { operand, .. } => self.infer(fact, operand),
            ExprKind::Binary { op, lhs, rhs } => match op.as_str() {
                "==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||" => TyFact {
                    ty: Ty::Bool,
                    scale: false,
                },
                "<<" | ">>" => self.infer(fact, lhs),
                _ => {
                    let l = self.infer(fact, lhs);
                    let r = self.infer(fact, rhs);
                    let ty = match (&l.ty, &r.ty) {
                        (Ty::Unknown, other) | (other, Ty::Unknown) => other.clone(),
                        (a, b) if a == b => a.clone(),
                        _ => Ty::Unknown,
                    };
                    TyFact {
                        ty,
                        scale: l.scale || r.scale,
                    }
                }
            },
            ExprKind::Cast { operand, ty } => TyFact {
                ty: Ty::from_tokens_with(ty, self.self_ty.as_deref()),
                scale: self.infer(fact, operand).scale,
            },
            ExprKind::Field { base, name } => self.field_fact(fact, base, name),
            ExprKind::MethodCall {
                recv,
                name,
                turbofish,
                args,
            } => match name.as_str() {
                "len" | "count" | "capacity" => TyFact {
                    ty: Ty::Usize,
                    scale: true,
                },
                "sum" | "product" => TyFact {
                    ty: if turbofish.is_empty() {
                        Ty::Unknown
                    } else {
                        Ty::from_tokens_with(turbofish, self.self_ty.as_deref())
                    },
                    scale: true,
                },
                m if TY_PRESERVING_METHODS.contains(&m) => {
                    let r = self.infer(fact, recv);
                    let arg_scale = args.iter().any(|a| self.infer(fact, a).scale);
                    TyFact {
                        ty: r.ty,
                        scale: r.scale || arg_scale,
                    }
                }
                "unwrap_or" => args
                    .first()
                    .map(|a| self.infer(fact, a))
                    .unwrap_or_else(TyFact::unknown),
                _ => {
                    let r = self.infer(fact, recv);
                    match r.ty {
                        Ty::Named(owner) => TyFact {
                            ty: self.index.ret(&owner, name),
                            scale: scale_name(name),
                        },
                        _ => TyFact {
                            ty: Ty::Unknown,
                            scale: scale_name(name),
                        },
                    }
                }
            },
            ExprKind::Call { callee, args } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return TyFact::unknown();
                };
                match segs.as_slice() {
                    [head, from] if from == "from" && Ty::prim(head).is_some() => TyFact {
                        ty: Ty::prim(head).unwrap_or(Ty::Unknown),
                        scale: args.first().is_some_and(|a| self.infer(fact, a).scale),
                    },
                    [ty_name, method]
                        if ty_name
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_uppercase()) =>
                    {
                        let ret = self.index.ret(ty_name, method);
                        TyFact {
                            ty: match ret {
                                Ty::Unknown if method == "new" => Ty::Named(ty_name.clone()),
                                other => other,
                            },
                            scale: false,
                        }
                    }
                    [free] if free.chars().next().is_some_and(|c| c.is_ascii_lowercase()) => {
                        TyFact {
                            ty: self.index.ret("", free),
                            scale: scale_name(free),
                        }
                    }
                    _ => TyFact::unknown(),
                }
            }
            ExprKind::StructLit { path, .. } => TyFact {
                ty: path
                    .last()
                    .map(|s| Ty::Named(s.clone()))
                    .unwrap_or(Ty::Unknown),
                scale: false,
            },
            _ => TyFact::unknown(),
        }
    }

    /// Bind every name of `pat` to `whole` when it is a single binding,
    /// or to hint-seeded `Unknown` facts otherwise.
    fn bind_pat(&self, fact: &mut BTreeMap<String, TyFact>, pat: &Pat, whole: Option<TyFact>) {
        let mut names = Vec::new();
        pat.bound_names(&mut names);
        match (names.as_slice(), whole) {
            ([one], Some(f)) => {
                fact.insert(
                    one.clone(),
                    TyFact {
                        scale: f.scale || scale_name(one),
                        ..f
                    },
                );
            }
            (many, _) => {
                for name in many {
                    fact.insert(
                        name.clone(),
                        TyFact {
                            ty: Ty::Unknown,
                            scale: scale_name(name),
                        },
                    );
                }
            }
        }
    }
}

/// Literal type from its suffix (`7u64`, `1.5f32`); unsuffixed floats
/// default to `f64`, unsuffixed integers stay `Unknown` (their type is
/// inference-context-dependent, which this analysis does not model).
fn lit_ty(text: &str) -> Ty {
    const SUFFIXES: &[&str] = &[
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ];
    for suffix in SUFFIXES {
        if text.len() > suffix.len() && text.ends_with(suffix) {
            return Ty::prim(suffix).unwrap_or(Ty::Unknown);
        }
    }
    match text {
        "true" | "false" => Ty::Bool,
        t if t.starts_with('\'') => Ty::Char,
        t if t.starts_with('"') => Ty::Named("str".to_string()),
        t if t.starts_with(|c: char| c.is_ascii_digit())
            && !t.starts_with("0x")
            && (t.contains('.') || t.contains('e') || t.contains('E')) =>
        {
            Ty::F64
        }
        _ => Ty::Unknown,
    }
}

impl<'a, 'w> Analysis<'a> for LocalTypes<'w> {
    type Fact = BTreeMap<String, TyFact>;

    fn boundary(&self) -> Self::Fact {
        self.params.clone()
    }

    fn join(&self, acc: &mut Self::Fact, other: &Self::Fact) {
        for (name, theirs) in other {
            match acc.get_mut(name) {
                Some(ours) => {
                    if ours.ty != theirs.ty {
                        ours.ty = Ty::Unknown;
                    }
                    ours.scale = ours.scale || theirs.scale;
                }
                None => {
                    acc.insert(name.clone(), theirs.clone());
                }
            }
        }
    }

    fn step(&self, step: &Step<'a>, fact: &mut Self::Fact) {
        match step {
            Step::Bind { pat, ty, init, .. } => {
                let declared = if ty.is_empty() {
                    None
                } else {
                    Some(Ty::from_tokens_with(ty, self.self_ty.as_deref()))
                };
                let inferred = init.map(|e| self.infer(fact, e));
                let whole = match (declared, inferred) {
                    (Some(ty), Some(f)) => Some(TyFact { ty, scale: f.scale }),
                    (Some(ty), None) => Some(TyFact { ty, scale: false }),
                    (None, Some(f)) => Some(f),
                    (None, None) => None,
                };
                self.bind_pat(fact, pat, whole);
            }
            Step::PatBind { pat, .. } => self.bind_pat(fact, pat, None),
            Step::ForHead { pat, iter } => {
                // `for i in 0..xs.len()` binds `i` to the bound's type
                // and scale; any other iterator's element type is opaque.
                let whole = match &iter.kind {
                    ExprKind::Range { lo, hi, .. } => {
                        let l = lo
                            .as_deref()
                            .map(|e| self.infer(fact, e))
                            .unwrap_or_else(TyFact::unknown);
                        let h = hi
                            .as_deref()
                            .map(|e| self.infer(fact, e))
                            .unwrap_or_else(TyFact::unknown);
                        let ty = match (&l.ty, &h.ty) {
                            (Ty::Unknown, other) | (other, Ty::Unknown) => other.clone(),
                            (a, b) if a == b => a.clone(),
                            _ => Ty::Unknown,
                        };
                        Some(TyFact {
                            ty,
                            scale: l.scale || h.scale,
                        })
                    }
                    _ => None,
                };
                self.bind_pat(fact, pat, whole);
            }
            Step::Eval(e) | Step::Cond(e) => {
                if let ExprKind::Assign { op, lhs, rhs } = &e.kind {
                    if let ExprKind::Path(segs) = &lhs.kind {
                        if let [name] = segs.as_slice() {
                            let r = self.infer(fact, rhs);
                            match fact.get_mut(name) {
                                Some(ours) if op != "=" => {
                                    // Compound assign keeps the type,
                                    // accumulates scale provenance.
                                    ours.scale = ours.scale || r.scale;
                                }
                                _ => {
                                    fact.insert(
                                        name.clone(),
                                        TyFact {
                                            scale: r.scale || scale_name(name),
                                            ..r
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Solve local types for one fn body; returns per-node in-facts (see
/// [`dataflow::solve`]) for use with [`dataflow::replay`].
pub fn solve_fn<'a>(lt: &LocalTypes<'_>, cfg: &Cfg<'a>) -> Vec<Option<BTreeMap<String, TyFact>>> {
    dataflow::solve(cfg, lt)
}

/// The fact at the fn's exit node — what the reorder-stability proptest
/// and the unit tests below assert against.
pub fn exit_types(
    index: &TypeIndex,
    self_ty: Option<&str>,
    info: &FnInfo,
) -> BTreeMap<String, TyFact> {
    let lt = LocalTypes::for_info(index, self_ty.map(str::to_string), info);
    let cfg = Cfg::build(&info.body);
    let facts = solve_fn(&lt, &cfg);
    facts
        .get(cfg.exit)
        .and_then(|f| f.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn fn_types(src: &str) -> BTreeMap<String, TyFact> {
        let parsed = parse_file("crates/x/src/lib.rs", src);
        let ws = Workspace::build(&[("crates/x/src/lib.rs".to_string(), src.to_string())]);
        let index = TypeIndex::build(&ws);
        let mut out = None;
        let mut items = Vec::new();
        for item in &parsed.items {
            item.walk(&mut items);
        }
        for item in items {
            if let ItemKind::Fn(info) = &item.kind {
                if item.name == "f" {
                    out = Some(exit_types(&index, None, info));
                }
            }
        }
        out.expect("fn f in fixture")
    }

    #[test]
    fn annotations_literal_suffixes_and_casts_resolve() {
        let t = fn_types(
            "fn f() { let a: u32 = read(); let b = 7u64; let c = b as u16; let d = 1.5; }\n",
        );
        assert_eq!(t.get("a").map(|f| f.ty.clone()), Some(Ty::Uint(32)));
        assert_eq!(t.get("b").map(|f| f.ty.clone()), Some(Ty::Uint(64)));
        assert_eq!(t.get("c").map(|f| f.ty.clone()), Some(Ty::Uint(16)));
        assert_eq!(t.get("d").map(|f| f.ty.clone()), Some(Ty::F64));
    }

    #[test]
    fn len_results_carry_usize_and_scale() {
        let t = fn_types("fn f(xs: &[u8]) { let n = xs.len(); let doubled = n * 2; }\n");
        let n = t.get("n").expect("n");
        assert_eq!(n.ty, Ty::Usize);
        assert!(n.scale);
        let d = t.get("doubled").expect("doubled");
        assert_eq!(d.ty, Ty::Usize, "arith on usize stays usize");
        assert!(d.scale, "scale propagates through arithmetic");
    }

    #[test]
    fn ctor_and_method_returns_propagate() {
        let t = fn_types(
            "pub struct Pool { n: u64 }\n\
             impl Pool {\n\
                 pub fn new() -> Pool { Pool { n: 0 } }\n\
                 pub fn level(&self) -> u64 { self.n }\n\
             }\n\
             fn f() { let p = Pool::new(); let lvl = p.level(); }\n",
        );
        assert_eq!(
            t.get("p").map(|f| f.ty.clone()),
            Some(Ty::Named("Pool".to_string()))
        );
        assert_eq!(t.get("lvl").map(|f| f.ty.clone()), Some(Ty::Uint(64)));
    }

    #[test]
    fn joins_degrade_to_unknown_not_wrong() {
        let t = fn_types("fn f(c: bool) { let x = if c { 1u32 } else { 2u64 }; }\n");
        // The two arms disagree; the join must not pick either.
        assert_eq!(t.get("x").map(|f| f.ty.clone()), Some(Ty::Unknown));
    }

    #[test]
    fn counter_names_seed_scale_without_types() {
        let t = fn_types("fn f() { let mut total = 0; total += 1; }\n");
        let total = t.get("total").expect("total");
        assert!(total.scale, "counter-family name seeds scale");
        assert_eq!(total.ty, Ty::Unknown, "unsuffixed literal stays unknown");
    }

    #[test]
    fn atomic_fields_are_indexed() {
        let src = "pub struct G { current: AtomicU64, peak: AtomicUsize, on: AtomicBool }\n";
        let ws = Workspace::build(&[("crates/x/src/lib.rs".to_string(), src.to_string())]);
        let index = TypeIndex::build(&ws);
        assert_eq!(
            index.field("G", "current").and_then(|f| f.atomic.clone()),
            Some(Ty::Uint(64))
        );
        assert_eq!(
            index.field("G", "peak").and_then(|f| f.atomic.clone()),
            Some(Ty::Usize)
        );
        assert_eq!(
            index.field("G", "on").and_then(|f| f.atomic.clone()),
            Some(Ty::Bool)
        );
    }

    #[test]
    fn from_impl_table_matches_std() {
        assert!(from_impl(&Ty::Uint(32), &Ty::Uint(64)));
        assert!(from_impl(&Ty::Uint(16), &Ty::Usize));
        assert!(from_impl(&Ty::Uint(32), &Ty::F64));
        assert!(from_impl(&Ty::F32, &Ty::F64));
        // The famous non-impls a width rule would get wrong.
        assert!(!from_impl(&Ty::Uint(32), &Ty::Usize));
        assert!(!from_impl(&Ty::Usize, &Ty::Uint(64)));
        assert!(!from_impl(&Ty::Uint(64), &Ty::F64));
    }

    #[test]
    fn cast_classification_covers_the_lattice() {
        use CastKind::*;
        assert_eq!(
            classify_cast(&Ty::Usize, &Ty::Uint(32)),
            Lossy("narrowing truncates high bits")
        );
        assert_eq!(
            classify_cast(&Ty::Int(64), &Ty::Uint(64)),
            Lossy("signed-to-unsigned wraps negatives")
        );
        assert_eq!(
            classify_cast(&Ty::F64, &Ty::Uint(64)),
            Lossy("float-to-integer truncates")
        );
        assert_eq!(
            classify_cast(&Ty::Uint(32), &Ty::Uint(64)),
            Widen { from_impl: true }
        );
        // Widens on 64-bit hosts but has no `From` — exempt, not fixable.
        assert_eq!(
            classify_cast(&Ty::Uint(32), &Ty::Usize),
            Widen { from_impl: false }
        );
        assert_eq!(
            classify_cast(&Ty::Usize, &Ty::Uint(64)),
            Noop,
            "same width under the 64-bit model"
        );
        assert_eq!(
            classify_cast(&Ty::Named("Vec".into()), &Ty::Uint(8)),
            Opaque
        );
    }
}
