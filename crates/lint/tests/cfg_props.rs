//! Property tests for the CFG builder (invariants promised in the
//! `cfg.rs` module docs): node 0 is the unique entry and never the
//! target of an edge, every node is reachable from the entry (the exit
//! is exempt — a body that diverges in a `loop` keeps its synthetic
//! exit), every generated statement is covered by at least one step,
//! and branch nodes carry exactly one `True` and one `False` edge.

use aipan_lint::cfg::{Cfg, Edge, Step};
use aipan_lint::parser::{parse_file, ItemKind};
use proptest::prelude::*;

/// One non-diverging single-line statement; the alternation covers the
/// lowering shapes (`let`, call, `if`, `while`, `for`, `match`, `loop`)
/// without early returns, so statement coverage is exact.
const STMT: &str = concat!(
    r"(let [a-z]{1,3} = [0-9]{1,2};",
    r"|touch\([a-z]{1,3}\);",
    r"|if [a-z]{1,2} < [a-z]{1,2} \{ step\(\); \}",
    r"|while [a-z]{1,2} < n \{ bump\(\); \}",
    r"|for x in xs \{ use_it\(x\); \}",
    r"|match v \{ Some\(k\) => f\(k\), None => g\(\) \}",
    r"|loop \{ tick\(\); break; \})",
);

/// Parse a fn whose body lists `stmts` one per line and hand its CFG to
/// `check`. Line `i + 2` holds statement `i` (line 1 is the signature).
fn with_generated_cfg(
    stmts: &[String],
    check: impl FnOnce(&Cfg<'_>) -> Result<(), String>,
) -> Result<(), String> {
    let body = stmts.join("\n    ");
    let src = format!("fn f() {{\n    {body}\n}}\n");
    let parsed = parse_file("crates/x/src/gen.rs", &src);
    let info = parsed
        .items
        .iter()
        .find_map(|item| match &item.kind {
            ItemKind::Fn(info) => Some(info),
            _ => None,
        })
        .ok_or_else(|| format!("generated source did not parse to a fn: {src:?}"))?;
    check(&Cfg::build(&info.body))
}

/// Nodes reachable from the entry, ignoring edge labels.
fn reachable_from_entry(cfg: &Cfg<'_>) -> Vec<bool> {
    let mut seen = vec![false; cfg.nodes.len()];
    if let Some(s) = seen.first_mut() {
        *s = true;
    }
    let mut stack = vec![0usize];
    while let Some(id) = stack.pop() {
        let Some(node) = cfg.nodes.get(id) else {
            continue;
        };
        for (t, _) in &node.succs {
            if let Some(s) = seen.get_mut(*t) {
                if !*s {
                    *s = true;
                    stack.push(*t);
                }
            }
        }
    }
    seen
}

proptest! {
    #[test]
    fn entry_is_unique_and_edges_stay_in_bounds(
        stmts in proptest::collection::vec(STMT, 0..8)
    ) {
        with_generated_cfg(&stmts, |cfg| {
            prop_assert!(!cfg.nodes.is_empty(), "at least entry + exit");
            for (id, node) in cfg.nodes.iter().enumerate() {
                for (t, _) in &node.succs {
                    prop_assert!(*t != 0, "edge {id} -> entry: {cfg:?}");
                    prop_assert!(*t < cfg.nodes.len(), "dangling edge {id} -> {t}");
                }
            }
            let Some(exit) = cfg.nodes.get(cfg.exit) else {
                return Err(format!("exit id out of bounds: {cfg:?}"));
            };
            prop_assert!(exit.steps.is_empty(), "exit holds steps: {cfg:?}");
            prop_assert!(exit.succs.is_empty(), "exit has successors: {cfg:?}");
            Ok(())
        })?;
    }

    #[test]
    fn every_node_is_reachable_from_the_entry(
        stmts in proptest::collection::vec(STMT, 0..8)
    ) {
        with_generated_cfg(&stmts, |cfg| {
            let seen = reachable_from_entry(cfg);
            for (id, s) in seen.iter().enumerate() {
                prop_assert!(
                    *s || id == cfg.exit,
                    "unreachable node {id} survived pruning: {cfg:?}"
                );
            }
            Ok(())
        })?;
    }

    #[test]
    fn every_statement_is_covered_by_a_step(
        stmts in proptest::collection::vec(STMT, 0..8)
    ) {
        with_generated_cfg(&stmts, |cfg| {
            for (i, stmt) in stmts.iter().enumerate() {
                let line = (i + 2) as u32;
                let covered = cfg
                    .nodes
                    .iter()
                    .flat_map(|n| n.steps.iter())
                    .any(|s| s.pos().0 == line);
                prop_assert!(covered, "statement `{stmt}` on line {line} uncovered: {cfg:?}");
            }
            // Exactly one Bind per generated `let` (the grammar nests no
            // lets inside blocks).
            let lets = stmts.iter().filter(|s| s.starts_with("let ")).count();
            let binds = cfg
                .nodes
                .iter()
                .flat_map(|n| n.steps.iter())
                .filter(|s| matches!(s, Step::Bind { .. }))
                .count();
            prop_assert_eq!(binds, lets, "{:?}", cfg);
            Ok(())
        })?;
    }

    #[test]
    fn branch_nodes_have_exactly_one_true_and_one_false_edge(
        stmts in proptest::collection::vec(STMT, 0..8)
    ) {
        with_generated_cfg(&stmts, |cfg| {
            for (id, node) in cfg.nodes.iter().enumerate() {
                if cfg.branch_step(id).is_none() {
                    continue;
                }
                let trues = node.succs.iter().filter(|(_, e)| *e == Edge::True).count();
                let falses = node.succs.iter().filter(|(_, e)| *e == Edge::False).count();
                prop_assert_eq!(trues, 1, "branch node {} in {:?}", id, cfg);
                prop_assert_eq!(falses, 1, "branch node {} in {:?}", id, cfg);
            }
            Ok(())
        })?;
    }

    #[test]
    fn cfg_build_never_panics_on_arbitrary_ascii(src in "[ -~\t\n]{0,160}") {
        let parsed = parse_file("crates/x/src/any.rs", &src);
        for item in parsed.all_items() {
            if let ItemKind::Fn(info) = &item.kind {
                let cfg = Cfg::build(&info.body);
                for node in &cfg.nodes {
                    for (t, _) in &node.succs {
                        prop_assert!(*t != 0 && *t < cfg.nodes.len(), "{cfg:?}");
                    }
                }
            }
        }
    }
}
