//! Property tests for the interprocedural cost model (`cost.rs`):
//!
//! 1. **Monotonicity** — a fn's propagated total is never below its own
//!    local cost, never below any callee's total, and replacing a call
//!    with the callee's body textually inlined never *raises* the cost
//!    of the call form (inlining a callee never lowers the caller's
//!    cost below the inlined equivalent).
//! 2. **Loop-depth agreement** — the CFG-dominator loop nesting depth
//!    agrees with a brute-force count of syntactic loop nesting for
//!    generated `for`/`while` towers.

use aipan_lint::callgraph::CallGraph;
use aipan_lint::cfg::Cfg;
use aipan_lint::cost::{loop_depths, CostModel};
use aipan_lint::graph::Workspace;
use aipan_lint::parser::{parse_file, ItemKind};
use proptest::prelude::*;

/// One single-line statement with a mix of alloc-bearing and free
/// operations; `touch`/`bump` never resolve in the workspace, so only
/// the explicit allocation sites carry cost.
const STMT: &str = concat!(
    r"(let [a-z]{1,3} = [0-9]{1,2};",
    r"|let sa = src\.clone\(\);",
    r"|acc\.push\(1\);",
    "|let tb = format!\\(\"x\"\\);",
    r"|touch\([a-z]{1,3}\);",
    r"|if a < b \{ acc\.push\(2\); \}",
    r"|for x in xs \{ acc\.push\(x\); \}",
    r"|while i < n \{ bump\(\); \}",
    r")",
);

fn fn_body(stmts: &[String]) -> String {
    let mut body = String::new();
    for s in stmts {
        body.push_str("    ");
        body.push_str(s);
        body.push('\n');
    }
    body
}

/// Build a one-file workspace and return each named fn's (local, total).
fn costs_for(src: &str, names: &[&str]) -> Result<Vec<(u64, u64)>, String> {
    let files = vec![("crates/x/src/gen.rs".to_string(), src.to_string())];
    let ws = Workspace::build(&files);
    let graph = CallGraph::build(&ws);
    let model = CostModel::build(&ws, &graph);
    names
        .iter()
        .map(|want| {
            graph
                .fns
                .iter()
                .position(|f| f.name == *want)
                .and_then(|id| Some((*model.local.get(id)?, *model.total.get(id)?)))
                .ok_or_else(|| format!("fn `{want}` missing from model: {src:?}"))
        })
        .collect()
}

proptest! {
    #[test]
    fn total_covers_local_and_callee_totals(
        caller_stmts in proptest::collection::vec(STMT, 0..6),
        callee_stmts in proptest::collection::vec(STMT, 0..6),
    ) {
        let src = format!(
            "fn caller_a() {{\n{}    callee_b();\n}}\nfn callee_b() {{\n{}}}\n",
            fn_body(&caller_stmts),
            fn_body(&callee_stmts),
        );
        let costs = costs_for(&src, &["caller_a", "callee_b"])?;
        let ((caller_local, caller_total), (callee_local, callee_total)) =
            (costs[0], costs[1]);
        prop_assert!(callee_total >= callee_local, "callee total < local in {src}");
        prop_assert!(caller_total >= caller_local, "caller total < local in {src}");
        prop_assert!(
            caller_total >= callee_total,
            "caller total {caller_total} < callee total {callee_total} in {src}"
        );
    }

    #[test]
    fn inlining_a_callee_never_lowers_the_call_forms_cost(
        caller_stmts in proptest::collection::vec(STMT, 0..5),
        callee_stmts in proptest::collection::vec(STMT, 0..5),
    ) {
        // The call form: caller invokes callee_b once at nesting depth 0.
        let call_src = format!(
            "fn caller_a() {{\n{}    callee_b();\n}}\nfn callee_b() {{\n{}}}\n",
            fn_body(&caller_stmts),
            fn_body(&callee_stmts),
        );
        // The inlined form: the callee's body spliced into the caller.
        let inline_src = format!(
            "fn caller_a() {{\n{}{}}}\n",
            fn_body(&caller_stmts),
            fn_body(&callee_stmts),
        );
        let call_total = costs_for(&call_src, &["caller_a"])?[0].1;
        let inline_total = costs_for(&inline_src, &["caller_a"])?[0].1;
        prop_assert!(
            call_total >= inline_total,
            "call form {call_total} < inlined form {inline_total}:\n{call_src}\nvs\n{inline_src}"
        );
    }
}

proptest! {
    #[test]
    fn cfg_loop_depth_agrees_with_syntactic_nesting(
        depth in 1usize..5,
        kinds in proptest::collection::vec(0usize..2, 4..5),
        siblings in proptest::collection::vec(0usize..2, 4..5),
    ) {
        // Build a loop tower of known syntactic nesting: level `lvl` wraps
        // the levels below in a `for` or `while`, optionally with a
        // sibling statement inside the loop body.
        let mut tower = "touch(a);".to_string();
        let want_depth = depth as u32;
        for lvl in 0..depth {
            let head = if kinds.get(lvl).copied().unwrap_or(0) == 0 {
                "for x in xs"
            } else {
                "while i < n"
            };
            tower = if siblings.get(lvl).copied().unwrap_or(0) == 0 {
                format!("{head} {{\n{tower}\n}}")
            } else {
                format!("{head} {{\n{tower}\nbump(b);\n}}")
            };
        }
        let src = format!("fn f() {{\nstart(q);\n{tower}\n}}\n");
        let parsed = parse_file("crates/x/src/gen.rs", &src);
        let info = parsed
            .items
            .iter()
            .find_map(|item| match &item.kind {
                ItemKind::Fn(info) => Some(info),
                _ => None,
            })
            .ok_or_else(|| format!("no fn parsed from {src:?}"))?;
        let cfg = Cfg::build(&info.body);
        let depths = loop_depths(&cfg);
        let got = depths.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(
            got, want_depth,
            "max CFG loop depth {} != syntactic nesting {} in {}", got, want_depth, src
        );
        // The statement outside every loop must sit at depth 0.
        prop_assert_eq!(depths.first().copied().unwrap_or(99), 0u32);
    }
}
