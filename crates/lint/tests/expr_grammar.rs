//! Expression-grammar regressions: token shapes that historically break
//! hand-rolled Rust parsers — `>>` closing two generic lists at once,
//! turbofish inside method chains, `|` alternatives in guarded match
//! arms, and `move` closures (whose leading `move |` must not read as a
//! pattern or an or-operator).

use aipan_lint::expr::{Expr, ExprKind, Pat, Stmt};
use aipan_lint::parser::{parse_file, ItemKind};

/// Parse `src` and return the body of the first fn named `name`.
fn fn_body(src: &str, name: &str) -> Vec<Stmt> {
    let parsed = parse_file("crates/x/src/lib.rs", src);
    parsed
        .items
        .iter()
        .find_map(|item| match &item.kind {
            ItemKind::Fn(info) if item.name == name => Some(info.body.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("fixture must contain fn `{name}`"))
}

/// The tail expression of a body (final statement without `;`).
fn tail(body: &[Stmt]) -> &Expr {
    match body.last() {
        Some(Stmt::Expr { expr, semi: false }) => expr,
        other => panic!("fixture must end in a tail expression, got {other:?}"),
    }
}

#[test]
fn nested_generic_close_splits_shift_right() {
    let body = fn_body(
        "pub fn f() { let m: Vec<Vec<u32>> = Vec::new(); touch(&m); }",
        "f",
    );
    let Some(Stmt::Let { ty, init, .. }) = body.first() else {
        panic!("first statement must be the let: {body:?}");
    };
    // `>>` must arrive as two `>` tokens, closing both lists.
    assert_eq!(
        ty.iter().map(String::as_str).collect::<Vec<_>>(),
        ["Vec", "<", "Vec", "<", "u32", ">", ">"],
        "nested-generic type annotation"
    );
    assert!(init.is_some(), "initializer survives the annotation");
}

#[test]
fn turbofish_in_method_chain_is_captured() {
    let body = fn_body(
        "pub fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }",
        "f",
    );
    let ExprKind::MethodCall {
        name, turbofish, ..
    } = &tail(&body).kind
    else {
        panic!("tail must be the sum call");
    };
    assert_eq!(name, "sum");
    assert_eq!(turbofish, &["f64"], "turbofish type token");
}

#[test]
fn turbofish_with_nested_generics_keeps_chaining() {
    let body = fn_body(
        "pub fn f(xs: &[u32]) -> usize { xs.iter().collect::<Vec<Vec<u32>>>().len() }",
        "f",
    );
    // The chain must keep going *past* the turbofish: tail is `.len()`
    // whose receiver is the collect with the nested turbofish.
    let ExprKind::MethodCall { recv, name, .. } = &tail(&body).kind else {
        panic!("tail must be the len call");
    };
    assert_eq!(name, "len");
    let ExprKind::MethodCall {
        name: inner,
        turbofish,
        ..
    } = &recv.kind
    else {
        panic!("receiver must be the collect call");
    };
    assert_eq!(inner, "collect");
    assert_eq!(
        turbofish.iter().map(String::as_str).collect::<Vec<_>>(),
        ["Vec", "<", "Vec", "<", "u32", ">", ">"],
        "nested turbofish tokens (>>> split into three closers)"
    );
}

#[test]
fn guarded_or_pattern_arm_keeps_pipe_out_of_the_guard() {
    let body = fn_body(
        "pub fn f(x: u32, flag: bool) -> u32 {\n\
         \x20   match x {\n\
         \x20       1 | 2 if flag => 10,\n\
         \x20       _ => 0,\n\
         \x20   }\n\
         }",
        "f",
    );
    let ExprKind::Match { arms, .. } = &tail(&body).kind else {
        panic!("tail must be the match");
    };
    assert_eq!(arms.len(), 2);
    let Pat::Or(alts) = &arms[0].pat else {
        panic!("`1 | 2` must fold into Pat::Or, got {:?}", arms[0].pat);
    };
    assert_eq!(alts.len(), 2, "both alternatives kept");
    let guard = arms[0].guard.as_ref().expect("guard must be recognized");
    assert_eq!(
        guard.plain_path().as_deref(),
        Some(&["flag".to_string()][..]),
        "guard is the bare flag, not a pipe-mangled expression"
    );
    assert!(arms[1].guard.is_none());
}

#[test]
fn guard_with_logical_or_is_not_an_or_pattern() {
    let body = fn_body(
        "pub fn f(x: u32, flag: bool) -> u32 {\n\
         \x20   match x {\n\
         \x20       1 | 2 if flag || x > 1 => 10,\n\
         \x20       _ => 0,\n\
         \x20   }\n\
         }",
        "f",
    );
    let ExprKind::Match { arms, .. } = &tail(&body).kind else {
        panic!("tail must be the match");
    };
    let guard = arms[0].guard.as_ref().expect("guard present");
    let ExprKind::Binary { op, .. } = &guard.kind else {
        panic!("guard must be the `||` expression, got {:?}", guard.kind);
    };
    assert_eq!(op, "||", "`||` in a guard stays one logical operator");
    assert!(matches!(arms[0].pat, Pat::Or(_)));
}

#[test]
fn move_closure_is_a_closure_not_a_pattern() {
    let body = fn_body(
        "pub fn f() -> u32 { let g = move |a: u32| a + 1; g(1) }",
        "f",
    );
    let Some(Stmt::Let {
        init: Some(init), ..
    }) = body.first()
    else {
        panic!("first statement must bind the closure");
    };
    let ExprKind::Closure {
        moves,
        params,
        body: cbody,
    } = &init.kind
    else {
        panic!("initializer must parse as a closure, got {:?}", init.kind);
    };
    assert!(*moves, "`move` captured");
    assert_eq!(params.len(), 1);
    assert!(
        matches!(&cbody.kind, ExprKind::Binary { op, .. } if op == "+"),
        "closure body is the sum"
    );

    // Without `move`, same shape, moves = false.
    let body = fn_body("pub fn g() -> u32 { let h = |a: u32| a + 1; h(2) }", "g");
    let Some(Stmt::Let {
        init: Some(init), ..
    }) = body.first()
    else {
        panic!("first statement must bind the closure");
    };
    assert!(
        matches!(&init.kind, ExprKind::Closure { moves: false, .. }),
        "plain closure is not move"
    );
}
