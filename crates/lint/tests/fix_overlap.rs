//! Regression tests for the `--fix` fixpoint when fixes from different
//! rules land on one line.
//!
//! Two properties must hold, mirroring the driver loop in `main.rs`:
//!
//! 1. *Overlap safety* — when an `N1` widening rewrite sits inside the
//!    byte range a `C2` hoist deletes, earlier-edit-wins defers the `N1`
//!    edit to the next round, where it is re-derived against the moved
//!    text; nothing is corrupted and nothing is lost.
//! 2. *Idempotence* — once the fixpoint is reached, another scan derives
//!    zero fixes, and re-applying an empty edit set changes nothing.

use std::collections::BTreeMap;

use aipan_lint::callgraph::CallGraph;
use aipan_lint::cost::{self, CostModel};
use aipan_lint::fix::{apply_edits, FixEdit};
use aipan_lint::graph::Workspace;
use aipan_lint::numeric;
use aipan_lint::types::TypeIndex;

/// One scan round over in-memory sources: the pending machine-applicable
/// edits per file, from the rules that attach fixes (`H2`/`C2` via the
/// cost pass, `N1` via the numeric pass).
fn pending_fixes(files: &BTreeMap<String, String>) -> BTreeMap<String, Vec<FixEdit>> {
    let owned: Vec<(String, String)> = files.iter().map(|(p, s)| (p.clone(), s.clone())).collect();
    let ws = Workspace::build(&owned);
    let graph = CallGraph::build(&ws);
    let model = CostModel::build(&ws, &graph);
    let index = TypeIndex::build(&ws);
    let mut findings = cost::check_cost(&ws, &graph, &model);
    findings.extend(numeric::check_numeric(&ws, &graph, &model, &index));
    let mut by_file: BTreeMap<String, Vec<FixEdit>> = BTreeMap::new();
    for f in &findings {
        if let Some(fix) = &f.fix {
            by_file
                .entry(f.file.clone())
                .or_default()
                .extend(fix.edits.iter().cloned());
        }
    }
    by_file
}

/// Apply rounds of fixes exactly as `--fix` does (scan, apply, re-scan)
/// and return how many rounds it took to reach the fixpoint.
fn run_to_fixpoint(files: &mut BTreeMap<String, String>, max_rounds: usize) -> usize {
    for round in 0..max_rounds {
        let fixes = pending_fixes(files);
        if fixes.is_empty() {
            return round;
        }
        for (path, edits) in fixes {
            let src = files.get_mut(&path).expect("fix targets a scanned file");
            *src = apply_edits(src, &edits);
        }
    }
    panic!("no fixpoint within {max_rounds} rounds");
}

#[test]
fn n1_and_h2_fixes_on_one_line_apply_in_a_single_round() {
    // The `Vec::new()` pre-allocation and the widening cast share a line
    // but occupy disjoint byte ranges: both land in round one.
    let mut files = BTreeMap::from([(
        "crates/core/src/annotate.rs".to_string(),
        "pub fn annotate_all(docs: &[String], byte_count: u32) -> Vec<String> {\n\
         \x20   let mut out = Vec::new(); let total_bytes = byte_count as u64;\n\
         \x20   for d in docs {\n\
         \x20       out.push(d.clone());\n\
         \x20   }\n\
         \x20   record(total_bytes);\n\
         \x20   out\n\
         }\n\
         fn record(_n: u64) {}\n"
            .to_string(),
    )]);
    let rounds = run_to_fixpoint(&mut files, 5);
    assert_eq!(rounds, 1, "disjoint same-line fixes need exactly one round");
    let fixed = files.values().next().expect("one file");
    assert!(fixed.contains("Vec::with_capacity(docs.len())"), "{fixed}");
    assert!(fixed.contains("u64::from(byte_count)"), "{fixed}");
    assert!(!fixed.contains(" as u64"), "{fixed}");
    // Idempotence: the fixpoint text derives no further edits.
    assert!(pending_fixes(&files).is_empty());
}

#[test]
fn n1_fix_inside_a_c2_hoist_defers_and_converges() {
    // The hoist deletes the whole line that also carries the cast: the
    // `N1` edit overlaps the deletion, is deferred by earlier-edit-wins,
    // and re-derives next round against the hoisted statement.
    let mut files = BTreeMap::from([(
        "crates/analysis/src/lib.rs".to_string(),
        "pub fn total_len(rows: &[String], header: &String, byte_count: u32) -> u64 {\n\
         \x20   let mut total = 0u64;\n\
         \x20   for _row in rows {\n\
         \x20       let h = header.clone(); let wide_bytes = byte_count as u64;\n\
         \x20       total = total.saturating_add(h.len() as u64).saturating_add(wide_bytes);\n\
         \x20   }\n\
         \x20   total\n\
         }\n"
        .to_string(),
    )]);
    let rounds = run_to_fixpoint(&mut files, 5);
    assert!(rounds >= 2, "overlapping fixes must take a deferral round");
    let fixed = files.values().next().expect("one file");
    // The clone ended up above the loop, exactly once, cast rewritten.
    assert_eq!(fixed.matches("header.clone()").count(), 1, "{fixed}");
    let clone_at = fixed.find("header.clone()").expect("clone survives");
    let loop_at = fixed.find("for _row").expect("loop survives");
    assert!(clone_at < loop_at, "hoisted above the loop:\n{fixed}");
    assert!(fixed.contains("u64::from(byte_count)"), "{fixed}");
    assert!(pending_fixes(&files).is_empty(), "fixpoint is stable");
}
