//! Snapshot of the `--format json` surface. CI and editor integrations
//! parse this output, so its schema — member names, sorted member
//! order, severity spelling, pretty-printing — is a compatibility
//! contract. A diff here is an intentional schema change: update the
//! snapshot *and* whatever consumes the JSON.

use aipan_lint::findings::{Finding, Severity};
use aipan_lint::fix::{Fix, FixEdit};
use aipan_lint::report;
use aipan_lint::scan::Report;

fn sample_report() -> Report {
    let mut with_fix = Finding::at(
        "X1",
        Severity::Deny,
        "crates/x/src/lib.rs",
        4,
        13,
        "panic reachable from pub fn `get`".to_string(),
        "xs[i]".to_string(),
    );
    with_fix.fix = Some(Fix {
        title: "use checked indexing".to_string(),
        edits: vec![FixEdit {
            start: 10,
            end: 15,
            replacement: "xs.get(i)".to_string(),
        }],
    });
    Report {
        findings: vec![
            with_fix,
            Finding::for_data(
                "T2",
                "crates/taxonomy/src/rights.rs",
                "duplicate canonical name".to_string(),
                String::new(),
            ),
        ],
        suppressed: Vec::new(),
        files_scanned: 2,
    }
}

/// The full rendered document, byte for byte. `schema_version` is 4:
/// the v6 lint added the `N1`/`N2`/`A1`/`F1` rule vocabulary from the
/// type/effect layer, and the `--incremental` cache is keyed on this
/// constant together with `TYPES_SCHEMA` (the member shapes are
/// unchanged from 3, but cached reports must not replay across the
/// vocabulary change).
const SNAPSHOT: &str = r#"{
  "files_scanned": 2,
  "findings": [
    {
      "col": 13,
      "file": "crates/x/src/lib.rs",
      "fix": {
        "edits": [
          {
            "end": 15,
            "replacement": "xs.get(i)",
            "start": 10
          }
        ],
        "title": "use checked indexing"
      },
      "line": 4,
      "message": "panic reachable from pub fn `get`",
      "rule": "X1",
      "severity": "deny",
      "snippet": "xs[i]"
    },
    {
      "col": 0,
      "file": "crates/taxonomy/src/rights.rs",
      "fix": null,
      "line": 0,
      "message": "duplicate canonical name",
      "rule": "T2",
      "severity": "deny",
      "snippet": ""
    }
  ],
  "schema_version": 4,
  "suppressed": []
}"#;

#[test]
fn json_output_matches_schema_snapshot() {
    assert_eq!(
        report::json(&sample_report()),
        SNAPSHOT,
        "the --format json schema changed; update the snapshot and every consumer"
    );
}

#[test]
fn empty_report_keeps_all_members() {
    let empty = Report {
        findings: Vec::new(),
        suppressed: Vec::new(),
        files_scanned: 0,
    };
    let text = report::json(&empty);
    // Even an all-clean run must emit every top-level member, so
    // consumers never need `key in obj` guards.
    for key in ["files_scanned", "findings", "schema_version", "suppressed"] {
        assert!(text.contains(&format!("\"{key}\"")), "{text}");
    }
}
