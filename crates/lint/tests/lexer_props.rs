//! Property tests for the lint lexer: on arbitrary ASCII Rust-like input,
//! lexing never panics and the token texts concatenate back to the input
//! byte-for-byte (total coverage — nothing dropped, nothing duplicated).

use aipan_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

fn roundtrips(src: &str) -> Result<(), String> {
    let tokens = lex(src);
    let joined: String = tokens.iter().map(|t| t.text).collect();
    prop_assert_eq!(&joined, src, "lexer must cover every byte");
    Ok(())
}

proptest! {
    #[test]
    fn arbitrary_ascii_roundtrips(src in "[ -~\t\n]{0,80}") {
        roundtrips(&src)?;
    }

    #[test]
    fn token_soup_roundtrips(
        src in r##"((fn|let|mut|struct|unwrap|x1|_y)|[0-9]{1,4}|[{}()\[\];:,.&=<>!'"#/*-]|[ \n]){0,40}"##
    ) {
        roundtrips(&src)?;
    }

    #[test]
    fn string_and_comment_heavy_input_roundtrips(
        src in r#"("([a-z \\"]{0,6}")?|//[a-z .]{0,8}|/\*[a-z *]{0,6}(\*/)?|'[a-z]'?|r"[a-z]{0,4}(")?|[a-z]{1,6}|[ \n]){0,20}"#
    ) {
        roundtrips(&src)?;
    }

    #[test]
    fn positions_are_monotonic(src in "[ -~\n]{0,60}") {
        let tokens = lex(&src);
        let mut prev = (1u32, 0u32);
        for t in &tokens {
            let pos = (t.line, t.col);
            prop_assert!(
                pos.0 > prev.0 || (pos.0 == prev.0 && pos.1 > prev.1),
                "token positions must advance: {:?} then {:?}",
                prev,
                pos
            );
            prev = pos;
        }
    }

    #[test]
    fn no_empty_tokens(src in "[ -~\t\n]{0,80}") {
        for t in lex(&src) {
            prop_assert!(!t.text.is_empty(), "empty token of kind {:?}", t.kind);
        }
    }

    #[test]
    fn whitespace_tokens_are_pure_whitespace(src in "[ -~\t\n]{0,80}") {
        for t in lex(&src) {
            if t.kind == TokenKind::Whitespace {
                prop_assert!(t.text.bytes().all(|b| b.is_ascii_whitespace()));
            }
        }
    }
}
