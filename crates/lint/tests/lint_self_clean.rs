//! The analyzer must pass its own rules — with **no allowlist**.
//!
//! `workspace_clean.rs` holds the whole tree to `--deny-warnings` modulo
//! `lint.allow`; this test is stricter on the lint crate itself: a
//! filtered run over `crates/lint/` only, with an empty allowlist, so a
//! finding inside the analyzer can never be suppressed — it has to be
//! fixed structurally. The filtered run goes through the same
//! `scan::run_filtered` driver as a real scan, so every layer applies —
//! including the v6 type/effect rules (`N1`/`N2`/`A1`/`F1`), which the
//! analyzer's own casts, counters, and I/O must satisfy too.

use aipan_lint::allow::Allowlist;
use aipan_lint::scan;
use std::path::Path;

#[test]
fn lint_crate_passes_its_own_rules_without_an_allowlist() {
    let root = scan::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = scan::run_filtered(&root, Allowlist::default(), |rel| {
        rel.starts_with("crates/lint/")
    })
    .expect("scan crates/lint");
    assert!(
        report.files_scanned >= 10,
        "expected every lint source and test file, scanned {}",
        report.files_scanned
    );
    assert!(report.suppressed.is_empty(), "no allowlist was provided");

    // Exactly `--deny-warnings` strictness: any finding at all fails.
    if report.failed(true) {
        let listing: Vec<String> = report
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{}:{}:{} [{} {}] {}",
                    f.file,
                    f.line,
                    f.col,
                    f.severity.name(),
                    f.rule,
                    f.message
                )
            })
            .collect();
        panic!(
            "the analyzer violates its own rules:\n  {}",
            listing.join("\n  ")
        );
    }
}
