//! Property tests for the item parser: on arbitrary Rust-like token soup,
//! parsing never panics and every item span round-trips through the lexer's
//! significant-token stream without overlap — siblings are disjoint and
//! ordered, children nest strictly inside their parent, and every span stays
//! within the file's significant-token count.

use aipan_lint::parser::{parse_file, Item};
use proptest::prelude::*;

/// Check the span invariants for one sibling list, recursing into children.
fn check_siblings(items: &[Item], bound: (usize, usize)) -> Result<(), String> {
    let mut prev_end: Option<usize> = None;
    for item in items {
        let (start, end) = item.span;
        prop_assert!(
            start <= end,
            "inverted span {:?} on `{}`",
            item.span,
            item.name
        );
        prop_assert!(
            bound.0 <= start && end <= bound.1,
            "span {:?} of `{}` escapes enclosing bound {:?}",
            item.span,
            item.name,
            bound
        );
        if let Some(prev) = prev_end {
            prop_assert!(
                start > prev,
                "sibling `{}` at {:?} overlaps previous sibling ending at {}",
                item.name,
                item.span,
                prev
            );
        }
        prev_end = Some(end);
        check_siblings(&item.children, (start, end))?;
    }
    Ok(())
}

proptest! {
    #[test]
    fn item_spans_nest_without_overlap(
        src in r"((pub|fn|struct|enum|impl|trait|mod|use|const|let|match|if|self|Self|crate)|[a-z]{1,5}|[0-9]{1,3}|[{}()\[\];:,.<>&=#!'-]|[ \n]){0,60}"
    ) {
        let parsed = parse_file("crates/x/src/soup.rs", &src);
        if parsed.sig_len == 0 {
            prop_assert!(parsed.items.is_empty());
            return Ok(());
        }
        check_siblings(&parsed.items, (0, parsed.sig_len - 1))?;
    }

    #[test]
    fn parse_never_panics_on_arbitrary_ascii(src in "[ -~\t\n]{0,120}") {
        let parsed = parse_file("crates/x/src/any.rs", &src);
        // Weak sanity: the flattened item list is finite and spans are sane.
        for item in parsed.all_items() {
            prop_assert!(item.span.0 <= item.span.1);
            prop_assert!(parsed.sig_len == 0 || item.span.1 < parsed.sig_len);
        }
    }

    #[test]
    fn realistic_items_cover_their_bodies(
        name in "[a-z][a-z0-9_]{0,8}",
        body in r"(let [a-z]{1,4} = [0-9]{1,3};| self\.[a-z]{1,4}\(\);){0,4}"
    ) {
        let src = format!("pub fn {name}(&self) {{ {body} }}\npub struct After;\n");
        let parsed = parse_file("crates/x/src/gen.rs", &src);
        prop_assert_eq!(parsed.items.len(), 2, "fn + struct: {:?}", parsed.items);
        check_siblings(&parsed.items, (0, parsed.sig_len - 1))?;
        prop_assert_eq!(parsed.items[0].name.as_str(), name.as_str());
        prop_assert_eq!(parsed.items[1].name.as_str(), "After");
    }
}
