//! Property tests for the v5 retention/sharing/incremental layers:
//!
//! 1. **Streamed is never retained** — a collection that is consumed
//!    (`clear`/`drain`/rebind) inside the loop that grows it is never
//!    classified [`Retention::Retained`], whatever else the fn does with
//!    it, including returning it.
//! 2. **Capture invariance under worker count** — the capture set of a
//!    spawned worker closure depends only on the closure's params and
//!    body, never on how many workers the surrounding loop spawns.
//! 3. **Incremental replay is byte-identical** — on an unchanged tree a
//!    warm `--incremental` run renders byte-identical JSON to the cold
//!    run that populated the cache, and after touching one file the
//!    partially-reused run renders byte-identical JSON to a from-scratch
//!    scan of the same tree.

use aipan_lint::allow::Allowlist;
use aipan_lint::callgraph::CallGraph;
use aipan_lint::cost::CostModel;
use aipan_lint::expr::{for_each_expr, ExprKind};
use aipan_lint::graph::Workspace;
use aipan_lint::incremental::run_incremental;
use aipan_lint::parser::{parse_file, ItemKind};
use aipan_lint::retain::{retention_records, Retention, RetentionRecord};
use aipan_lint::share::captured_roots;
use aipan_lint::{report, scan};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Build a one-file workspace and classify every collection in it.
fn records_for(src: &str) -> Vec<RetentionRecord> {
    let files = vec![("crates/x/src/gen.rs".to_string(), src.to_string())];
    let ws = Workspace::build(&files);
    let graph = CallGraph::build(&ws);
    let model = CostModel::build(&ws, &graph);
    retention_records(&ws, &graph, &model)
}

/// Innocuous single-line statements to pad generated fn bodies with.
const PAD: &str = concat!(
    r"(let [a-z]{1,3} = [0-9]{1,2};",
    r"|touch\([a-z]{1,3}\);",
    r"|let s = other\.clone\(\);",
    r")",
);

proptest! {
    #[test]
    fn consumed_in_defining_loop_is_never_retained(
        pre in proptest::collection::vec(PAD, 0..4),
        post in proptest::collection::vec(PAD, 0..4),
        consume_kind in 0usize..3,
        grow_kind in 0usize..2,
    ) {
        let consume = match consume_kind {
            0 => "acc.clear();",
            1 => "acc.drain(..).count();",
            _ => "acc = Vec::new();",
        };
        let grow = if grow_kind == 0 {
            "acc.push(x);"
        } else {
            "if x > 1 { acc.push(x); }"
        };
        let src = format!(
            "pub fn run_pipeline_gen(xs: Vec<u32>) -> Vec<u32> {{\n\
             {}    let mut acc = Vec::new();\n    for x in xs {{\n        {grow}\n        {consume}\n    }}\n{}    acc\n}}\n",
            pre.iter().map(|s| format!("    {s}\n")).collect::<String>(),
            post.iter().map(|s| format!("    {s}\n")).collect::<String>(),
        );
        let records = records_for(&src);
        let acc = records
            .iter()
            .find(|r| r.name == "acc")
            .ok_or_else(|| format!("no record for acc in {src}"))?;
        prop_assert!(
            acc.class != Retention::Retained,
            "consumed-in-loop accumulator classified Retained in:\n{src}"
        );
    }

    #[test]
    fn capture_set_is_invariant_under_worker_count(
        w_a in 1u32..9,
        w_b in 1u32..9,
        body_stmts in proptest::collection::vec(
            concat!(
                r"(shared\.push\(1\);",
                r"|let y = seed \+ 1;",
                r"|tx\.send\(seed\)\.ok\(\);",
                r"|touch\(local\);",
                r")",
            ),
            1..5,
        ),
    ) {
        let captures_at = |workers: u32| -> Result<BTreeSet<String>, String> {
            let src = format!(
                "fn spawn_all(pool: &Pool) {{\n    for _ in 0..{workers} {{\n        \
                 pool.spawn(move || {{\n            let local = 3;\n{}        }});\n    }}\n}}\n",
                body_stmts
                    .iter()
                    .map(|s| format!("            {s}\n"))
                    .collect::<String>(),
            );
            let parsed = parse_file("crates/x/src/gen.rs", &src);
            let info = parsed
                .items
                .iter()
                .find_map(|item| match &item.kind {
                    ItemKind::Fn(info) => Some(info),
                    _ => None,
                })
                .ok_or_else(|| format!("no fn parsed from {src}"))?;
            let mut caps: Option<BTreeSet<String>> = None;
            for_each_expr(&info.body, &mut |e| {
                if let ExprKind::Closure { params, body, .. } = &e.kind {
                    if caps.is_none() {
                        caps = Some(captured_roots(params, body));
                    }
                }
            });
            caps.ok_or_else(|| format!("no closure found in {src}"))
        };
        let a = captures_at(w_a)?;
        let b = captures_at(w_b)?;
        prop_assert_eq!(
            &a, &b,
            "capture set changed with worker count {} -> {}", w_a, w_b
        );
        // Names bound inside the closure are never captures.
        prop_assert!(!a.contains("local"), "closure-local leaked into captures: {:?}", a);
        prop_assert!(!a.contains("y"), "closure-local leaked into captures: {:?}", a);
    }
}

/// A scratch workspace under the OS temp dir, deleted on drop.
struct ScratchWs {
    root: PathBuf,
}

impl ScratchWs {
    fn new(tag: &str, files: &[(&str, String)]) -> Result<ScratchWs, String> {
        let root =
            std::env::temp_dir().join(format!("aipan-lint-props-{}-{tag}", std::process::id()));
        // A previous failed case may have left the directory behind.
        let _ = std::fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
            std::fs::write(&path, text).map_err(|e| e.to_string())?;
        }
        Ok(ScratchWs { root })
    }
}

impl Drop for ScratchWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

proptest! {
    #[test]
    fn incremental_output_is_byte_identical_to_cold(
        a_stmts in proptest::collection::vec(PAD, 0..5),
        b_stmts in proptest::collection::vec(PAD, 0..5),
        tag in 0u32..1000,
    ) {
        let fn_src = |name: &str, stmts: &[String]| {
            format!(
                "pub fn {name}() {{\n{}}}\n",
                stmts.iter().map(|s| format!("    {s}\n")).collect::<String>(),
            )
        };
        let ws = ScratchWs::new(
            &format!("inc-{tag}"),
            &[
                ("crates/a/src/lib.rs", fn_src("alpha", &a_stmts)),
                ("crates/b/src/lib.rs", fn_src("beta", &b_stmts)),
            ],
        )?;
        let allow = ws.root.join("lint.allow");

        // Cold populates the cache; warm must replay it byte-identically.
        let (cold, _) = run_incremental(&ws.root, &allow)
            .map_err(|e| format!("cold run: {e}"))?;
        let (warm, stats) = run_incremental(&ws.root, &allow)
            .map_err(|e| format!("warm run: {e}"))?;
        prop_assert!(stats.replayed, "unchanged tree must replay: {}", stats.summary());
        prop_assert_eq!(report::json(&cold), report::json(&warm));

        // Touch one file: the partial run must match a from-scratch scan.
        let touched = ws.root.join("crates/a/src/lib.rs");
        let mut text = std::fs::read_to_string(&touched).map_err(|e| e.to_string())?;
        text.push_str("\npub fn gamma() {\n    let g = 1;\n}\n");
        std::fs::write(&touched, text).map_err(|e| e.to_string())?;

        let (partial, stats) = run_incremental(&ws.root, &allow)
            .map_err(|e| format!("partial run: {e}"))?;
        prop_assert!(!stats.replayed, "changed tree must not replay");
        prop_assert_eq!(stats.changed_files, 1, "{}", stats.summary());
        let fresh = scan::run(&ws.root, Allowlist::default())
            .map_err(|e| format!("fresh run: {e}"))?;
        prop_assert_eq!(report::json(&partial), report::json(&fresh));
    }
}
