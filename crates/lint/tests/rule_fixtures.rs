//! Per-rule fixtures: each rule has a positive case (fires, names the right
//! file/line/rule) and an allowlisted-negative case (the same finding is
//! suppressed by a matching `lint.allow` entry).

use aipan_lint::allow::Allowlist;
use aipan_lint::{lint_source, Finding};

/// Fire `src` through the linter as `path`, then partition the findings
/// through an allowlist text.
fn lint_with_allow(path: &str, src: &str, allow: &str) -> (Vec<Finding>, Vec<Finding>) {
    let mut allowlist = Allowlist::parse(allow).expect("fixture allowlist parses");
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in lint_source(path, src) {
        if allowlist.permits(&f) {
            suppressed.push(f);
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed)
}

fn allow_entry(rule: &str, file: &str) -> String {
    format!("[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\nreason = \"fixture: vetted\"\n")
}

#[test]
fn d1_wall_clock_positive_and_allowlisted() {
    let path = "crates/core/src/clock.rs";
    let src = "use std::time::Instant;\npub fn stamp() -> Instant { Instant::now() }\n";
    let findings = lint_source(path, src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!((f.rule, f.file.as_str(), f.line), ("D1", path, 2));
    assert!(f.message.contains("Instant::now()"));

    let (kept, suppressed) = lint_with_allow(path, src, &allow_entry("D1", path));
    assert!(
        kept.is_empty(),
        "allowlisted finding must be suppressed: {kept:?}"
    );
    assert_eq!(suppressed.len(), 1);
}

#[test]
fn d1_entropy_sources() {
    let src = "pub fn seed() -> u64 { rand::thread_rng().gen() }\n";
    let findings = lint_source("crates/webgen/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "D1");
    assert!(findings[0].message.contains("thread_rng"));

    let src = "pub fn mk() -> ChaCha8Rng { ChaCha8Rng::from_entropy() }\n";
    let findings = lint_source("crates/webgen/src/x.rs", src);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("from_entropy"));
}

#[test]
fn d2_hash_iteration_positive_and_allowlisted() {
    let path = "crates/analysis/src/t.rs";
    let src = "use std::collections::HashMap;\n\
               pub fn emit(counts: HashMap<String, u32>) -> String {\n\
               \x20   let mut out = String::new();\n\
               \x20   for (k, v) in &counts {\n\
               \x20       out.push_str(&format!(\"{k} {v}\\n\"));\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    let findings = lint_source(path, src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.line), ("D2", 4));
    assert!(f.message.contains("BTreeMap"));

    let (kept, _) = lint_with_allow(path, src, &allow_entry("D2", path));
    assert!(kept.is_empty());
}

#[test]
fn r1_panics_positive_and_allowlisted() {
    let path = "crates/net/src/x.rs";
    let src = "pub fn a(v: Option<u8>) -> u8 { v.unwrap() }\n\
               pub fn b(v: Option<u8>) -> u8 { v.expect(\"present\") }\n\
               pub fn c() { panic!(\"boom\") }\n";
    let findings = lint_source(path, src);
    let got: Vec<(u32, &str)> = findings
        .iter()
        .map(|f| (f.line, f.message.split('`').nth(1).unwrap_or("")))
        .collect();
    assert_eq!(got, vec![(1, "unwrap"), (2, "expect"), (3, "panic")]);

    // Line-pinned allow suppresses only its line.
    let allow = format!(
        "[[allow]]\nrule = \"R1\"\nfile = \"{path}\"\nline = 2\nreason = \"fixture: invariant documented\"\n"
    );
    let (kept, suppressed) = lint_with_allow(path, src, &allow);
    assert_eq!(kept.len(), 2);
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].line, 2);
}

#[test]
fn o1_stdio_positive_and_allowlisted() {
    let path = "crates/ml/src/x.rs";
    let src = "pub fn log(x: u32) { println!(\"{x}\"); eprintln!(\"{x}\"); }\n";
    let findings = lint_source(path, src);
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.rule == "O1"));

    let (kept, _) = lint_with_allow(path, src, &allow_entry("O1", path));
    assert!(kept.is_empty());
}

#[test]
fn h1_untracked_todo_positive_and_allowlisted() {
    let path = "crates/core/src/x.rs";
    let src = "// TODO: finish this\npub fn f() {}\n";
    let findings = lint_source(path, src);
    assert_eq!(findings.len(), 1);
    assert_eq!((findings[0].rule, findings[0].line), ("H1", 1));

    // Tagged form is clean without any allowlist.
    let tagged = "// TODO(#7): finish this\npub fn f() {}\n";
    assert!(lint_source(path, tagged).is_empty());

    let (kept, _) = lint_with_allow(path, src, &allow_entry("H1", path));
    assert!(kept.is_empty());
}

#[test]
fn b1_unbounded_retry_loop_positive_and_allowlisted() {
    let path = "crates/net/src/poller.rs";
    let src = "pub fn poll(c: &Client, url: &Url) -> Page {\n\
               \x20   loop {\n\
               \x20       if let Ok(p) = c.fetch_page(url) {\n\
               \x20           return p;\n\
               \x20       }\n\
               \x20   }\n\
               }\n";
    let findings = lint_source(path, src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.file.as_str(), f.line), ("B1", path, 3));
    assert_eq!(f.severity, aipan_lint::Severity::Warn);
    assert!(f.message.contains("fetch_page"), "{}", f.message);
    assert!(f.message.contains("RetryPolicy"), "{}", f.message);

    let (kept, suppressed) = lint_with_allow(path, src, &allow_entry("B1", path));
    assert!(kept.is_empty(), "{kept:?}");
    assert_eq!(suppressed.len(), 1);

    // The same loop bounded by a retry budget is clean without any allow.
    let bounded = "pub fn poll(c: &Client, url: &Url) -> Option<Page> {\n\
                   \x20   let mut retries_left = 3;\n\
                   \x20   while retries_left > 0 {\n\
                   \x20       retries_left -= 1;\n\
                   \x20       if let Ok(p) = c.fetch_page(url) {\n\
                   \x20           return Some(p);\n\
                   \x20       }\n\
                   \x20   }\n\
                   \x20   None\n\
                   }\n";
    assert!(lint_source(path, bounded).is_empty());
}

#[test]
fn injected_thread_rng_into_core_is_named_precisely() {
    // The acceptance scenario: drop a thread_rng() call into crates/core and
    // the lint names the file, line, and rule.
    let path = "crates/core/src/pipeline.rs";
    let src = "pub fn shuffle_order() -> u64 {\n    let mut rng = rand::thread_rng();\n    rng.gen()\n}\n";
    let findings = lint_source(path, src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.rule, "D1");
    assert_eq!(f.file, path);
    assert_eq!(f.line, 2);
    assert!(f.snippet.contains("thread_rng"));
}

// ---------------------------------------------------------------------------
// Graph rules (L1 / E1 / K1 / P1): one violating and one clean fixture each,
// exercised through the public workspace API exactly as `scan::run` does.
// ---------------------------------------------------------------------------

use aipan_lint::config::Config;
use aipan_lint::graph::Workspace;
use aipan_lint::{error_flow, locks};

fn workspace(files: &[(&str, &str)]) -> Workspace {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    Workspace::build(&owned)
}

const LAYERING: &str = "[layering]\n\
                        taxonomy = []\n\
                        html = []\n\
                        analysis = [\"taxonomy\", \"html\"]\n";

#[test]
fn l1_layering_violation_fires_and_clean_import_does_not() {
    let config = Config::parse(LAYERING).expect("fixture layering parses");

    let bad = workspace(&[(
        "crates/taxonomy/src/lib.rs",
        "use aipan_analysis::tables;\npub fn f() { tables::go(); }\n",
    )]);
    let findings = bad.check_layering(&config);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("L1", aipan_lint::Severity::Deny));
    assert_eq!(f.file, "crates/taxonomy/src/lib.rs");
    assert!(f.message.contains("taxonomy"), "{}", f.message);
    assert!(f.message.contains("analysis"), "{}", f.message);

    let clean = workspace(&[(
        "crates/analysis/src/lib.rs",
        "use aipan_taxonomy::aspect;\npub fn f() { aspect::go(); }\n",
    )]);
    assert!(clean.check_layering(&config).is_empty());
}

#[test]
fn e1_discarded_result_fires_and_handled_result_does_not() {
    let bad = workspace(&[(
        "crates/net/src/io.rs",
        "pub fn send(x: u8) -> Result<(), String> { Ok(drop_marker(x)) }\n\
         pub fn caller() { let _ = send(1); }\n",
    )]);
    let findings = error_flow::check_error_flow(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("E1", aipan_lint::Severity::Warn));
    assert_eq!(f.line, 2);
    assert!(f.message.contains("send"), "{}", f.message);

    let clean = workspace(&[(
        "crates/net/src/io.rs",
        "pub fn send(x: u8) -> Result<(), String> { Ok(drop_marker(x)) }\n\
         pub fn caller() -> Result<(), String> { send(1) }\n",
    )]);
    assert!(error_flow::check_error_flow(&clean).is_empty());
}

#[test]
fn k1_lock_order_inversion_fires_and_consistent_order_does_not() {
    let decl = "pub struct S { a: Mutex<u32>, b: RwLock<u32> }\n";
    let bad = workspace(&[(
        "crates/crawler/src/pool.rs",
        &format!(
            "{decl}impl S {{\n\
             \x20   pub fn x(&self) {{ let g = self.a.lock(); let h = self.b.read(); use2(g, h); }}\n\
             \x20   pub fn y(&self) {{ let h = self.b.write(); let g = self.a.lock(); use2(g, h); }}\n\
             }}\n"
        ),
    )]);
    let findings = locks::check_lock_order(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("K1", aipan_lint::Severity::Deny));
    assert!(f.message.contains("crawler::S.a"), "{}", f.message);
    assert!(f.message.contains("crawler::S.b"), "{}", f.message);

    let clean = workspace(&[(
        "crates/crawler/src/pool.rs",
        &format!(
            "{decl}impl S {{\n\
             \x20   pub fn x(&self) {{ let g = self.a.lock(); let h = self.b.read(); use2(g, h); }}\n\
             \x20   pub fn y(&self) {{ let g = self.a.lock(); let h = self.b.write(); use2(g, h); }}\n\
             }}\n"
        ),
    )]);
    assert!(locks::check_lock_order(&clean).is_empty());
}

#[test]
fn p1_dead_pub_fires_and_referenced_pub_does_not() {
    let bad = workspace(&[
        (
            "crates/html/src/lib.rs",
            "pub fn orphan() -> u32 { 7 }\npub fn used() -> u32 { 8 }\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub fn caller() -> u32 { aipan_html::used() }\n",
        ),
        // Mentions from test files count as references (P1 flags items
        // nothing in the workspace touches, tests included).
        ("tests/smoke.rs", "fn s() { aipan_core::caller(); }\n"),
    ]);
    let findings = bad.check_dead_pub();
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("P1", aipan_lint::Severity::Warn));
    assert_eq!(f.file, "crates/html/src/lib.rs");
    assert!(f.message.contains("orphan"), "{}", f.message);

    // A cross-file mention — even from a test — keeps the item alive.
    let clean = workspace(&[
        (
            "crates/html/src/lib.rs",
            "pub fn orphan() -> u32 { 7 }\npub fn used() -> u32 { 8 }\n",
        ),
        (
            "crates/core/src/lib.rs",
            "pub fn caller() -> u32 { aipan_html::used() + aipan_html::orphan() }\n",
        ),
        ("tests/smoke.rs", "fn s() { aipan_core::caller(); }\n"),
    ]);
    assert!(clean.check_dead_pub().is_empty());
}

// ---------------------------------------------------------------------------
// Dataflow rules: X1 panic-reachability and D3 determinism taint, each
// with a violating and a clean fixture pair.
// ---------------------------------------------------------------------------

use aipan_lint::callgraph::CallGraph;
use aipan_lint::{panic_reach, taint};

#[test]
fn x1_interprocedural_panic_fires_and_guarded_code_does_not() {
    // Violating: pub entry point reaches a private fn's unproven index.
    let bad = workspace(&[(
        "crates/core/src/lib.rs",
        "pub fn entry(xs: &[u32], i: usize) -> u32 { inner(xs, i) }\n\
         fn inner(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
    )]);
    let graph = CallGraph::build(&bad);
    let findings = panic_reach::check_panic_reach(&bad, &graph);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("X1", aipan_lint::Severity::Deny));
    assert!(f.message.contains("entry -> inner"), "{}", f.message);
    assert!(f.message.contains("xs[i]"), "{}", f.message);

    // Clean: the same shape with a dominating bounds guard in the callee.
    let clean = workspace(&[(
        "crates/core/src/lib.rs",
        "pub fn entry(xs: &[u32], i: usize) -> u32 { inner(xs, i) }\n\
         fn inner(xs: &[u32], i: usize) -> u32 {\n\
         \x20   if i < xs.len() { xs[i] } else { 0 }\n\
         }\n",
    )]);
    let graph = CallGraph::build(&clean);
    let findings = panic_reach::check_panic_reach(&clean, &graph);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn x1_float_division_is_exempt_integer_division_is_not() {
    let dirty = workspace(&[(
        "crates/core/src/lib.rs",
        "pub fn avg(total: u64, n: u64) -> u64 { total / n }\n",
    )]);
    let graph = CallGraph::build(&dirty);
    let findings = panic_reach::check_panic_reach(&dirty, &graph);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("divisor"),
        "{}",
        findings[0].message
    );

    // Float mean: division by a float-typed `let` never panics; and an
    // integer divisor proved nonzero by `.max(1)` is exempt too.
    let clean = workspace(&[(
        "crates/core/src/lib.rs",
        "pub fn mean(values: &[f64]) -> f64 {\n\
         \x20   let n = values.len() as f64;\n\
         \x20   values.iter().sum::<f64>() / n\n\
         }\n\
         pub fn share(total: usize, buckets: usize) -> usize {\n\
         \x20   total / buckets.max(1)\n\
         }\n",
    )]);
    let graph = CallGraph::build(&clean);
    let findings = panic_reach::check_panic_reach(&clean, &graph);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_hash_order_to_sink_fires_and_sorted_does_not() {
    // Violating: HashMap keys flow through a binding into writeln!.
    let bad = workspace(&[(
        "crates/analysis/src/lib.rs",
        "use std::collections::HashMap;\n\
         use std::fmt::Write;\n\
         pub fn render(counts: &HashMap<String, u32>) -> String {\n\
         \x20   let mut out = String::new();\n\
         \x20   let ks: Vec<&String> = counts.keys().collect();\n\
         \x20   for k in ks {\n\
         \x20       let _ = writeln!(out, \"{k}\");\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let graph = CallGraph::build(&bad);
    let findings = taint::check_taint(&bad, &graph);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("D3", aipan_lint::Severity::Deny));
    assert!(f.message.contains("hash-order"), "{}", f.message);

    // Clean: the same flow with a sort between iteration and sink.
    let clean = workspace(&[(
        "crates/analysis/src/lib.rs",
        "use std::collections::HashMap;\n\
         use std::fmt::Write;\n\
         pub fn render(counts: &HashMap<String, u32>) -> String {\n\
         \x20   let mut out = String::new();\n\
         \x20   let mut ks: Vec<&String> = counts.keys().collect();\n\
         \x20   ks.sort();\n\
         \x20   for k in ks {\n\
         \x20       let _ = writeln!(out, \"{k}\");\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let graph = CallGraph::build(&clean);
    let findings = taint::check_taint(&clean, &graph);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d3_btree_collect_sanitizes_and_returned_collection_is_a_sink() {
    // Violating: hash iteration pushed into the returned Vec.
    let bad = workspace(&[(
        "crates/analysis/src/lib.rs",
        "use std::collections::HashSet;\n\
         pub fn names(set: &HashSet<String>) -> Vec<String> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for name in set.iter() {\n\
         \x20       out.push(name.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let graph = CallGraph::build(&bad);
    let findings = taint::check_taint(&bad, &graph);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "D3");

    // Clean: collecting into a BTree first launders the order.
    let clean = workspace(&[(
        "crates/analysis/src/lib.rs",
        "use std::collections::{BTreeSet, HashSet};\n\
         pub fn names(set: &HashSet<String>) -> Vec<String> {\n\
         \x20   let sorted: BTreeSet<&String> = set.iter().collect();\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for name in sorted {\n\
         \x20       out.push(name.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let graph = CallGraph::build(&clean);
    let findings = taint::check_taint(&clean, &graph);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Cost & guard rules (H2 / C2 / M1 / M2): one violating and one clean
// fixture pair each, driven through the cost model like `scan::run`.
// ---------------------------------------------------------------------------

use aipan_lint::{cost, guards};

fn cost_findings(ws: &Workspace) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let model = cost::CostModel::build(ws, &graph);
    cost::check_cost(ws, &graph, &model)
}

fn guard_findings(ws: &Workspace) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let model = cost::CostModel::build(ws, &graph);
    guards::check_guards(ws, &graph, &model)
}

#[test]
fn h2_growth_in_hot_loop_fires_and_preallocated_does_not() {
    // Violating: pub fn in an annotate.rs file is a pipeline entry, so its
    // loop is hot; the Vec is born empty and grown per iteration.
    let bad = workspace(&[(
        "crates/core/src/annotate.rs",
        "pub fn annotate_all(docs: &[String]) -> Vec<String> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for d in docs {\n\
         \x20       out.push(d.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let findings = cost_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("H2", aipan_lint::Severity::Warn));
    assert_eq!(f.line, 2);
    assert!(f.message.contains("hot path"), "{}", f.message);
    assert!(f.message.contains("annotate_all"), "{}", f.message);
    // The iterated slice has a provable `.len()`, so the finding carries a
    // machine-applicable pre-allocation fix.
    let fix = f.fix.as_ref().expect("H2 fix attached");
    assert!(
        fix.edits[0]
            .replacement
            .contains("Vec::with_capacity(docs.len())"),
        "{fix:?}"
    );

    // Clean: the same loop with the capacity pre-allocated.
    let clean = workspace(&[(
        "crates/core/src/annotate.rs",
        "pub fn annotate_all(docs: &[String]) -> Vec<String> {\n\
         \x20   let mut out = Vec::with_capacity(docs.len());\n\
         \x20   for d in docs {\n\
         \x20       out.push(d.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let findings = cost_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn h2_requires_a_hot_path() {
    // The same growth pattern in a fn no pipeline entry reaches is not H2.
    let cold = workspace(&[(
        "crates/html/src/build.rs",
        "pub fn collect_ids(docs: &[String]) -> Vec<String> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for d in docs {\n\
         \x20       out.push(d.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let findings = cost_findings(&cold);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn c2_loop_invariant_clone_fires_and_hoisted_clone_does_not() {
    // Violating: `header` is never modified inside the loop, yet cloned
    // once per iteration.
    let bad = workspace(&[(
        "crates/analysis/src/lib.rs",
        "pub fn total_len(rows: &[String], header: &String) -> usize {\n\
         \x20   let mut total = 0usize;\n\
         \x20   for _row in rows {\n\
         \x20       let h = header.clone();\n\
         \x20       total += h.len();\n\
         \x20   }\n\
         \x20   total\n\
         }\n",
    )]);
    let findings = cost_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("C2", aipan_lint::Severity::Warn));
    assert_eq!(f.line, 4);
    assert!(f.message.contains("header"), "{}", f.message);

    // Clean: the clone hoisted above the loop.
    let clean = workspace(&[(
        "crates/analysis/src/lib.rs",
        "pub fn total_len(rows: &[String], header: &String) -> usize {\n\
         \x20   let mut total = 0usize;\n\
         \x20   let h = header.clone();\n\
         \x20   for _row in rows {\n\
         \x20       total += h.len();\n\
         \x20   }\n\
         \x20   total\n\
         }\n",
    )]);
    let findings = cost_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");

    // Clean: the source is modified inside the loop, so the clone is not
    // invariant and must stay.
    let modified = workspace(&[(
        "crates/analysis/src/lib.rs",
        "pub fn total_len(rows: &[String], header: &mut String) -> usize {\n\
         \x20   let mut total = 0usize;\n\
         \x20   for row in rows {\n\
         \x20       let h = header.clone();\n\
         \x20       header.push_str(row);\n\
         \x20       total += h.len();\n\
         \x20   }\n\
         \x20   total\n\
         }\n",
    )]);
    let findings = cost_findings(&modified);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn m1_lock_across_fetch_fires_and_dropped_guard_does_not() {
    let decl = "pub struct P { jobs: Mutex<Vec<String>> }\n";
    let bad = workspace(&[(
        "crates/crawler/src/queue.rs",
        &format!(
            "{decl}impl P {{\n\
             \x20   pub fn bad(&self, c: &Client) {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       let page = c.fetch_page(g.first());\n\
             \x20       use2(page);\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = guard_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("M1", aipan_lint::Severity::Deny));
    assert!(f.message.contains("fetch_page"), "{}", f.message);
    assert!(f.message.contains("`g`"), "{}", f.message);

    // Clean: the guard is dropped before the expensive call.
    let clean = workspace(&[(
        "crates/crawler/src/queue.rs",
        &format!(
            "{decl}impl P {{\n\
             \x20   pub fn good(&self, c: &Client) {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       let url = g.first().cloned();\n\
             \x20       drop(g);\n\
             \x20       let page = c.fetch_page(url);\n\
             \x20       use2(page);\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = guard_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn m2_guard_used_only_inside_loop_fires_and_outside_use_does_not() {
    let decl = "pub struct P { jobs: Mutex<Vec<u32>> }\n";
    let bad = workspace(&[(
        "crates/crawler/src/queue.rs",
        &format!(
            "{decl}impl P {{\n\
             \x20   pub fn tally(&self, xs: &[u32]) -> usize {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       let mut n = 0usize;\n\
             \x20       for x in xs {{\n\
             \x20           n += g.len() + (*x as usize);\n\
             \x20       }}\n\
             \x20       n\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = guard_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("M2", aipan_lint::Severity::Warn));
    assert!(f.message.contains("`g`"), "{}", f.message);

    // Clean: the guard is also read before the loop, so holding it across
    // iterations is a deliberate batch-hold.
    let clean = workspace(&[(
        "crates/crawler/src/queue.rs",
        &format!(
            "{decl}impl P {{\n\
             \x20   pub fn tally(&self, xs: &[u32]) -> usize {{\n\
             \x20       let g = self.jobs.lock();\n\
             \x20       let mut n = g.len();\n\
             \x20       for x in xs {{\n\
             \x20           n += g.len() + (*x as usize);\n\
             \x20       }}\n\
             \x20       n\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = guard_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Retention & sharing rules (S1 / S2 / W1 / W2): one violating and one
// clean fixture pair each, driven through the same passes `scan::run` uses.
// ---------------------------------------------------------------------------

use aipan_lint::{retain, share};

fn retention_findings(ws: &Workspace) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let model = cost::CostModel::build(ws, &graph);
    retain::check_retention(ws, &graph, &model)
}

fn sharing_findings(ws: &Workspace) -> Vec<Finding> {
    let graph = CallGraph::build(ws);
    let model = cost::CostModel::build(ws, &graph);
    share::check_sharing(ws, &graph, &model)
}

#[test]
fn s1_materialized_hand_off_fires_and_multi_use_consumer_does_not() {
    // Violating: a hot annotate-stage fn materializes the whole corpus
    // into a Vec whose sole consumer just iterates it once.
    let bad = workspace(&[(
        "crates/core/src/annotate.rs",
        "pub fn annotate_corpus(docs: &[String]) -> Vec<String> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for d in docs {\n\
         \x20       out.push(d.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n\
         pub fn run_pipeline_emit(docs: &[String]) {\n\
         \x20   for a in annotate_corpus(docs) {\n\
         \x20       emit(a);\n\
         \x20   }\n\
         }\n",
    )]);
    let findings = retention_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("S1", aipan_lint::Severity::Warn));
    assert_eq!(f.line, 2);
    assert!(f.message.contains("annotate_corpus"), "{}", f.message);
    assert!(f.message.contains("run_pipeline_emit"), "{}", f.message);

    // Clean: the consumer also reads the batch's length, so the
    // materialized Vec is not a pure stream hand-off.
    let clean = workspace(&[(
        "crates/core/src/annotate.rs",
        "pub fn annotate_corpus(docs: &[String]) -> Vec<String> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   for d in docs {\n\
         \x20       out.push(d.clone());\n\
         \x20   }\n\
         \x20   out\n\
         }\n\
         pub fn run_pipeline_emit(docs: &[String]) {\n\
         \x20   let batch = annotate_corpus(docs);\n\
         \x20   record_count(batch.len());\n\
         \x20   for a in batch {\n\
         \x20       emit(a);\n\
         \x20   }\n\
         }\n",
    )]);
    let findings = retention_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn s2_unbounded_growth_fires_and_len_derived_bound_does_not() {
    // Violating: a hot fn grows a Vec in a `loop` with no exit bound at
    // all — unbounded memory at corpus scale.
    let bad = workspace(&[(
        "crates/core/src/annotate.rs",
        "pub fn annotate_feed(feed: &Feed) -> Vec<String> {\n\
         \x20   let mut out = Vec::new();\n\
         \x20   loop {\n\
         \x20       out.push(feed.next_chunk());\n\
         \x20   }\n\
         }\n",
    )]);
    let findings = retention_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("S2", aipan_lint::Severity::Warn));
    assert_eq!(f.line, 4);
    assert!(f.message.contains("out"), "{}", f.message);
    assert!(f.message.contains("no bound"), "{}", f.message);

    // Clean: the same loop exits on a bound *derived from* a sized
    // input (`let n = items.len()`), recognized through the bound-locals
    // analysis even though the guard itself only names `n`.
    let clean = workspace(&[(
        "crates/core/src/annotate.rs",
        "pub fn annotate_feed(feed: &Feed, items: &[String]) -> Vec<String> {\n\
         \x20   let n = items.len();\n\
         \x20   let mut out = Vec::new();\n\
         \x20   let mut i = 0;\n\
         \x20   loop {\n\
         \x20       if i >= n {\n\
         \x20           break;\n\
         \x20       }\n\
         \x20       out.push(feed.next_chunk());\n\
         \x20       i += 1;\n\
         \x20   }\n\
         \x20   out\n\
         }\n",
    )]);
    let findings = retention_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w1_unsynchronized_worker_mutation_fires_and_locked_access_does_not() {
    // Violating: a worker pool (spawn inside a loop) where every worker
    // pushes into the same captured Vec with no lock in sight.
    let bad = workspace(&[(
        "crates/crawler/src/pool.rs",
        "pub fn crawl_all(urls: &[String], results: &mut Vec<String>) {\n\
         \x20   for _w in 0..4 {\n\
         \x20       scope.spawn(move || {\n\
         \x20           results.push(fetch_next(urls));\n\
         \x20       });\n\
         \x20   }\n\
         }\n",
    )]);
    let findings = sharing_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("W1", aipan_lint::Severity::Deny));
    assert_eq!(f.line, 4);
    assert!(f.message.contains("results"), "{}", f.message);
    assert!(f.message.contains("push"), "{}", f.message);

    // Clean: the same pool routed through a Mutex — access via a
    // recognized sync method is the sanctioned path. (The spawn loop
    // iterates a worker count, so the per-worker acquisition is not
    // corpus-scale either.)
    let clean = workspace(&[(
        "crates/crawler/src/pool.rs",
        "pub fn crawl_all(urls: &[String], workers: usize, results: &Mutex<Vec<String>>) {\n\
         \x20   for _w in 0..workers {\n\
         \x20       scope.spawn(move || {\n\
         \x20           results.lock().push(fetch_next(urls));\n\
         \x20       });\n\
         \x20   }\n\
         }\n",
    )]);
    let findings = sharing_findings(&clean);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn w2_lock_in_corpus_loop_fires_and_hoisted_or_worker_loop_does_not() {
    let decl = "pub struct Stats { totals: Mutex<Vec<String>> }\n";
    // Violating: the lock is taken once per corpus item and the held
    // region allocates (clone + grow) while other workers wait.
    let bad = workspace(&[(
        "crates/core/src/annotate.rs",
        &format!(
            "{decl}impl Stats {{\n\
             \x20   pub fn annotate_tally(&self, docs: &[String]) {{\n\
             \x20       for d in docs {{\n\
             \x20           let mut g = self.totals.lock();\n\
             \x20           g.push(d.clone());\n\
             \x20       }}\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = sharing_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("W2", aipan_lint::Severity::Warn));
    assert_eq!(f.line, 5);
    assert!(f.message.contains("totals"), "{}", f.message);
    assert!(f.message.contains("--contention"), "{}", f.message);

    // Clean: the lock hoisted out of the corpus loop (depth 0).
    let hoisted = workspace(&[(
        "crates/core/src/annotate.rs",
        &format!(
            "{decl}impl Stats {{\n\
             \x20   pub fn annotate_tally(&self, docs: &[String]) {{\n\
             \x20       let mut g = self.totals.lock();\n\
             \x20       for d in docs {{\n\
             \x20           g.push(d.clone());\n\
             \x20       }}\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = sharing_findings(&hoisted);
    assert!(findings.is_empty(), "{findings:?}");

    // Clean: the same acquisition inside a *worker-count* loop — spawning
    // N workers locks N times, not 30k times, so it is not corpus-scale.
    let worker_loop = workspace(&[(
        "crates/core/src/annotate.rs",
        &format!(
            "{decl}impl Stats {{\n\
             \x20   pub fn annotate_spawn(&self, workers: usize, name: &String) {{\n\
             \x20       for _w in 0..workers {{\n\
             \x20           let mut g = self.totals.lock();\n\
             \x20           g.push(name.clone());\n\
             \x20       }}\n\
             \x20   }}\n\
             }}\n"
        ),
    )]);
    let findings = sharing_findings(&worker_loop);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Type- and effect-aware rules (N1 / N2 / A1 / F1): violating and clean
// fixture pairs, exercised through the same workspace + call-graph + cost
// + type-index surface `scan::run` wires up.
// ---------------------------------------------------------------------------

use aipan_lint::cost::CostModel;
use aipan_lint::effects::EffectModel;
use aipan_lint::types::TypeIndex;
use aipan_lint::{atomics, effects, numeric};

/// All findings from the layer-3 typed rules, in driver order.
fn typed_findings(ws: &Workspace) -> Vec<aipan_lint::Finding> {
    let graph = CallGraph::build(ws);
    let model = CostModel::build(ws, &graph);
    let index = TypeIndex::build(ws);
    let effect_model = EffectModel::build(ws, &graph);
    let mut out = numeric::check_numeric(ws, &graph, &model, &index);
    out.extend(atomics::check_atomics(ws, &graph, &index));
    out.extend(effects::check_effects(ws, &graph, &model, &effect_model));
    out
}

#[test]
fn n1_corpus_scale_narrowing_denies_and_bounded_narrowing_does_not() {
    // Violating: a `.len()`-seeded corpus-scale count squeezed into u32.
    let bad = workspace(&[(
        "crates/analysis/src/lib.rs",
        "pub fn doc_total(policies: &[String]) -> u32 {\n\
         \x20   let policy_count = policies.len();\n\
         \x20   policy_count as u32\n\
         }\n",
    )]);
    let findings = typed_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("N1", aipan_lint::Severity::Deny));
    assert_eq!(f.line, 3);
    assert!(f.fix.is_none(), "lossy narrowing must not be auto-fixed");

    // Clean: the same cast on a non-scale operand (small closed domain).
    let clean = workspace(&[(
        "crates/analysis/src/lib.rs",
        "pub fn mask(flags: u64) -> u32 { flags as u32 }\n",
    )]);
    assert!(
        typed_findings(&clean).is_empty(),
        "{:?}",
        typed_findings(&clean)
    );
}

#[test]
fn n1_provable_widening_warns_with_an_applicable_from_rewrite() {
    let src = "pub fn grand_total(byte_count: u32) -> u64 {\n\
               \x20   byte_count as u64\n\
               }\n";
    let ws = workspace(&[("crates/analysis/src/lib.rs", src)]);
    let findings = typed_findings(&ws);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("N1", aipan_lint::Severity::Warn));
    let fix = f.fix.as_ref().expect("widening carries a From rewrite");
    let fixed = aipan_lint::fix::apply_edits(src, &fix.edits);
    assert!(fixed.contains("u64::from(byte_count)"), "{fixed}");
    assert!(!fixed.contains(" as u64"), "{fixed}");

    // Clean: usize -> u64 has no std `From` impl; stays silent rather
    // than suggesting a rewrite that would not compile.
    let no_impl = workspace(&[(
        "crates/analysis/src/lib.rs",
        "pub fn grand_total(xs: &[u8]) -> u64 {\n\
         \x20   let byte_count = xs.len();\n\
         \x20   byte_count as u64\n\
         }\n",
    )]);
    assert!(
        typed_findings(&no_impl).is_empty(),
        "{:?}",
        typed_findings(&no_impl)
    );
}

#[test]
fn n2_unchecked_counter_in_hot_fn_warns_and_saturating_is_clean() {
    let decl = "pub struct Tally { pub rows_total: u64 }\n";
    let bad = workspace(&[(
        "crates/core/src/lib.rs",
        &format!(
            "{decl}fn bump(t: &mut Tally) {{ t.rows_total += 1; }}\n\
             pub fn run_pipeline(t: &mut Tally, domains: &[String]) {{\n\
             \x20   for _d in domains {{ bump(t); }}\n\
             }}\n"
        ),
    )]);
    let findings = typed_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("N2", aipan_lint::Severity::Warn));
    assert!(f.message.contains("saturating_add"), "{}", f.message);

    // Clean: the saturating rewrite the rule suggests, same call shape.
    let clean = workspace(&[(
        "crates/core/src/lib.rs",
        &format!(
            "{decl}fn bump(t: &mut Tally) {{\n\
             \x20   t.rows_total = t.rows_total.saturating_add(1);\n\
             }}\n\
             pub fn run_pipeline(t: &mut Tally, domains: &[String]) {{\n\
             \x20   for _d in domains {{ bump(t); }}\n\
             }}\n"
        ),
    )]);
    assert!(
        typed_findings(&clean).is_empty(),
        "{:?}",
        typed_findings(&clean)
    );
}

#[test]
fn a1_load_store_and_mixed_orderings_deny_and_rmw_is_clean() {
    // Violating: read-modify-write split across load + store loses updates.
    let bad = workspace(&[(
        "crates/core/src/stats.rs",
        "pub struct Stats { calls: AtomicU64 }\n\
         impl Stats {\n\
         \x20   pub fn bump(&self) {\n\
         \x20       let v = self.calls.load(Ordering::Relaxed);\n\
         \x20       self.calls.store(v + 1, Ordering::Relaxed);\n\
         \x20   }\n\
         }\n",
    )]);
    let findings = typed_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("A1", aipan_lint::Severity::Deny));
    assert_eq!(f.line, 5, "anchored at the racy store");

    // Violating: the same field accessed with mixed orderings across fns.
    let mixed = workspace(&[(
        "crates/core/src/stats.rs",
        "pub struct Stats { calls: AtomicU64 }\n\
         impl Stats {\n\
         \x20   pub fn bump(&self) { self.calls.fetch_add(1, Ordering::Relaxed); }\n\
         \x20   pub fn read(&self) -> u64 { self.calls.load(Ordering::SeqCst) }\n\
         }\n",
    )]);
    let findings = typed_findings(&mixed);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "A1");
    assert!(
        findings[0].message.contains("mixed"),
        "{}",
        findings[0].message
    );

    // Clean: single-call RMW under one ordering everywhere.
    let clean = workspace(&[(
        "crates/core/src/stats.rs",
        "pub struct Stats { calls: AtomicU64 }\n\
         impl Stats {\n\
         \x20   pub fn bump(&self) { self.calls.fetch_add(1, Ordering::Relaxed); }\n\
         \x20   pub fn read(&self) -> u64 { self.calls.load(Ordering::Relaxed) }\n\
         }\n",
    )]);
    assert!(
        typed_findings(&clean).is_empty(),
        "{:?}",
        typed_findings(&clean)
    );
}

#[test]
fn f1_fs_io_in_hot_loop_warns_and_journal_layer_is_sanctioned() {
    // Violating: per-document fs write inside the corpus loop, via a helper.
    let bad = workspace(&[(
        "crates/core/src/pipeline.rs",
        "pub fn run_pipeline(domains: &[String]) {\n\
         \x20   for d in domains {\n\
         \x20       persist(d);\n\
         \x20   }\n\
         }\n\
         fn persist(d: &str) { std::fs::write(d, \"x\").ok(); }\n",
    )]);
    let findings = typed_findings(&bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!((f.rule, f.severity), ("F1", aipan_lint::Severity::Warn));
    assert!(f.message.contains("run_pipeline"), "{}", f.message);

    // Clean: the same write routed through the journal layer, whose
    // batched/buffered I/O is the sanctioned path.
    let clean = workspace(&[
        (
            "crates/core/src/pipeline.rs",
            "use crate::journal::append_record;\n\
             pub fn run_pipeline(domains: &[String]) {\n\
             \x20   for d in domains {\n\
             \x20       append_record(d);\n\
             \x20   }\n\
             }\n",
        ),
        (
            "crates/core/src/journal.rs",
            "pub fn append_record(d: &str) { std::fs::write(d, \"x\").ok(); }\n",
        ),
    ]);
    assert!(
        typed_findings(&clean).is_empty(),
        "{:?}",
        typed_findings(&clean)
    );
}
