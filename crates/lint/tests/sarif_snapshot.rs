//! Snapshot of the `--format sarif` surface. SARIF 2.1.0 is consumed by
//! code-scanning UIs (GitHub code scanning, VS Code SARIF viewers), so
//! member names, sorted member order, level spelling, and region
//! placement are a compatibility contract just like the JSON report.

use aipan_lint::findings::{Finding, Severity};
use aipan_lint::report;
use aipan_lint::scan::Report;

fn sample_report() -> Report {
    Report {
        findings: vec![
            Finding::at(
                "N1",
                Severity::Deny,
                "crates/core/src/lib.rs",
                3,
                8,
                "narrowing truncates corpus-scale count".to_string(),
                "n as u32".to_string(),
            ),
            Finding::for_data(
                "T2",
                "crates/taxonomy/src/rights.rs",
                "duplicate canonical name".to_string(),
                String::new(),
            ),
        ],
        suppressed: Vec::new(),
        files_scanned: 2,
    }
}

#[test]
fn sarif_results_match_snapshot_byte_for_byte() {
    let rendered = report::sarif(&sample_report());

    // The results block, byte for byte: physical locations for line
    // findings, no region for line-0 data findings.
    const RESULTS: &str = r#"      "results": [
        {
          "level": "error",
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "crates/core/src/lib.rs"
                },
                "region": {
                  "startColumn": 8,
                  "startLine": 3
                }
              }
            }
          ],
          "message": {
            "text": "narrowing truncates corpus-scale count"
          },
          "ruleId": "N1"
        },
        {
          "level": "error",
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "crates/taxonomy/src/rights.rs"
                }
              }
            }
          ],
          "message": {
            "text": "duplicate canonical name"
          },
          "ruleId": "T2"
        }
      ],"#;
    assert!(
        rendered.contains(RESULTS),
        "the SARIF results schema changed; update the snapshot and every consumer\n{rendered}"
    );
}

#[test]
fn sarif_envelope_and_driver_are_stable() {
    let rendered = report::sarif(&sample_report());
    // Envelope: schema pointer, version, a single run.
    assert!(
        rendered
            .starts_with("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","),
        "{rendered}"
    );
    assert!(rendered.contains("\"version\": \"2.1.0\""), "{rendered}");
    assert!(rendered.contains("\"name\": \"aipan-lint\""), "{rendered}");

    // The driver carries the full rule catalog, in catalog order, so a
    // viewer can resolve any ruleId without a second lookup.
    let ids: Vec<&str> = rendered
        .lines()
        .filter_map(|l| l.trim().strip_prefix("\"id\": \""))
        .filter_map(|l| l.trim_end_matches(',').strip_suffix('"'))
        .collect();
    assert_eq!(ids.len(), aipan_lint::catalog::RULES.len(), "{ids:?}");
    for rule in aipan_lint::catalog::RULES {
        assert!(ids.contains(&rule.id), "driver missing rule {}", rule.id);
    }

    // Rendering is a pure function of the report: byte-identical reruns.
    assert_eq!(rendered, report::sarif(&sample_report()));
}
