//! Property tests for the local type inference in `types.rs`: the
//! per-fn analysis is a forward dataflow whose facts at the exit node
//! must depend only on what each binding's initializer proves, never on
//! statement order. Reordering independent `let` statements (none
//! references another's binding) is therefore fact-preserving — the
//! stability the `N1`/`N2` rules rely on when `--fix` rewrites move
//! code around.

use aipan_lint::graph::Workspace;
use aipan_lint::parser::{parse_file, ItemKind};
use aipan_lint::types::{exit_types, TyFact, TypeIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Initializers that exercise every inference source — suffixed and
/// unsuffixed literals, `.len()` scale seeding, an index-resolved free
/// fn, and a cast — without referencing any other generated binding.
const INITS: &[&str] = &[
    "7u64",
    "3u32",
    "1.5",
    "true",
    "0",
    "xs.len()",
    "read()",
    "9u64 as u16",
    "xs.len() * 2",
];

/// Distinct binding names (disjoint from everything in `INITS`).
const NAMES: &[&str] = &["a", "b", "c", "d", "e", "g", "h", "k"];

/// Exit-node type facts of a generated `fn f` holding `stmts` in order.
fn exit_of(stmts: &[String]) -> BTreeMap<String, TyFact> {
    let body = stmts.join("\n    ");
    let src = format!("fn read() -> u32 {{ 4 }}\nfn f(xs: &[u8]) {{\n    {body}\n}}\n");
    let ws = Workspace::build(&[("crates/x/src/gen.rs".to_string(), src.clone())]);
    let index = TypeIndex::build(&ws);
    let parsed = parse_file("crates/x/src/gen.rs", &src);
    let info = parsed
        .items
        .iter()
        .find_map(|item| match &item.kind {
            ItemKind::Fn(info) if item.name == "f" => Some(info),
            _ => None,
        })
        .expect("generated source parses to fn f");
    exit_types(&index, None, info)
}

// Any rotation or reversal of independent bindings leaves the exit
// facts identical: inference is order-free when dataflow is.
proptest! {
    #[test]
    fn reordering_independent_lets_keeps_exit_types(
        picks in proptest::collection::vec(0usize..INITS.len(), 1..8),
        rot in 0usize..8,
    ) {
        let stmts: Vec<String> = picks
            .iter()
            .enumerate()
            .map(|(i, &j)| format!("let {} = {};", NAMES[i], INITS[j]))
            .collect();
        let base = exit_of(&stmts);
        // Params ride along in the exit fact; every generated binding
        // must have its own entry besides them.
        for name in &NAMES[..stmts.len()] {
            prop_assert!(base.contains_key(*name), "missing fact for `{}`", name);
        }

        let mut rotated = stmts.clone();
        let n = rotated.len();
        rotated.rotate_left(rot % n);
        prop_assert_eq!(exit_of(&rotated), base.clone());

        let mut reversed = stmts;
        reversed.reverse();
        prop_assert_eq!(exit_of(&reversed), base);
    }
}
