//! Tier-1 gate: the workspace's own sources must be lint-clean.
//!
//! Equivalent to `cargo run -p aipan-lint -- --deny-warnings` exiting 0:
//! every finding — deny *or* warn — must be fixed or carry a justified
//! `lint.allow` entry. This runs under plain `cargo test`, so the
//! determinism contract is enforced by the same command that runs the rest
//! of tier 1.

use aipan_lint::allow::Allowlist;
use aipan_lint::scan;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    scan::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

#[test]
fn workspace_sources_are_lint_clean() {
    let root = workspace_root();
    let allow_path = root.join("lint.allow");
    let allowlist = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path).expect("readable lint.allow");
        Allowlist::parse(&text).expect("well-formed lint.allow")
    } else {
        Allowlist::default()
    };

    let report = scan::run(&root, allowlist).expect("scan the workspace");
    assert!(
        report.files_scanned > 30,
        "expected the full workspace, scanned {}",
        report.files_scanned
    );

    if !report.findings.is_empty() {
        let mut msg = String::new();
        for f in &report.findings {
            msg.push_str(&format!(
                "\n  {}:{}:{} [{} {}] {}",
                f.file,
                f.line,
                f.col,
                f.severity.name(),
                f.rule,
                f.message
            ));
        }
        panic!(
            "workspace has {} non-allowlisted lint finding(s) (fix them or add a justified \
             entry to lint.allow):{msg}",
            report.findings.len()
        );
    }
}

#[test]
fn taxonomy_invariants_hold() {
    let findings = aipan_lint::invariants::check_all();
    assert!(
        findings.is_empty(),
        "taxonomy data-invariant violations: {findings:#?}"
    );
}
