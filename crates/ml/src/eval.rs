//! Evaluation: accuracy, per-class precision/recall/F1, and student-teacher
//! agreement.

use crate::features::Featurizer;
use crate::nb::NaiveBayes;
use crate::train::LabeledLine;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-class metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ClassMetrics {
    /// Precision (1.0 when no predictions were made).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when the class never occurs).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluation report over a test set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Test examples evaluated.
    pub examples: usize,
    /// Correct predictions.
    pub correct: usize,
    /// Per-class metrics, sorted by class name.
    pub per_class: Vec<(String, ClassMetrics)>,
}

impl EvalReport {
    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.examples == 0 {
            0.0
        } else {
            self.correct as f64 / self.examples as f64
        }
    }

    /// Macro-averaged F1 across classes.
    pub fn macro_f1(&self) -> f64 {
        if self.per_class.is_empty() {
            return 0.0;
        }
        self.per_class.iter().map(|(_, m)| m.f1()).sum::<f64>() / self.per_class.len() as f64
    }

    /// Render a compact table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "accuracy {:.1}% over {} examples, macro-F1 {:.3}",
            self.accuracy() * 100.0,
            self.examples,
            self.macro_f1()
        );
        let _ = writeln!(
            out,
            "  {:<22} {:>6} {:>8} {:>8} {:>8}",
            "class", "n", "prec", "recall", "F1"
        );
        for (label, m) in &self.per_class {
            let _ = writeln!(
                out,
                "  {:<22} {:>6} {:>7.1}% {:>7.1}% {:>8.3}",
                label,
                m.tp + m.fn_,
                m.precision() * 100.0,
                m.recall() * 100.0,
                m.f1()
            );
        }
        out
    }
}

/// Evaluate a trained model against labeled examples.
pub fn evaluate(model: &NaiveBayes, featurizer: &Featurizer, test: &[&LabeledLine]) -> EvalReport {
    let mut correct = 0usize;
    let mut per_class: BTreeMap<String, ClassMetrics> = BTreeMap::new();
    for example in test {
        let predicted = model
            .predict(&featurizer.featurize(&example.text))
            .unwrap_or("none")
            .to_string();
        if predicted == example.label {
            correct += 1;
            per_class.entry(predicted).or_default().tp += 1;
        } else {
            per_class.entry(predicted).or_default().fp += 1;
            per_class.entry(example.label.clone()).or_default().fn_ += 1;
        }
    }
    let mut per_class: Vec<(String, ClassMetrics)> = per_class.into_iter().collect();
    per_class.sort_by(|a, b| a.0.cmp(&b.0));
    EvalReport {
        examples: test.len(),
        correct,
        per_class,
    }
}

/// Train a naive-Bayes student on `train` examples.
pub fn train_student(featurizer: &Featurizer, train: &[&LabeledLine]) -> NaiveBayes {
    let mut model = NaiveBayes::new(featurizer.dimensions);
    for example in train {
        model.observe(&example.label, &featurizer.featurize(&example.text));
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(text: &str, label: &str) -> LabeledLine {
        LabeledLine {
            text: text.into(),
            label: label.into(),
            domain: "d.com".into(),
        }
    }

    #[test]
    fn perfect_classifier_metrics() {
        let f = Featurizer::small();
        let train_set = [
            line("we retain data for years", "handling"),
            line("records retained as necessary", "handling"),
            line("opt out by clicking the link", "rights"),
            line("delete your account", "rights"),
        ];
        let refs: Vec<&LabeledLine> = train_set.iter().collect();
        let model = train_student(&f, &refs);
        let report = evaluate(&model, &f, &refs);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.macro_f1(), 1.0);
        assert!(report.render().contains("100.0%"));
    }

    #[test]
    fn metrics_count_errors() {
        let m = ClassMetrics {
            tp: 8,
            fp: 2,
            fn_: 2,
        };
        assert!((m.precision() - 0.8).abs() < 1e-9);
        assert!((m.recall() - 0.8).abs() < 1e-9);
        assert!((m.f1() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_test_set() {
        let f = Featurizer::small();
        let model = NaiveBayes::new(f.dimensions);
        let report = evaluate(&model, &f, &[]);
        assert_eq!(report.accuracy(), 0.0);
        assert_eq!(report.examples, 0);
    }

    #[test]
    fn degenerate_class_metrics() {
        let m = ClassMetrics::default();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }
}
