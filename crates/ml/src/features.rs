//! Sparse bag-of-words features via feature hashing.
//!
//! Unigrams and bigrams of lower-cased alphanumeric tokens are hashed into
//! a fixed-size feature space (the "hashing trick"), so no vocabulary needs
//! to be stored or synchronized between training and inference.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse feature vector: feature index → count. Ordered so that
/// accumulating floats from it is reproducible across processes.
pub type FeatureVector = BTreeMap<u32, f64>;

/// Configurable featurizer: hashed unigrams + bigrams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Featurizer {
    /// Feature-space size (number of hash buckets).
    pub dimensions: u32,
    /// Whether to include bigram features.
    pub bigrams: bool,
}

impl Default for Featurizer {
    fn default() -> Self {
        Featurizer {
            dimensions: 1 << 18,
            bigrams: true,
        }
    }
}

impl Featurizer {
    /// A smaller feature space (for tests and quick experiments).
    pub fn small() -> Featurizer {
        Featurizer {
            dimensions: 1 << 12,
            bigrams: true,
        }
    }

    /// Featurize one line of text.
    pub fn featurize(&self, text: &str) -> FeatureVector {
        let tokens = tokenize(text);
        let mut features = FeatureVector::new();
        for token in &tokens {
            *features.entry(self.bucket(token, "u")).or_insert(0.0) += 1.0;
        }
        if self.bigrams {
            for pair in tokens.windows(2) {
                let bigram = format!("{} {}", pair[0], pair[1]);
                *features.entry(self.bucket(&bigram, "b")).or_insert(0.0) += 1.0;
            }
        }
        features
    }

    fn bucket(&self, token: &str, salt: &str) -> u32 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        salt.hash(&mut h);
        token.hash(&mut h);
        (h.finish() % (self.dimensions as u64).max(1)) as u32
    }
}

/// Lower-cased alphanumeric tokens (hyphen/apostrophe kept inside words).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '-' || ch == '\'' {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basics() {
        assert_eq!(
            tokenize("We RETAIN your data!"),
            vec!["we", "retain", "your", "data"]
        );
        assert_eq!(tokenize("opt-out, don't"), vec!["opt-out", "don't"]);
        assert!(tokenize("  !!!  ").is_empty());
    }

    #[test]
    fn featurize_counts_repeats() {
        let f = Featurizer::small();
        let v = f.featurize("data data data");
        let unigram_count: f64 = v.values().sum();
        // 3 unigrams + 2 bigrams (identical, same bucket).
        assert_eq!(unigram_count, 5.0);
    }

    #[test]
    fn featurize_is_deterministic() {
        let f = Featurizer::default();
        assert_eq!(
            f.featurize("retain your data"),
            f.featurize("retain your data")
        );
    }

    #[test]
    fn different_texts_differ() {
        let f = Featurizer::default();
        assert_ne!(
            f.featurize("opt out via link"),
            f.featurize("delete your account")
        );
    }

    #[test]
    fn buckets_in_range() {
        let f = Featurizer::small();
        for (k, _) in f.featurize("some words to hash into buckets here") {
            assert!(k < f.dimensions);
        }
    }

    #[test]
    fn unigram_only_mode() {
        let uni = Featurizer {
            dimensions: 1 << 12,
            bigrams: false,
        };
        let v = uni.featurize("alpha beta gamma");
        let total: f64 = v.values().sum();
        assert_eq!(total, 3.0);
    }
}
