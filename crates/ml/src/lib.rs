//! # aipan-ml
//!
//! Offline machine-learning models distilled from the chatbot's annotations
//! — the paper's stated future work ("training offline LLMs to replicate
//! the chatbot-generated annotations is another important aspect of our
//! future work", §6) and the approach of the pre-LLM related work the paper
//! cites (Privee's classifiers, MAPS, Polisis).
//!
//! The crate implements the classical counterpart of that plan:
//!
//! * [`features`] — text → sparse bag-of-words features via feature hashing
//!   (unigrams + bigrams), no external dependencies.
//! * [`nb`] — a multinomial naive-Bayes classifier with Laplace smoothing,
//!   serializable, suitable for the line-level labeling tasks.
//! * [`train`] — builds line-level training corpora from a pipeline run:
//!   the chatbot is the *teacher* (its annotations label the lines), the
//!   naive-Bayes model is the *student*.
//! * [`eval`] — train/test splits, accuracy / per-class precision-recall-F1,
//!   and teacher-vs-student agreement reports.
//!
//! The `distillation` example trains a student on half the corpus and
//! evaluates on the held-out half, reproducing the measurement a real
//! deployment would run before swapping the expensive chatbot for a local
//! model on easy tasks (segmentation; handling/rights labeling).

#![warn(missing_docs)]

pub mod eval;
pub mod features;
pub mod nb;
pub mod train;

pub use eval::{ClassMetrics, EvalReport};
pub use features::{FeatureVector, Featurizer};
pub use nb::NaiveBayes;
pub use train::{build_aspect_corpus, build_rights_corpus, LabeledLine};
