//! Multinomial naive Bayes with Laplace smoothing over hashed features.

use crate::features::FeatureVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A trained multinomial naive-Bayes classifier over string class labels.
///
/// ```
/// use aipan_ml::{Featurizer, NaiveBayes};
///
/// let f = Featurizer::small();
/// let mut nb = NaiveBayes::new(f.dimensions);
/// nb.observe("handling", &f.featurize("we retain records for two years"));
/// nb.observe("rights", &f.featurize("you may opt out or delete your account"));
/// assert_eq!(nb.predict(&f.featurize("data is retained briefly")), Some("handling"));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    /// Laplace smoothing constant.
    pub alpha: f64,
    /// Feature-space size (must match the featurizer).
    pub dimensions: u32,
    classes: Vec<ClassState>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClassState {
    label: String,
    document_count: u64,
    total_feature_mass: f64,
    feature_mass: BTreeMap<u32, f64>,
}

impl NaiveBayes {
    /// New untrained model.
    pub fn new(dimensions: u32) -> NaiveBayes {
        NaiveBayes {
            alpha: 1.0,
            dimensions,
            classes: Vec::new(),
        }
    }

    /// Add one training example.
    pub fn observe(&mut self, label: &str, features: &FeatureVector) {
        let idx = match self.classes.iter().position(|c| c.label == label) {
            Some(i) => i,
            None => {
                self.classes.push(ClassState {
                    label: label.to_string(),
                    document_count: 0,
                    total_feature_mass: 0.0,
                    feature_mass: BTreeMap::new(),
                });
                self.classes.len() - 1
            }
        };
        let Some(class) = self.classes.get_mut(idx) else {
            return;
        };
        class.document_count += 1;
        for (&f, &v) in features {
            class.total_feature_mass += v;
            *class.feature_mass.entry(f).or_insert(0.0) += v;
        }
    }

    /// Number of classes seen.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Class labels, in first-seen order.
    pub fn labels(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.label.as_str()).collect()
    }

    /// Log-posterior (unnormalized) for each class.
    pub fn log_scores(&self, features: &FeatureVector) -> Vec<(&str, f64)> {
        let total_docs: u64 = self.classes.iter().map(|c| c.document_count).sum();
        self.classes
            .iter()
            .map(|class| {
                let prior = (class.document_count as f64 + self.alpha)
                    / (total_docs as f64 + self.alpha * self.classes.len() as f64);
                let mut score = prior.ln();
                let denom = class.total_feature_mass + self.alpha * self.dimensions as f64;
                for (&f, &v) in features {
                    let mass = class.feature_mass.get(&f).copied().unwrap_or(0.0);
                    score += v * ((mass + self.alpha) / denom).ln();
                }
                (class.label.as_str(), score)
            })
            .collect()
    }

    /// Most likely class, or `None` if untrained.
    pub fn predict(&self, features: &FeatureVector) -> Option<&str> {
        self.log_scores(features)
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(label, _)| label)
    }

    /// Posterior probabilities (softmax of log scores).
    pub fn predict_proba(&self, features: &FeatureVector) -> Vec<(String, f64)> {
        let scores = self.log_scores(features);
        if scores.is_empty() {
            return Vec::new();
        }
        let max = scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|(_, s)| (s - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        scores
            .iter()
            .zip(exps)
            .map(|((label, _), e)| (label.to_string(), e / total))
            .collect()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<NaiveBayes> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Featurizer;

    fn train_toy() -> (NaiveBayes, Featurizer) {
        let f = Featurizer::small();
        let mut nb = NaiveBayes::new(f.dimensions);
        for text in [
            "we retain your data for two years",
            "records are retained as long as necessary",
            "retention periods are limited",
        ] {
            nb.observe("handling", &f.featurize(text));
        }
        for text in [
            "you may opt out by clicking the link",
            "you can delete your account",
            "update or correct your information",
        ] {
            nb.observe("rights", &f.featurize(text));
        }
        (nb, f)
    }

    #[test]
    fn learns_separable_classes() {
        let (nb, f) = train_toy();
        assert_eq!(nb.class_count(), 2);
        assert_eq!(
            nb.predict(&f.featurize("data is retained for five years")),
            Some("handling")
        );
        assert_eq!(
            nb.predict(&f.featurize("opt out or delete your account")),
            Some("rights")
        );
    }

    #[test]
    fn untrained_predicts_none() {
        let nb = NaiveBayes::new(4096);
        assert_eq!(nb.predict(&FeatureVector::new()), None);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (nb, f) = train_toy();
        let probs = nb.predict_proba(&f.featurize("retain records"));
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn empty_features_fall_back_to_prior() {
        let f = Featurizer::small();
        let mut nb = NaiveBayes::new(f.dimensions);
        // 3:1 prior for "a".
        for _ in 0..3 {
            nb.observe("a", &f.featurize("x"));
        }
        nb.observe("b", &f.featurize("y"));
        assert_eq!(nb.predict(&FeatureVector::new()), Some("a"));
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let (nb, f) = train_toy();
        let back = NaiveBayes::from_json(&nb.to_json().unwrap()).unwrap();
        let probe = f.featurize("we retain information");
        assert_eq!(nb.predict(&probe), back.predict(&probe));
    }

    #[test]
    fn labels_in_first_seen_order() {
        let (nb, _) = train_toy();
        assert_eq!(nb.labels(), vec!["handling", "rights"]);
    }
}
