//! Building distillation corpora: the chatbot labels policy lines (teacher),
//! producing training data for offline student models.

use aipan_chatbot::prompt::{TaskKind, TaskPrompt};
use aipan_chatbot::{protocol, Chatbot};
use aipan_webgen::policy::render_policy;
use aipan_webgen::{CompanyFate, World};
use serde::{Deserialize, Serialize};

/// One training example: a policy line and its teacher-assigned label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledLine {
    /// The line's text.
    pub text: String,
    /// Teacher label (aspect key, rights label name, or "none").
    pub label: String,
    /// Source domain (for leakage-free train/test splits by company).
    pub domain: String,
}

/// Render the extracted text lines of every Normal-fate policy in the world
/// (sorted by domain, capped at `limit` policies).
fn policy_lines(world: &World, limit: usize) -> Vec<(String, Vec<String>)> {
    let mut domains: Vec<&String> = world
        .fates
        .iter()
        .filter(|(_, f)| **f == CompanyFate::Normal)
        .map(|(d, _)| d)
        .collect();
    domains.sort();
    domains.truncate(limit);
    domains
        .into_iter()
        .filter_map(|domain| {
            let truth = world.truth(domain)?;
            let style = world.styles.get(domain)?;
            let name = &world.company(domain)?.name;
            let html = render_policy(truth, style, name, world.config.seed);
            let doc = aipan_html::extract(&html);
            let lines = doc.lines.into_iter().map(|l| l.text).collect();
            Some((domain.clone(), lines))
        })
        .collect()
}

/// Build a line → aspect corpus: the teacher is the chatbot's whole-text
/// segmentation task. Lines with multiple labels contribute their first.
pub fn build_aspect_corpus(world: &World, teacher: &dyn Chatbot, limit: usize) -> Vec<LabeledLine> {
    let prompt = TaskPrompt::build(TaskKind::SegmentText);
    let mut corpus = Vec::new();
    for (domain, lines) in policy_lines(world, limit) {
        let input = protocol::number_lines(lines.iter().map(String::as_str));
        let labels = protocol::parse_labels(&teacher.complete(&prompt, &input));
        for (n, aspects) in labels {
            let Some(text) = lines.get(n - 1) else {
                continue;
            };
            let Some(aspect) = aspects.first() else {
                continue;
            };
            corpus.push(LabeledLine {
                text: text.clone(),
                label: aspect.key().to_string(),
                domain: domain.clone(),
            });
        }
    }
    corpus
}

/// Build a line → rights-label corpus: the teacher is the chatbot's rights
/// annotation task; unlabeled lines become the `"none"` class.
pub fn build_rights_corpus(world: &World, teacher: &dyn Chatbot, limit: usize) -> Vec<LabeledLine> {
    let prompt = TaskPrompt::build(TaskKind::AnnotateRights);
    let mut corpus = Vec::new();
    for (domain, lines) in policy_lines(world, limit) {
        let input = protocol::number_lines(lines.iter().map(String::as_str));
        let rows = protocol::parse_rights(&teacher.complete(&prompt, &input));
        let mut labels: Vec<Option<String>> = vec![None; lines.len()];
        for (n, _, label) in rows {
            if n >= 1 && n <= lines.len() {
                labels[n - 1].get_or_insert(label);
            }
        }
        for (text, label) in lines.into_iter().zip(labels) {
            corpus.push(LabeledLine {
                text,
                label: label.unwrap_or_else(|| "none".to_string()),
                domain: domain.clone(),
            });
        }
    }
    corpus
}

/// Split a corpus into train/test by *domain* hash (no company appears in
/// both halves — the leakage-free split a real study needs).
pub fn split_by_domain(corpus: &[LabeledLine]) -> (Vec<&LabeledLine>, Vec<&LabeledLine>) {
    use std::hash::{Hash, Hasher};
    let mut train = Vec::new();
    let mut test = Vec::new();
    for example in corpus {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        example.domain.hash(&mut h);
        if h.finish().is_multiple_of(2) {
            train.push(example);
        } else {
            test.push(example);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_chatbot::{ModelProfile, SimulatedChatbot};
    use aipan_webgen::{build_world, WorldConfig};
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| build_world(WorldConfig::small(3, 120)))
    }

    #[test]
    fn aspect_corpus_covers_core_aspects() {
        let teacher = SimulatedChatbot::new(ModelProfile::oracle(), 3);
        let corpus = build_aspect_corpus(world(), &teacher, 30);
        assert!(corpus.len() > 300, "corpus too small: {}", corpus.len());
        for key in ["types", "purposes", "handling", "rights", "other"] {
            assert!(
                corpus.iter().any(|l| l.label == key),
                "no examples labeled {key}"
            );
        }
    }

    #[test]
    fn rights_corpus_has_none_majority_and_labels() {
        let teacher = SimulatedChatbot::new(ModelProfile::oracle(), 3);
        let corpus = build_rights_corpus(world(), &teacher, 30);
        let none = corpus.iter().filter(|l| l.label == "none").count();
        assert!(none * 2 > corpus.len(), "'none' should dominate");
        assert!(corpus.iter().any(|l| l.label != "none"));
    }

    #[test]
    fn split_is_by_domain_and_stable() {
        let teacher = SimulatedChatbot::new(ModelProfile::oracle(), 3);
        let corpus = build_aspect_corpus(world(), &teacher, 30);
        let (train, test) = split_by_domain(&corpus);
        assert!(!train.is_empty() && !test.is_empty());
        let train_domains: std::collections::HashSet<&str> =
            train.iter().map(|l| l.domain.as_str()).collect();
        for example in &test {
            assert!(
                !train_domains.contains(example.domain.as_str()),
                "domain {} leaked across split",
                example.domain
            );
        }
    }
}
