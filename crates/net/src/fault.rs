//! Deterministic fault injection for the simulated transport.
//!
//! Inspired by smoltcp's fault-injection knobs (`--drop-chance`, rate
//! limiting, etc.): every failure mode is an explicit, configurable
//! probability. Decisions are made by hashing `(seed, domain)` rather than
//! drawing from a stream, so a given domain experiences the same fate in
//! every run regardless of request ordering or thread interleaving.
//!
//! The fault classes mirror the crawl-failure audit of §4 of the paper:
//! crawler exceptions/timeouts, blocked crawls, and slow hosts.

use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Probabilities for each fault class, per domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a domain's server is unreachable (connection errors on
    /// every request).
    pub connect_failure: f64,
    /// Probability a domain times out on every request (hung server).
    pub timeout: f64,
    /// Probability a domain blocks crawlers (403 bot wall on every page).
    pub block_crawlers: f64,
    /// Base simulated latency in milliseconds.
    pub base_latency_ms: u64,
    /// Additional per-domain latency jitter bound in milliseconds.
    pub jitter_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // Calibrated to the §4 failure audit: of 2892 domains, ~11/50-sample
        // of 244+103 failures were crawler-related (exceptions/timeouts/
        // blocks) → roughly 2% of domains experience a hard crawl fault.
        FaultConfig {
            connect_failure: 0.008,
            timeout: 0.006,
            block_crawlers: 0.006,
            base_latency_ms: 120,
            jitter_ms: 400,
        }
    }
}

impl FaultConfig {
    /// No faults, zero latency — for unit tests and benches.
    pub fn none() -> FaultConfig {
        FaultConfig {
            connect_failure: 0.0,
            timeout: 0.0,
            block_crawlers: 0.0,
            base_latency_ms: 0,
            jitter_ms: 0,
        }
    }
}

/// The fate assigned to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Requests succeed normally.
    None,
    /// Connections fail.
    ConnectFailure,
    /// Requests hang until the client's timeout.
    Timeout,
    /// Server answers every request with a 403 bot wall.
    Blocked,
}

/// Deterministic per-domain fault oracle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    config: FaultConfig,
}

impl FaultInjector {
    /// Create an injector with the given seed and configuration.
    pub fn new(seed: u64, config: FaultConfig) -> FaultInjector {
        FaultInjector { seed, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fate of `domain`. Stable across calls, runs, and threads.
    pub fn fate(&self, domain: &str) -> FaultKind {
        let u = unit_hash(self.seed, domain, "fate");
        let c = &self.config;
        if u < c.connect_failure {
            FaultKind::ConnectFailure
        } else if u < c.connect_failure + c.timeout {
            FaultKind::Timeout
        } else if u < c.connect_failure + c.timeout + c.block_crawlers {
            FaultKind::Blocked
        } else {
            FaultKind::None
        }
    }

    /// Simulated latency for one request to `domain`/`path`, in
    /// milliseconds. Deterministic per (domain, path).
    pub fn latency_ms(&self, domain: &str, path: &str) -> u64 {
        let key = format!("{domain}{path}");
        let u = unit_hash(self.seed, &key, "latency");
        self.config.base_latency_ms + (u * self.config.jitter_ms as f64) as u64
    }
}

/// Hash `(seed, key, salt)` to a uniform float in [0, 1).
fn unit_hash(seed: u64, key: &str, salt: &str) -> f64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut hasher);
    key.hash(&mut hasher);
    salt.hash(&mut hasher);
    let h = hasher.finish();
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic() {
        let inj = FaultInjector::new(7, FaultConfig::default());
        for d in ["acme.com", "globex.com", "initech.com"] {
            assert_eq!(inj.fate(d), inj.fate(d));
        }
    }

    #[test]
    fn no_faults_config_is_all_none() {
        let inj = FaultInjector::new(1, FaultConfig::none());
        for i in 0..500 {
            assert_eq!(inj.fate(&format!("d{i}.com")), FaultKind::None);
        }
        assert_eq!(inj.latency_ms("d.com", "/"), 0);
    }

    #[test]
    fn fault_rates_approximate_config() {
        let cfg = FaultConfig {
            connect_failure: 0.10,
            timeout: 0.10,
            block_crawlers: 0.10,
            base_latency_ms: 0,
            jitter_ms: 0,
        };
        let inj = FaultInjector::new(42, cfg);
        let n = 20_000;
        let mut counts = [0usize; 4];
        for i in 0..n {
            let idx = match inj.fate(&format!("host{i}.com")) {
                FaultKind::None => 0,
                FaultKind::ConnectFailure => 1,
                FaultKind::Timeout => 2,
                FaultKind::Blocked => 3,
            };
            counts[idx] += 1;
        }
        for &c in &counts[1..] {
            let rate = c as f64 / n as f64;
            assert!((rate - 0.10).abs() < 0.01, "rate={rate}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(
            1,
            FaultConfig {
                connect_failure: 0.5,
                ..FaultConfig::none()
            },
        );
        let b = FaultInjector::new(
            2,
            FaultConfig {
                connect_failure: 0.5,
                ..FaultConfig::none()
            },
        );
        let diff = (0..200)
            .filter(|i| {
                let d = format!("x{i}.com");
                a.fate(&d) != b.fate(&d)
            })
            .count();
        assert!(
            diff > 20,
            "seeds should produce different fates, diff={diff}"
        );
    }

    #[test]
    fn latency_within_bounds_and_stable() {
        let cfg = FaultConfig {
            base_latency_ms: 100,
            jitter_ms: 50,
            ..FaultConfig::none()
        };
        let inj = FaultInjector::new(3, cfg);
        for i in 0..100 {
            let l = inj.latency_ms("a.com", &format!("/p{i}"));
            assert!((100..150).contains(&l), "latency {l} out of bounds");
            assert_eq!(l, inj.latency_ms("a.com", &format!("/p{i}")));
        }
    }
}
