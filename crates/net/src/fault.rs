//! Deterministic fault injection for the simulated transport.
//!
//! Inspired by smoltcp's fault-injection knobs (`--drop-chance`, rate
//! limiting, etc.): every failure mode is an explicit, configurable
//! probability. Decisions are made by hashing `(seed, domain)` rather than
//! drawing from a stream, so a given domain experiences the same fate in
//! every run regardless of request ordering or thread interleaving.
//!
//! Two fault layers coexist:
//!
//! * **Permanent fates** ([`FaultKind`]) — a domain is unreachable, hung, or
//!   bot-walled on every request, mirroring the crawl-failure audit of §4 of
//!   the paper.
//! * **Transient episodes** ([`TransientFault`]) — a `(domain, path)` pair
//!   fails for a bounded burst of attempts (flaky 5xx, connection resets,
//!   `429 Too Many Requests`) and then recovers. The burst length is
//!   hash-derived and capped at [`FaultConfig::burst_max`], so a retry
//!   policy with at least `burst_max` retries always recovers and the §4
//!   fate histogram is unchanged under the default config.

use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Probabilities for each fault class, per domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a domain's server is unreachable (connection errors on
    /// every request).
    pub connect_failure: f64,
    /// Probability a domain times out on every request (hung server).
    pub timeout: f64,
    /// Probability a domain blocks crawlers (403 bot wall on every page).
    pub block_crawlers: f64,
    /// Base simulated latency in milliseconds.
    pub base_latency_ms: u64,
    /// Additional per-domain latency jitter bound in milliseconds.
    pub jitter_ms: u64,
    /// Probability a `(domain, path)` serves a burst of 503s before
    /// recovering.
    pub flaky_5xx: f64,
    /// Probability a `(domain, path)` resets the connection for a burst of
    /// attempts.
    pub conn_reset: f64,
    /// Probability a `(domain, path)` answers `429 Too Many Requests` for a
    /// burst of attempts.
    pub rate_limit: f64,
    /// Maximum transient burst length in attempts (each episode's actual
    /// length is hash-derived in `1..=burst_max`). `0` behaves as `1`.
    pub burst_max: u32,
    /// Probability the first attempt at a `(domain, path)` suffers a
    /// latency spike.
    pub latency_spike: f64,
    /// Extra latency added by a spike, in milliseconds.
    pub latency_spike_ms: u64,
    /// `Retry-After` value attached to simulated 429s, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // Calibrated to the §4 failure audit: of 2892 domains, ~11/50-sample
        // of 244+103 failures were crawler-related (exceptions/timeouts/
        // blocks) → roughly 2% of domains experience a hard crawl fault.
        // Transient rates are chosen so retries recover every episode
        // (burst_max <= default retry budget), leaving the fate histogram
        // untouched while still exercising the resilience layer.
        FaultConfig {
            connect_failure: 0.008,
            timeout: 0.006,
            block_crawlers: 0.006,
            base_latency_ms: 120,
            jitter_ms: 400,
            flaky_5xx: 0.02,
            conn_reset: 0.012,
            rate_limit: 0.01,
            burst_max: 2,
            latency_spike: 0.02,
            latency_spike_ms: 1500,
            retry_after_ms: 800,
        }
    }
}

impl FaultConfig {
    /// No faults, zero latency — for unit tests and benches.
    pub fn none() -> FaultConfig {
        FaultConfig {
            connect_failure: 0.0,
            timeout: 0.0,
            block_crawlers: 0.0,
            base_latency_ms: 0,
            jitter_ms: 0,
            flaky_5xx: 0.0,
            conn_reset: 0.0,
            rate_limit: 0.0,
            burst_max: 0,
            latency_spike: 0.0,
            latency_spike_ms: 0,
            retry_after_ms: 0,
        }
    }

    /// Elevated transient rates for chaos benches: no extra permanent
    /// faults, but heavy flapping that the retry layer must absorb.
    pub fn chaotic() -> FaultConfig {
        FaultConfig {
            flaky_5xx: 0.12,
            conn_reset: 0.08,
            rate_limit: 0.06,
            burst_max: 2,
            latency_spike: 0.10,
            latency_spike_ms: 2500,
            retry_after_ms: 500,
            ..FaultConfig::default()
        }
    }
}

/// The fate assigned to a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Requests succeed normally.
    None,
    /// Connections fail.
    ConnectFailure,
    /// Requests hang until the client's timeout.
    Timeout,
    /// Server answers every request with a 403 bot wall.
    Blocked,
}

/// A transient fault affecting one attempt at a `(domain, path)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransientFault {
    /// The attempt proceeds normally.
    None,
    /// The server answers 503 for this attempt.
    ServerError,
    /// The connection is reset mid-request.
    ConnReset,
    /// The server answers 429 with a `Retry-After`.
    RateLimited,
}

/// Deterministic per-domain fault oracle.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    config: FaultConfig,
}

impl FaultInjector {
    /// Create an injector with the given seed and configuration.
    pub fn new(seed: u64, config: FaultConfig) -> FaultInjector {
        FaultInjector { seed, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fate of `domain`. Stable across calls, runs, and threads.
    pub fn fate(&self, domain: &str) -> FaultKind {
        let u = unit_hash(self.seed, domain, "fate");
        let c = &self.config;
        if u < c.connect_failure {
            FaultKind::ConnectFailure
        } else if u < c.connect_failure + c.timeout {
            FaultKind::Timeout
        } else if u < c.connect_failure + c.timeout + c.block_crawlers {
            FaultKind::Blocked
        } else {
            FaultKind::None
        }
    }

    /// The transient fault (if any) affecting attempt `attempt` (0-based)
    /// at `domain`/`path`. An affected pair fails for a hash-derived burst
    /// of `1..=burst_max` attempts, then recovers permanently — so the
    /// outcome is a pure function of `(seed, domain, path, attempt)`.
    pub fn transient(&self, domain: &str, path: &str, attempt: u32) -> TransientFault {
        let c = &self.config;
        let total = c.flaky_5xx + c.conn_reset + c.rate_limit;
        if total <= 0.0 {
            return TransientFault::None;
        }
        let key = format!("{domain} {path}");
        let u = unit_hash(self.seed, &key, "transient");
        let kind = if u < c.flaky_5xx {
            TransientFault::ServerError
        } else if u < c.flaky_5xx + c.conn_reset {
            TransientFault::ConnReset
        } else if u < total {
            TransientFault::RateLimited
        } else {
            return TransientFault::None;
        };
        let burst_max = c.burst_max.max(1);
        let bu = unit_hash(self.seed, &key, "burst");
        let burst = 1 + (bu * burst_max as f64) as u32;
        let burst = burst.min(burst_max);
        if attempt < burst {
            kind
        } else {
            TransientFault::None
        }
    }

    /// Simulated latency for one request to `domain`/`path`, in
    /// milliseconds. Deterministic per (domain, path).
    pub fn latency_ms(&self, domain: &str, path: &str) -> u64 {
        self.latency_ms_at(domain, path, 0)
    }

    /// Attempt-aware latency: the first attempt at a spiking
    /// `(domain, path)` pays [`FaultConfig::latency_spike_ms`] extra;
    /// retries see normal latency.
    pub fn latency_ms_at(&self, domain: &str, path: &str, attempt: u32) -> u64 {
        let key = format!("{domain}{path}");
        let u = unit_hash(self.seed, &key, "latency");
        let mut latency = self.config.base_latency_ms + (u * self.config.jitter_ms as f64) as u64;
        if attempt == 0
            && self.config.latency_spike > 0.0
            && unit_hash(self.seed, &key, "spike") < self.config.latency_spike
        {
            latency += self.config.latency_spike_ms;
        }
        latency
    }
}

/// Hash `(seed, key, salt)` to a uniform float in [0, 1).
pub(crate) fn unit_hash(seed: u64, key: &str, salt: &str) -> f64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut hasher);
    key.hash(&mut hasher);
    salt.hash(&mut hasher);
    let h = hasher.finish();
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic() {
        let inj = FaultInjector::new(7, FaultConfig::default());
        for d in ["acme.com", "globex.com", "initech.com"] {
            assert_eq!(inj.fate(d), inj.fate(d));
        }
    }

    #[test]
    fn no_faults_config_is_all_none() {
        let inj = FaultInjector::new(1, FaultConfig::none());
        for i in 0..500 {
            let d = format!("d{i}.com");
            assert_eq!(inj.fate(&d), FaultKind::None);
            assert_eq!(inj.transient(&d, "/", 0), TransientFault::None);
        }
        assert_eq!(inj.latency_ms("d.com", "/"), 0);
    }

    #[test]
    fn fault_rates_approximate_config() {
        let cfg = FaultConfig {
            connect_failure: 0.10,
            timeout: 0.10,
            block_crawlers: 0.10,
            ..FaultConfig::none()
        };
        let inj = FaultInjector::new(42, cfg);
        let n = 20_000;
        let mut counts = [0usize; 4];
        for i in 0..n {
            let idx = match inj.fate(&format!("host{i}.com")) {
                FaultKind::None => 0,
                FaultKind::ConnectFailure => 1,
                FaultKind::Timeout => 2,
                FaultKind::Blocked => 3,
            };
            counts[idx] += 1;
        }
        for &c in &counts[1..] {
            let rate = c as f64 / n as f64;
            assert!((rate - 0.10).abs() < 0.01, "rate={rate}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(
            1,
            FaultConfig {
                connect_failure: 0.5,
                ..FaultConfig::none()
            },
        );
        let b = FaultInjector::new(
            2,
            FaultConfig {
                connect_failure: 0.5,
                ..FaultConfig::none()
            },
        );
        let diff = (0..200)
            .filter(|i| {
                let d = format!("x{i}.com");
                a.fate(&d) != b.fate(&d)
            })
            .count();
        assert!(
            diff > 20,
            "seeds should produce different fates, diff={diff}"
        );
    }

    #[test]
    fn latency_within_bounds_and_stable() {
        let cfg = FaultConfig {
            base_latency_ms: 100,
            jitter_ms: 50,
            ..FaultConfig::none()
        };
        let inj = FaultInjector::new(3, cfg);
        for i in 0..100 {
            let l = inj.latency_ms("a.com", &format!("/p{i}"));
            assert!((100..150).contains(&l), "latency {l} out of bounds");
            assert_eq!(l, inj.latency_ms("a.com", &format!("/p{i}")));
        }
    }

    #[test]
    fn transient_episodes_are_bounded_bursts() {
        let cfg = FaultConfig {
            flaky_5xx: 0.3,
            conn_reset: 0.2,
            rate_limit: 0.1,
            burst_max: 3,
            ..FaultConfig::none()
        };
        let inj = FaultInjector::new(9, cfg);
        let mut episodes = 0usize;
        for i in 0..2_000 {
            let d = format!("t{i}.com");
            let first = inj.transient(&d, "/", 0);
            if first == TransientFault::None {
                // Never faulted on attempt 0 → never faulted at all.
                for a in 1..6 {
                    assert_eq!(inj.transient(&d, "/", a), TransientFault::None);
                }
                continue;
            }
            episodes += 1;
            // The episode is a prefix of attempts: same kind up to the burst
            // length, then permanently clear, within burst_max.
            let mut cleared_at = None;
            for a in 1..8 {
                let t = inj.transient(&d, "/", a);
                match (cleared_at, t) {
                    (None, TransientFault::None) => cleared_at = Some(a),
                    (None, k) => assert_eq!(k, first, "burst changes kind on {d}"),
                    (Some(_), TransientFault::None) => {}
                    (Some(_), k) => panic!("episode on {d} re-fired as {k:?} after clearing"),
                }
            }
            let cleared = cleared_at.expect("episode never cleared");
            assert!(
                cleared <= cfg.burst_max,
                "burst {cleared} exceeds burst_max"
            );
        }
        let rate = episodes as f64 / 2_000.0;
        assert!(
            (rate - 0.6).abs() < 0.05,
            "episode rate {rate} off from 0.6"
        );
    }

    #[test]
    fn transient_decision_is_deterministic() {
        let inj = FaultInjector::new(11, FaultConfig::chaotic());
        for i in 0..200 {
            let d = format!("h{i}.com");
            for a in 0..4 {
                assert_eq!(
                    inj.transient(&d, "/privacy", a),
                    inj.transient(&d, "/privacy", a)
                );
            }
        }
    }

    #[test]
    fn latency_spike_hits_first_attempt_only() {
        let cfg = FaultConfig {
            base_latency_ms: 10,
            jitter_ms: 0,
            latency_spike: 1.0,
            latency_spike_ms: 500,
            ..FaultConfig::none()
        };
        let inj = FaultInjector::new(5, cfg);
        assert_eq!(inj.latency_ms_at("a.com", "/", 0), 510);
        assert_eq!(inj.latency_ms_at("a.com", "/", 1), 10);
        assert_eq!(inj.latency_ms_at("a.com", "/", 2), 10);
    }

    #[test]
    fn default_config_bursts_fit_default_retries() {
        // The calibration contract: under the default config every transient
        // episode clears within `burst_max` attempts, so a retry budget of
        // `burst_max` recovers every domain and the §4 fate histogram is
        // unchanged vs. a transient-free world.
        let cfg = FaultConfig::default();
        let inj = FaultInjector::new(21, cfg);
        for i in 0..5_000 {
            let d = format!("c{i}.com");
            assert_eq!(
                inj.transient(&d, "/privacy", cfg.burst_max),
                TransientFault::None,
                "episode on {d} survived burst_max attempts"
            );
        }
    }
}
