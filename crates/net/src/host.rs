//! Virtual hosts and the in-memory "Internet" registry.

use crate::http::{Request, Response};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A website: maps requests to responses.
///
/// Implementations must be pure functions of the request (the simulated web
/// is static), which keeps crawls deterministic and repeatable.
pub trait VirtualHost: Send + Sync {
    /// Handle a request addressed to this host.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> VirtualHost for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// A static site: a path → response table with a 404 fallback.
#[derive(Default)]
pub struct StaticSite {
    pages: BTreeMap<String, Response>,
}

impl StaticSite {
    /// Empty site (every path 404s).
    pub fn new() -> StaticSite {
        StaticSite::default()
    }

    /// Register `response` at `path` (normalized: trailing slash stripped).
    pub fn page(mut self, path: &str, response: Response) -> StaticSite {
        self.pages.insert(normalize(path), response);
        self
    }

    /// Number of registered pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the site has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// All registered paths (unordered).
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.pages.keys().map(String::as_str)
    }

    /// Estimated resident heap bytes of this site: path keys plus response
    /// bodies and redirect targets. Used by lazy world generation to bound
    /// (and report) the memory held by materialized sites.
    pub fn resident_bytes(&self) -> usize {
        self.pages
            .iter()
            .map(|(path, response)| {
                path.len() + response.body.len() + response.location.as_ref().map_or(0, String::len)
            })
            .sum()
    }
}

fn normalize(path: &str) -> String {
    let p = path.trim_end_matches('/');
    if p.is_empty() {
        "/".to_string()
    } else {
        p.to_string()
    }
}

impl VirtualHost for StaticSite {
    fn handle(&self, request: &Request) -> Response {
        self.pages
            .get(&normalize(&request.url.path))
            .cloned()
            .unwrap_or_else(Response::not_found)
    }
}

/// The registry of all virtual hosts: a deterministic, in-memory web.
///
/// Cloning is cheap (`Arc`-shared); hosts may be registered from any thread.
#[derive(Clone, Default)]
pub struct Internet {
    hosts: Arc<RwLock<HashMap<String, Arc<dyn VirtualHost>>>>,
}

impl Internet {
    /// An empty web.
    pub fn new() -> Internet {
        Internet::default()
    }

    /// Register `host` to serve `domain` (and, implicitly, `www.domain`).
    pub fn register(&self, domain: &str, host: impl VirtualHost + 'static) {
        self.register_shared(domain, Arc::new(host));
    }

    /// Register an already-shared host. Lets the caller keep its own handle
    /// to the host (e.g. a lazily generated site it can later release)
    /// without a second `Arc` layer.
    pub fn register_shared(&self, domain: &str, host: Arc<dyn VirtualHost>) {
        self.hosts.write().insert(domain.to_ascii_lowercase(), host);
    }

    /// Resolve a host name to its site, accepting a `www.` prefix.
    pub fn resolve(&self, host: &str) -> Option<Arc<dyn VirtualHost>> {
        let lower = host.to_ascii_lowercase();
        let hosts = self.hosts.read();
        hosts
            .get(&lower)
            .or_else(|| hosts.get(lower.strip_prefix("www.")?))
            .cloned()
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.hosts.read().len()
    }

    /// Whether no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.hosts.read().is_empty()
    }

    /// All registered domains, sorted (stable iteration for reports).
    pub fn domains(&self) -> Vec<String> {
        let mut v: Vec<String> = self.hosts.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::url::Url;

    fn req(url: &str) -> Request {
        Request::get(Url::parse(url).unwrap())
    }

    #[test]
    fn static_site_serves_pages_and_404s() {
        let site = StaticSite::new()
            .page("/", Response::html("<p>home</p>"))
            .page("/privacy", Response::html("<p>policy</p>"));
        assert_eq!(
            site.handle(&req("https://a.com/")).body_text(),
            "<p>home</p>"
        );
        assert_eq!(
            site.handle(&req("https://a.com/privacy")).body_text(),
            "<p>policy</p>"
        );
        assert_eq!(
            site.handle(&req("https://a.com/none")).status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn static_site_normalizes_trailing_slash() {
        let site = StaticSite::new().page("/privacy/", Response::html("x"));
        assert!(site
            .handle(&req("https://a.com/privacy"))
            .status
            .is_success());
    }

    #[test]
    fn internet_resolves_with_and_without_www() {
        let net = Internet::new();
        net.register(
            "acme.com",
            StaticSite::new().page("/", Response::html("hi")),
        );
        assert!(net.resolve("acme.com").is_some());
        assert!(net.resolve("WWW.ACME.COM").is_some());
        assert!(net.resolve("other.com").is_none());
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn closure_as_host() {
        let net = Internet::new();
        net.register("echo.com", |r: &Request| {
            Response::html(format!("<p>{}</p>", r.url.path))
        });
        let host = net.resolve("echo.com").unwrap();
        assert_eq!(
            host.handle(&req("https://echo.com/abc")).body_text(),
            "<p>/abc</p>"
        );
    }

    #[test]
    fn domains_sorted() {
        let net = Internet::new();
        net.register("b.com", StaticSite::new());
        net.register("a.com", StaticSite::new());
        assert_eq!(
            net.domains(),
            vec!["a.com".to_string(), "b.com".to_string()]
        );
    }
}
