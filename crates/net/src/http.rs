//! Minimal HTTP request/response model for the simulated transport.

use crate::url::Url;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// HTTP status code wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK.
    pub const OK: Status = Status(200);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: Status = Status(301);
    /// 302 Found.
    pub const FOUND: Status = Status(302);
    /// 403 Forbidden (used for bot-blocked crawls).
    pub const FORBIDDEN: Status = Status(403);
    /// 404 Not Found.
    pub const NOT_FOUND: Status = Status(404);
    /// 429 Too Many Requests.
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: Status = Status(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// The paper's success criterion: "an HTTP status code below 400".
    pub fn is_success(self) -> bool {
        self.0 < 400
    }

    /// Whether this is a redirect status (3xx).
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Whether this is a server error (5xx) — the transient-retryable band.
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Response content type (a closed set; the simulated web serves only
/// these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentType {
    /// `text/html`.
    Html,
    /// `application/pdf` — the crawler cannot extract these (§4: 5 of the 50
    /// audited failures were PDF policies).
    Pdf,
    /// `text/plain`.
    Plain,
    /// Anything else (images, scripts, ...).
    Other,
}

impl ContentType {
    /// MIME string.
    pub fn mime(self) -> &'static str {
        match self {
            ContentType::Html => "text/html; charset=utf-8",
            ContentType::Pdf => "application/pdf",
            ContentType::Plain => "text/plain; charset=utf-8",
            ContentType::Other => "application/octet-stream",
        }
    }
}

/// A simulated HTTP GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Target URL.
    pub url: Url,
    /// User-agent string presented to the host (bot walls key off this).
    pub user_agent: String,
}

impl Request {
    /// A GET request with the crawler's default user agent.
    pub fn get(url: Url) -> Request {
        Request {
            url,
            user_agent: "aipan-crawler/0.1 (headless)".to_string(),
        }
    }
}

/// A simulated HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Content type.
    pub content_type: ContentType,
    /// Body bytes.
    pub body: Bytes,
    /// Redirect target for 3xx responses.
    pub location: Option<String>,
}

impl Response {
    /// A 200 HTML response.
    pub fn html(body: impl Into<Bytes>) -> Response {
        Response {
            status: Status::OK,
            content_type: ContentType::Html,
            body: body.into(),
            location: None,
        }
    }

    /// A 200 PDF response (payload content is irrelevant to the pipeline,
    /// which cannot parse PDFs).
    pub fn pdf(body: impl Into<Bytes>) -> Response {
        Response {
            status: Status::OK,
            content_type: ContentType::Pdf,
            body: body.into(),
            location: None,
        }
    }

    /// A redirect to `location`.
    pub fn redirect(status: Status, location: impl Into<String>) -> Response {
        debug_assert!(status.is_redirect());
        Response {
            status,
            content_type: ContentType::Html,
            body: Bytes::new(),
            location: Some(location.into()),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Response {
        Response {
            status: Status::NOT_FOUND,
            content_type: ContentType::Html,
            body: Bytes::from_static(b"<html><body><h1>404 Not Found</h1></body></html>"),
            location: None,
        }
    }

    /// A 403 bot-wall response.
    pub fn blocked() -> Response {
        Response {
            status: Status::FORBIDDEN,
            content_type: ContentType::Html,
            body: Bytes::from_static(
                b"<html><body><h1>Access denied</h1><p>Automated traffic detected.</p></body></html>",
            ),
            location: None,
        }
    }

    /// A 503 response for a transient server-error burst.
    pub fn unavailable() -> Response {
        Response {
            status: Status::SERVICE_UNAVAILABLE,
            content_type: ContentType::Html,
            body: Bytes::from_static(
                b"<html><body><h1>503 Service Unavailable</h1><p>Try again shortly.</p></body></html>",
            ),
            location: None,
        }
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_success_below_400() {
        assert!(Status::OK.is_success());
        assert!(Status(399).is_success());
        assert!(Status::MOVED_PERMANENTLY.is_success());
        assert!(!Status::FORBIDDEN.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert!(!Status(500).is_success());
    }

    #[test]
    fn redirect_detection() {
        assert!(Status::FOUND.is_redirect());
        assert!(!Status::OK.is_redirect());
        assert!(!Status::NOT_FOUND.is_redirect());
    }

    #[test]
    fn response_constructors() {
        let r = Response::html("<p>x</p>");
        assert_eq!(r.status, Status::OK);
        assert_eq!(r.content_type, ContentType::Html);
        assert_eq!(r.body_text(), "<p>x</p>");

        let rd = Response::redirect(Status::MOVED_PERMANENTLY, "/privacy");
        assert_eq!(rd.location.as_deref(), Some("/privacy"));

        assert_eq!(Response::not_found().status, Status::NOT_FOUND);
        assert_eq!(Response::blocked().status, Status::FORBIDDEN);
        assert_eq!(Response::pdf(vec![1, 2, 3]).content_type, ContentType::Pdf);
    }

    #[test]
    fn mime_strings() {
        assert!(ContentType::Html.mime().starts_with("text/html"));
        assert_eq!(ContentType::Pdf.mime(), "application/pdf");
    }
}
