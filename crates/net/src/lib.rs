//! # aipan-net
//!
//! A simulated HTTP substrate for AIPAN-RS — the stand-in for the live web
//! that the paper's Crawlee/Playwright crawler operated on.
//!
//! Following the layered, fault-injecting design of embedded network stacks
//! (see DESIGN.md §7), the crate provides:
//!
//! * [`url`] — a small URL type with relative-reference resolution, enough
//!   for same-site crawling.
//! * [`http`] — request/response/status types with `bytes` payloads.
//! * [`host`] — the [`host::VirtualHost`] trait and [`host::Internet`]
//!   registry: a deterministic "world wide web" served from memory.
//! * [`fault`] — configurable fault injection (permanent connection
//!   failures, timeouts, bot blocking, plus bounded transient episodes:
//!   flaky 5xx bursts, resets, 429s, latency spikes), decided by a seeded
//!   hash so every run and request order sees identical faults.
//! * [`transport`] — the client: DNS-style host lookup, fault application,
//!   redirect following, simulated latency accounting, and shared
//!   [`transport::TransportMetrics`].
//! * [`retry`] — the guarded fetch path: deterministic capped-exponential
//!   backoff with hashed jitter, per-domain retry budgets, and per-host
//!   circuit breakers on a simulated clock.
//!
//! No real sockets are involved; everything is in-process and deterministic,
//! which is what lets the whole paper pipeline run reproducibly in tests and
//! benches.

#![warn(missing_docs)]

pub mod fault;
pub mod host;
pub mod http;
pub mod retry;
pub mod transport;
pub mod url;

pub use fault::{FaultConfig, FaultInjector, FaultKind, TransientFault};
pub use host::{Internet, VirtualHost};
pub use http::{ContentType, Request, Response, Status};
pub use retry::{BreakerState, FetchSession, RetryPolicy};
pub use transport::{Client, FetchError, FetchResult, TransportMetrics};
pub use url::Url;
