//! Deterministic retry/backoff policy and per-host circuit breakers.
//!
//! [`RetryPolicy`] classifies failures (via [`FetchError::is_retryable`] and
//! 5xx statuses), schedules capped exponential backoff with seed-hashed
//! jitter, and bounds work with a per-domain retry budget. [`FetchSession`]
//! threads the policy through a [`Client`] clone and adds a per-host
//! circuit breaker (Closed → Open → HalfOpen) driven by a **simulated
//! clock**: latency, backoff, and politeness delays advance the clock, so
//! breaker cool-downs are a pure function of the request sequence and the
//! seed — no wall time, no cross-thread state.
//!
//! Sessions are deliberately *not* shared between worker threads: each
//! domain crawl owns one, which keeps the workspace's byte-identical
//! determinism contract intact across worker counts.

use crate::fault::unit_hash;
use crate::transport::{Client, FetchError, FetchResult};
use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Retry and circuit-breaker knobs for one guarded fetch path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per request, counting the first (1 = no retries).
    pub max_attempts: u32,
    /// First backoff step in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff cap in milliseconds.
    pub max_backoff_ms: u64,
    /// Upper bound on hash-derived backoff jitter in milliseconds.
    pub jitter_ms: u64,
    /// Total retries allowed per domain per session.
    pub domain_budget: u32,
    /// Consecutive failures before the per-host breaker opens.
    pub breaker_threshold: u32,
    /// Simulated milliseconds an open breaker waits before half-opening.
    pub breaker_cooldown_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // max_attempts must exceed FaultConfig::default().burst_max so every
        // default-config transient episode is recovered.
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 250,
            max_backoff_ms: 4_000,
            jitter_ms: 200,
            domain_budget: 12,
            breaker_threshold: 4,
            breaker_cooldown_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// The pre-resilience behavior: one attempt, no breaker. Used as the
    /// baseline the retry layer is measured against.
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_ms: 0,
            domain_budget: 0,
            breaker_threshold: u32::MAX,
            breaker_cooldown_ms: 0,
        }
    }

    /// Backoff before retry number `retry` (1-based): capped exponential
    /// plus jitter hashed from `(seed, domain, retry)` — deterministic, but
    /// decorrelated across domains so synchronized retry storms cannot
    /// happen even in simulation.
    pub fn backoff_ms(&self, seed: u64, domain: &str, retry: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(16))
            .min(self.max_backoff_ms);
        let key = format!("{domain}#{retry}");
        let jitter = (unit_hash(seed, &key, "backoff") * self.jitter_ms as f64) as u64;
        exp + jitter
    }
}

/// Circuit-breaker state for one host, observable for tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are refused until the cool-down elapses.
    Open,
    /// Cool-down elapsed; the next request is a probe.
    HalfOpen,
}

#[derive(Debug, Default, Clone)]
struct HostState {
    consecutive_failures: u32,
    open_until_ms: Option<u64>,
    half_open: bool,
    retries_spent: u32,
}

/// One guarded fetch path: a [`Client`] clone plus retry/breaker state and
/// a simulated clock. Single-threaded by design; create one per domain
/// crawl (or per chatbot conversation) so determinism is independent of
/// worker scheduling.
pub struct FetchSession {
    client: Client,
    policy: RetryPolicy,
    seed: u64,
    clock_ms: u64,
    hosts: BTreeMap<String, HostState>,
}

impl FetchSession {
    /// Wrap `client` with `policy`, seeding backoff jitter from `seed`.
    pub fn new(client: Client, seed: u64, policy: RetryPolicy) -> FetchSession {
        FetchSession {
            client,
            policy,
            seed,
            clock_ms: 0,
            hosts: BTreeMap::new(),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The wrapped client.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Simulated milliseconds elapsed in this session (latency + backoff +
    /// explicit [`FetchSession::advance`] calls).
    pub fn elapsed_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Advance the simulated clock (e.g. for politeness delays).
    pub fn advance(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// Retries spent against `domain` so far.
    pub fn retries_spent(&self, domain: &str) -> u32 {
        self.hosts.get(domain).map_or(0, |h| h.retries_spent)
    }

    /// Total retries spent across every host this session touched.
    pub fn total_retries(&self) -> u64 {
        self.hosts
            .values()
            .map(|h| u64::from(h.retries_spent))
            .sum()
    }

    /// Current breaker state for `domain`.
    pub fn breaker_state(&self, domain: &str) -> BreakerState {
        match self.hosts.get(domain) {
            None => BreakerState::Closed,
            Some(h) => match h.open_until_ms {
                Some(until) if self.clock_ms < until => BreakerState::Open,
                Some(_) => BreakerState::HalfOpen,
                None if h.half_open => BreakerState::HalfOpen,
                None => BreakerState::Closed,
            },
        }
    }

    /// Fetch `url` through the retry policy and breaker.
    ///
    /// Retryable failures (resets, timeouts, 429s) and 5xx responses are
    /// retried with backoff while attempts and the domain budget allow;
    /// 429s wait at least their `Retry-After`. A host whose breaker is open
    /// is refused without touching the transport, which is what bounds
    /// traffic to a dead host.
    pub fn fetch(&mut self, url: &Url) -> Result<FetchResult, FetchError> {
        let domain = url.domain();
        {
            let host = self.hosts.entry(domain.clone()).or_default();
            if let Some(until) = host.open_until_ms {
                if self.clock_ms < until {
                    return Err(FetchError::CircuitOpen(domain));
                }
                // Cool-down elapsed: half-open, let one probe through.
                host.open_until_ms = None;
                host.half_open = true;
            }
        }
        let mut attempt = 0u32;
        loop {
            let outcome = self.client.fetch_attempt(url, attempt);
            match outcome {
                Ok(res) if res.response.status.is_server_error() => {
                    self.clock_ms += res.latency_ms;
                    if self.try_schedule_retry(&domain, attempt, None) {
                        attempt += 1;
                        continue;
                    }
                    // Out of attempts or budget: deliver the 5xx as-is so
                    // the caller can degrade gracefully.
                    self.record_failure(&domain);
                    return Ok(res);
                }
                Ok(res) => {
                    self.clock_ms += res.latency_ms;
                    self.record_success(&domain);
                    return Ok(res);
                }
                Err(err) if err.is_retryable() => {
                    let wait_floor = match &err {
                        FetchError::RateLimited { retry_after_ms, .. } => Some(*retry_after_ms),
                        _ => None,
                    };
                    if self.try_schedule_retry(&domain, attempt, wait_floor) {
                        attempt += 1;
                        continue;
                    }
                    self.record_failure(&domain);
                    return Err(err);
                }
                Err(err) => {
                    self.record_failure(&domain);
                    return Err(err);
                }
            }
        }
    }

    /// If policy allows another attempt, charge the budget, advance the
    /// clock by backoff (respecting a `Retry-After` floor), and return true.
    fn try_schedule_retry(&mut self, domain: &str, attempt: u32, wait_floor: Option<u64>) -> bool {
        if attempt + 1 >= self.policy.max_attempts {
            return false;
        }
        let host = self.hosts.entry(domain.to_string()).or_default();
        if host.retries_spent >= self.policy.domain_budget {
            self.client.with_metrics(|m| m.budget_exhausted += 1);
            return false;
        }
        host.retries_spent += 1;
        let retry = attempt + 1;
        let backoff = self.policy.backoff_ms(self.seed, domain, retry);
        self.clock_ms += backoff.max(wait_floor.unwrap_or(0));
        self.client.with_metrics(|m| m.retries += 1);
        true
    }

    fn record_success(&mut self, domain: &str) {
        let host = self.hosts.entry(domain.to_string()).or_default();
        host.consecutive_failures = 0;
        host.half_open = false;
        host.open_until_ms = None;
    }

    fn record_failure(&mut self, domain: &str) {
        let cooldown = self.policy.breaker_cooldown_ms;
        let threshold = self.policy.breaker_threshold;
        let clock = self.clock_ms;
        let host = self.hosts.entry(domain.to_string()).or_default();
        host.consecutive_failures = host.consecutive_failures.saturating_add(1);
        let reopen = host.half_open;
        host.half_open = false;
        if reopen || host.consecutive_failures >= threshold {
            host.open_until_ms = Some(clock + cooldown);
            self.client.with_metrics(|m| m.breaker_opens += 1);
        }
    }
}

impl Client {
    /// A guarded fetch session over this client. One session per domain
    /// crawl keeps retry/breaker state thread-local and deterministic.
    pub fn session(&self, seed: u64, policy: RetryPolicy) -> FetchSession {
        FetchSession::new(self.clone(), seed, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjector};
    use crate::host::{Internet, StaticSite};
    use crate::http::{Response, Status};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn client_with(cfg: FaultConfig) -> Client {
        let net = Internet::new();
        net.register("a.com", StaticSite::new().page("/", Response::html("up")));
        Client::new(net, FaultInjector::new(0, cfg))
    }

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        let p = RetryPolicy {
            base_backoff_ms: 100,
            max_backoff_ms: 450,
            jitter_ms: 50,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff_ms(7, "a.com", 1);
        let b2 = p.backoff_ms(7, "a.com", 2);
        let b9 = p.backoff_ms(7, "a.com", 9);
        assert!((100..150).contains(&b1), "b1={b1}");
        assert!((200..250).contains(&b2), "b2={b2}");
        assert!((450..500).contains(&b9), "capped: b9={b9}");
        assert_eq!(b1, p.backoff_ms(7, "a.com", 1));
        assert_ne!(
            p.backoff_ms(7, "a.com", 1),
            p.backoff_ms(7, "b.com", 1),
            "jitter should decorrelate domains"
        );
    }

    #[test]
    fn no_retry_policy_gives_single_attempt() {
        let cfg = FaultConfig {
            conn_reset: 1.0,
            burst_max: 1,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        let mut session = client.session(1, RetryPolicy::no_retry());
        assert!(session.fetch(&url("https://a.com/")).is_err());
        assert_eq!(client.metrics().requests, 1);
        assert_eq!(client.metrics().retries, 0);
    }

    #[test]
    fn session_recovers_transient_burst() {
        let cfg = FaultConfig {
            conn_reset: 1.0,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        let mut session = client.session(1, RetryPolicy::default());
        let res = session.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(res.response.body_text(), "up");
        let m = client.metrics();
        assert!(m.retries >= 1, "{m:?}");
        assert!(m.is_conserved(), "{m:?}");
        assert_eq!(session.breaker_state("a.com"), BreakerState::Closed);
    }

    #[test]
    fn rate_limit_waits_at_least_retry_after() {
        let cfg = FaultConfig {
            rate_limit: 1.0,
            burst_max: 1,
            retry_after_ms: 5_000,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        let mut session = client.session(1, RetryPolicy::default());
        let res = session.fetch(&url("https://a.com/")).unwrap();
        assert!(res.response.status.is_success());
        assert!(
            session.elapsed_ms() >= 5_000,
            "clock {} ignored Retry-After",
            session.elapsed_ms()
        );
    }

    #[test]
    fn server_error_burst_retries_then_succeeds() {
        let cfg = FaultConfig {
            flaky_5xx: 1.0,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        let mut session = client.session(1, RetryPolicy::default());
        let res = session.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(res.response.status, Status::OK);
        assert!(client.metrics().server_errors >= 1);
    }

    #[test]
    fn breaker_caps_requests_to_dead_host() {
        let cfg = FaultConfig {
            connect_failure: 1.0,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        let policy = RetryPolicy {
            breaker_threshold: 4,
            breaker_cooldown_ms: 60_000,
            ..RetryPolicy::default()
        };
        let mut session = client.session(1, policy);
        let mut circuit_open = 0;
        for _ in 0..50 {
            match session.fetch(&url("https://a.com/")) {
                Err(FetchError::CircuitOpen(_)) => circuit_open += 1,
                Err(_) => {}
                Ok(_) => panic!("dead host served a response"),
            }
        }
        let m = client.metrics();
        assert_eq!(
            m.requests, 4,
            "breaker must cap transport requests at the threshold"
        );
        assert_eq!(circuit_open, 46);
        assert_eq!(m.breaker_opens, 1);
        assert_eq!(session.breaker_state("a.com"), BreakerState::Open);
        assert!(m.is_conserved(), "{m:?}");
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_recloses_on_success() {
        let cfg = FaultConfig {
            conn_reset: 1.0,
            burst_max: 3,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        // One attempt per fetch so each fetch is one failure; threshold 2.
        let policy = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown_ms: 1_000,
            ..RetryPolicy::default()
        };
        let mut session = client.session(1, policy);
        let target = url("https://a.com/");
        assert!(session.fetch(&target).is_err());
        assert!(session.fetch(&target).is_err());
        assert_eq!(session.breaker_state("a.com"), BreakerState::Open);
        assert!(matches!(
            session.fetch(&target),
            Err(FetchError::CircuitOpen(_))
        ));
        // Cool-down elapses on the simulated clock; the half-open probe
        // still hits the reset (each fetch is attempt 0 of its own burst),
        // and one failed probe re-opens the breaker immediately.
        session.advance(1_000);
        assert_eq!(session.breaker_state("a.com"), BreakerState::HalfOpen);
        assert!(session.fetch(&target).is_err());
        assert_eq!(session.breaker_state("a.com"), BreakerState::Open);
        assert_eq!(client.metrics().breaker_opens, 2);
    }

    #[test]
    fn domain_budget_bounds_total_retries() {
        let cfg = FaultConfig {
            conn_reset: 1.0,
            burst_max: 32,
            ..FaultConfig::none()
        };
        let client = client_with(cfg);
        let policy = RetryPolicy {
            max_attempts: 10,
            domain_budget: 3,
            breaker_threshold: u32::MAX,
            ..RetryPolicy::default()
        };
        let mut session = client.session(1, policy);
        assert!(session.fetch(&url("https://a.com/")).is_err());
        let m = client.metrics();
        assert_eq!(m.retries, 3, "{m:?}");
        assert_eq!(m.requests, 4, "{m:?}");
        assert_eq!(m.budget_exhausted, 1, "{m:?}");
        assert_eq!(session.retries_spent("a.com"), 3);
    }

    #[test]
    fn default_policy_clears_default_config_bursts() {
        let policy = RetryPolicy::default();
        let cfg = FaultConfig::default();
        assert!(
            policy.max_attempts > cfg.burst_max,
            "default retries must out-last default bursts"
        );
        assert!(policy.domain_budget >= cfg.burst_max);
    }
}
