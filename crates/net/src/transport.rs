//! The simulated HTTP client: host resolution, fault application, redirect
//! following, and transport metrics.

use crate::fault::{FaultInjector, FaultKind, TransientFault};
use crate::host::Internet;
use crate::http::{Request, Response};
use crate::url::Url;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A failed fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The host name did not resolve (no such site in the simulated web).
    DnsFailure(String),
    /// TCP-level connection failure.
    ConnectFailure(String),
    /// The connection was reset mid-request (transient).
    ConnReset(String),
    /// The request exceeded the client timeout.
    Timeout(String),
    /// The server answered `429 Too Many Requests` with a `Retry-After`.
    RateLimited {
        /// Domain that rate-limited us.
        domain: String,
        /// Milliseconds the server asked us to wait before retrying.
        retry_after_ms: u64,
    },
    /// More than [`Client::MAX_REDIRECTS`] redirects.
    TooManyRedirects(String),
    /// A redirect pointed at an unparsable or unsupported location.
    BadRedirect(String),
    /// The per-host circuit breaker is open; no request was issued.
    CircuitOpen(String),
}

impl FetchError {
    /// The domain the error concerns.
    pub fn domain(&self) -> &str {
        match self {
            FetchError::DnsFailure(d)
            | FetchError::ConnectFailure(d)
            | FetchError::ConnReset(d)
            | FetchError::Timeout(d)
            | FetchError::RateLimited { domain: d, .. }
            | FetchError::TooManyRedirects(d)
            | FetchError::BadRedirect(d)
            | FetchError::CircuitOpen(d) => d,
        }
    }

    /// Whether a retry of the same request can plausibly succeed.
    ///
    /// Resets, timeouts, and rate limits are transient-shaped; DNS and
    /// connect failures are permanent fates in the simulated web, redirect
    /// errors are structural, and an open breaker must not be hammered.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FetchError::ConnReset(_) | FetchError::Timeout(_) | FetchError::RateLimited { .. }
        )
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::DnsFailure(d) => write!(f, "dns failure for {d}"),
            FetchError::ConnectFailure(d) => write!(f, "connection failure to {d}"),
            FetchError::ConnReset(d) => write!(f, "connection reset by {d}"),
            FetchError::Timeout(d) => write!(f, "timeout fetching from {d}"),
            FetchError::RateLimited {
                domain,
                retry_after_ms,
            } => write!(
                f,
                "rate limited by {domain} (retry after {retry_after_ms}ms)"
            ),
            FetchError::TooManyRedirects(d) => write!(f, "too many redirects on {d}"),
            FetchError::BadRedirect(d) => write!(f, "bad redirect target on {d}"),
            FetchError::CircuitOpen(d) => write!(f, "circuit breaker open for {d}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A successful fetch: the final response plus where it ended up.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResult {
    /// The response delivered (post-redirects).
    pub response: Response,
    /// The URL that ultimately served the response.
    pub final_url: Url,
    /// Number of redirects followed.
    pub redirects: u32,
    /// Simulated total latency in milliseconds.
    pub latency_ms: u64,
}

/// Cumulative transport counters, shared across clones of a [`Client`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportMetrics {
    /// Requests issued (including each redirect hop).
    pub requests: u64,
    /// Successful fetches (a response was delivered, any status).
    pub responses: u64,
    /// Total body bytes delivered.
    pub bytes: u64,
    /// DNS failures.
    pub dns_failures: u64,
    /// Connection failures.
    pub connect_failures: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// Transient connection resets.
    pub resets: u64,
    /// 429 rate-limit rejections.
    pub rate_limited: u64,
    /// 5xx responses delivered (a subset of `responses`).
    pub server_errors: u64,
    /// Redirects followed.
    pub redirects: u64,
    /// Retries issued by the guarded fetch path.
    pub retries: u64,
    /// Times a per-host circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Retries denied because a domain's retry budget was spent.
    pub budget_exhausted: u64,
    /// Total simulated latency in milliseconds.
    pub latency_ms: u64,
}

impl TransportMetrics {
    /// Counter-conservation check: every request issued ends in exactly one
    /// response or one classified transport failure. (`server_errors` is a
    /// subset of `responses`; `retries`/`breaker_opens`/`budget_exhausted`
    /// are policy-level counters, not request outcomes.)
    pub fn is_conserved(&self) -> bool {
        self.requests
            == self.responses
                + self.dns_failures
                + self.connect_failures
                + self.timeouts
                + self.resets
                + self.rate_limited
    }
}

/// The simulated HTTP client.
///
/// Cheap to clone; clones share the same metrics. Thread-safe: the crawler's
/// worker pool drives one clone per worker.
#[derive(Clone)]
pub struct Client {
    internet: Internet,
    faults: Arc<FaultInjector>,
    metrics: Arc<Mutex<TransportMetrics>>,
}

impl Client {
    /// Maximum redirect hops before giving up.
    pub const MAX_REDIRECTS: u32 = 5;

    /// Create a client over `internet` with the given fault injector.
    pub fn new(internet: Internet, faults: FaultInjector) -> Client {
        Client {
            internet,
            faults: Arc::new(faults),
            metrics: Arc::new(Mutex::new(TransportMetrics::default())),
        }
    }

    /// Fetch `url`, following redirects. Equivalent to the first attempt of
    /// [`Client::fetch_attempt`].
    pub fn fetch(&self, url: &Url) -> Result<FetchResult, FetchError> {
        self.fetch_attempt(url, 0)
    }

    /// Fetch `url` as attempt number `attempt` (0-based), following
    /// redirects. Transient faults are a pure function of
    /// `(seed, domain, path, attempt)`, so retrying with an incremented
    /// attempt eventually clears any bounded burst.
    pub fn fetch_attempt(&self, url: &Url, attempt: u32) -> Result<FetchResult, FetchError> {
        let mut current = url.clone();
        let mut redirects = 0u32;
        let mut latency_total = 0u64;
        loop {
            let domain = current.domain();
            {
                let mut m = self.metrics.lock();
                m.requests += 1;
            }
            // Per-domain fate.
            match self.faults.fate(&domain) {
                FaultKind::ConnectFailure => {
                    self.metrics.lock().connect_failures += 1;
                    return Err(FetchError::ConnectFailure(domain));
                }
                FaultKind::Timeout => {
                    self.metrics.lock().timeouts += 1;
                    return Err(FetchError::Timeout(domain));
                }
                FaultKind::Blocked => {
                    let latency = self.faults.latency_ms_at(&domain, &current.path, attempt);
                    latency_total += latency;
                    let response = Response::blocked();
                    let mut m = self.metrics.lock();
                    m.responses += 1;
                    m.bytes += response.body.len() as u64;
                    m.latency_ms += latency;
                    return Ok(FetchResult {
                        response,
                        final_url: current,
                        redirects,
                        latency_ms: latency_total,
                    });
                }
                FaultKind::None => {}
            }
            // Per-(domain, path, attempt) transient episode.
            match self.faults.transient(&domain, &current.path, attempt) {
                TransientFault::ConnReset => {
                    self.metrics.lock().resets += 1;
                    return Err(FetchError::ConnReset(domain));
                }
                TransientFault::RateLimited => {
                    let retry_after_ms = self.faults.config().retry_after_ms;
                    self.metrics.lock().rate_limited += 1;
                    return Err(FetchError::RateLimited {
                        domain,
                        retry_after_ms,
                    });
                }
                TransientFault::ServerError => {
                    let latency = self.faults.latency_ms_at(&domain, &current.path, attempt);
                    latency_total += latency;
                    let response = Response::unavailable();
                    let mut m = self.metrics.lock();
                    m.responses += 1;
                    m.server_errors += 1;
                    m.bytes += response.body.len() as u64;
                    m.latency_ms += latency;
                    return Ok(FetchResult {
                        response,
                        final_url: current,
                        redirects,
                        latency_ms: latency_total,
                    });
                }
                TransientFault::None => {}
            }
            let host = match self.internet.resolve(&current.host) {
                Some(h) => h,
                None => {
                    self.metrics.lock().dns_failures += 1;
                    return Err(FetchError::DnsFailure(domain));
                }
            };
            let latency = self.faults.latency_ms_at(&domain, &current.path, attempt);
            latency_total += latency;
            let response = host.handle(&Request::get(current.clone()));
            {
                let mut m = self.metrics.lock();
                m.responses += 1;
                m.bytes += response.body.len() as u64;
                m.latency_ms += latency;
            }
            if response.status.is_redirect() {
                if redirects >= Self::MAX_REDIRECTS {
                    return Err(FetchError::TooManyRedirects(domain));
                }
                let location = response.location.clone().unwrap_or_default();
                current = current
                    .join(&location)
                    .map_err(|_| FetchError::BadRedirect(domain.clone()))?;
                redirects += 1;
                self.metrics.lock().redirects += 1;
                continue;
            }
            return Ok(FetchResult {
                response,
                final_url: current,
                redirects,
                latency_ms: latency_total,
            });
        }
    }

    /// Snapshot of the shared metrics.
    pub fn metrics(&self) -> TransportMetrics {
        *self.metrics.lock()
    }

    /// The fault injector in effect.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The underlying simulated web.
    pub fn internet(&self) -> &Internet {
        &self.internet
    }

    /// Mutate the shared metrics (policy-level counters live outside the
    /// fetch loop).
    pub(crate) fn with_metrics(&self, f: impl FnOnce(&mut TransportMetrics)) {
        f(&mut self.metrics.lock());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::host::StaticSite;
    use crate::http::Status;

    fn no_fault_client(net: Internet) -> Client {
        Client::new(net, FaultInjector::new(0, FaultConfig::none()))
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn fetch_success() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new().page("/", Response::html("<p>hi</p>")),
        );
        let client = no_fault_client(net);
        let res = client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(res.response.status, Status::OK);
        assert_eq!(res.response.body_text(), "<p>hi</p>");
        assert_eq!(res.redirects, 0);
        let m = client.metrics();
        assert_eq!(m.requests, 1);
        assert_eq!(m.responses, 1);
        assert!(m.bytes > 0);
    }

    #[test]
    fn fetch_follows_redirects() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new()
                .page("/", Response::redirect(Status::MOVED_PERMANENTLY, "/new"))
                .page("/new", Response::html("here")),
        );
        let client = no_fault_client(net);
        let res = client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(res.response.body_text(), "here");
        assert_eq!(res.redirects, 1);
        assert_eq!(res.final_url.path, "/new");
        assert_eq!(client.metrics().redirects, 1);
    }

    #[test]
    fn redirect_loop_errors() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new()
                .page("/x", Response::redirect(Status::FOUND, "/y"))
                .page("/y", Response::redirect(Status::FOUND, "/x")),
        );
        let client = no_fault_client(net);
        let err = client.fetch(&url("https://a.com/x")).unwrap_err();
        assert!(matches!(err, FetchError::TooManyRedirects(_)));
    }

    #[test]
    fn dns_failure_for_unknown_host() {
        let client = no_fault_client(Internet::new());
        let err = client.fetch(&url("https://nowhere.com/")).unwrap_err();
        assert_eq!(err, FetchError::DnsFailure("nowhere.com".into()));
        assert_eq!(client.metrics().dns_failures, 1);
    }

    #[test]
    fn blocked_domain_serves_403() {
        let net = Internet::new();
        net.register("a.com", StaticSite::new().page("/", Response::html("x")));
        let cfg = FaultConfig {
            block_crawlers: 1.0,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let res = client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(res.response.status, Status::FORBIDDEN);
    }

    #[test]
    fn timeout_domain_errors() {
        let net = Internet::new();
        net.register("a.com", StaticSite::new());
        let cfg = FaultConfig {
            timeout: 1.0,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        assert!(matches!(
            client.fetch(&url("https://a.com/")),
            Err(FetchError::Timeout(_))
        ));
        assert_eq!(client.metrics().timeouts, 1);
    }

    #[test]
    fn cross_host_redirect() {
        let net = Internet::new();
        net.register(
            "old.com",
            StaticSite::new().page("/", Response::redirect(Status::FOUND, "https://new.com/p")),
        );
        net.register(
            "new.com",
            StaticSite::new().page("/p", Response::html("moved")),
        );
        let client = no_fault_client(net);
        let res = client.fetch(&url("https://old.com/")).unwrap();
        assert_eq!(res.final_url.host, "new.com");
        assert_eq!(res.response.body_text(), "moved");
    }

    #[test]
    fn latency_accumulates_across_redirect_hops() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new()
                .page("/", Response::redirect(Status::FOUND, "/hop1"))
                .page("/hop1", Response::redirect(Status::FOUND, "/hop2"))
                .page("/hop2", Response::html("done")),
        );
        let cfg = FaultConfig {
            base_latency_ms: 100,
            jitter_ms: 0,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let res = client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(res.redirects, 2);
        assert_eq!(res.latency_ms, 300, "one base latency per hop");
        assert_eq!(client.metrics().latency_ms, 300);
    }

    #[test]
    fn byte_accounting_covers_redirect_bodies() {
        let net = Internet::new();
        net.register(
            "a.com",
            StaticSite::new().page("/", Response::html("0123456789")),
        );
        let client = no_fault_client(net);
        client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(client.metrics().bytes, 10);
        assert_eq!(client.metrics().responses, 1);
    }

    #[test]
    fn fetch_error_domain_and_display_cover_every_variant() {
        // Exhaustive: constructing each variant here means a new variant
        // fails to compile this test until it is added with coverage.
        let all = [
            FetchError::DnsFailure("a.com".into()),
            FetchError::ConnectFailure("a.com".into()),
            FetchError::ConnReset("a.com".into()),
            FetchError::Timeout("a.com".into()),
            FetchError::RateLimited {
                domain: "a.com".into(),
                retry_after_ms: 750,
            },
            FetchError::TooManyRedirects("a.com".into()),
            FetchError::BadRedirect("a.com".into()),
            FetchError::CircuitOpen("a.com".into()),
        ];
        let mut renderings = std::collections::BTreeSet::new();
        for err in &all {
            assert_eq!(err.domain(), "a.com", "{err:?}");
            let text = err.to_string();
            assert!(text.contains("a.com"), "display misses domain: {text}");
            renderings.insert(text);
        }
        assert_eq!(renderings.len(), all.len(), "display strings collide");
        assert!(all[0].to_string().contains("dns"));
        assert!(all[4].to_string().contains("750ms"));
    }

    #[test]
    fn retryability_classification() {
        assert!(FetchError::ConnReset("a".into()).is_retryable());
        assert!(FetchError::Timeout("a".into()).is_retryable());
        assert!(FetchError::RateLimited {
            domain: "a".into(),
            retry_after_ms: 0
        }
        .is_retryable());
        assert!(!FetchError::DnsFailure("a".into()).is_retryable());
        assert!(!FetchError::ConnectFailure("a".into()).is_retryable());
        assert!(!FetchError::TooManyRedirects("a".into()).is_retryable());
        assert!(!FetchError::BadRedirect("a".into()).is_retryable());
        assert!(!FetchError::CircuitOpen("a".into()).is_retryable());
    }

    #[test]
    fn transient_burst_clears_with_attempts() {
        let net = Internet::new();
        net.register("a.com", StaticSite::new().page("/", Response::html("up")));
        let cfg = FaultConfig {
            conn_reset: 1.0,
            burst_max: 2,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let burst = (0..4)
            .take_while(|&a| client.fetch_attempt(&url("https://a.com/"), a).is_err())
            .count() as u32;
        assert!(
            (1..=2).contains(&burst),
            "burst {burst} outside 1..=burst_max"
        );
        let res = client.fetch_attempt(&url("https://a.com/"), burst).unwrap();
        assert_eq!(res.response.body_text(), "up");
        let m = client.metrics();
        assert_eq!(m.resets, burst as u64);
        assert!(m.is_conserved(), "{m:?}");
    }

    #[test]
    fn rate_limit_carries_retry_after() {
        let net = Internet::new();
        net.register("a.com", StaticSite::new().page("/", Response::html("x")));
        let cfg = FaultConfig {
            rate_limit: 1.0,
            burst_max: 1,
            retry_after_ms: 900,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let err = client.fetch(&url("https://a.com/")).unwrap_err();
        assert_eq!(
            err,
            FetchError::RateLimited {
                domain: "a.com".into(),
                retry_after_ms: 900
            }
        );
        assert_eq!(client.metrics().rate_limited, 1);
        assert!(client.fetch_attempt(&url("https://a.com/"), 1).is_ok());
    }

    #[test]
    fn flaky_5xx_delivers_503_then_recovers() {
        let net = Internet::new();
        net.register("a.com", StaticSite::new().page("/", Response::html("ok")));
        let cfg = FaultConfig {
            flaky_5xx: 1.0,
            burst_max: 1,
            ..FaultConfig::none()
        };
        let client = Client::new(net, FaultInjector::new(0, cfg));
        let first = client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(first.response.status, Status::SERVICE_UNAVAILABLE);
        let second = client.fetch_attempt(&url("https://a.com/"), 1).unwrap();
        assert_eq!(second.response.body_text(), "ok");
        let m = client.metrics();
        assert_eq!(m.server_errors, 1);
        assert_eq!(m.responses, 2);
        assert!(m.is_conserved(), "{m:?}");
    }

    #[test]
    fn metrics_shared_across_clones() {
        let net = Internet::new();
        net.register("a.com", StaticSite::new().page("/", Response::html("x")));
        let client = no_fault_client(net);
        let clone = client.clone();
        clone.fetch(&url("https://a.com/")).unwrap();
        client.fetch(&url("https://a.com/")).unwrap();
        assert_eq!(client.metrics().requests, 2);
    }
}
