//! A minimal URL type sufficient for same-site crawling.
//!
//! Supports `http`/`https` schemes, host, and path (query strings and
//! fragments are parsed but dropped from the normalized form — crawlers
//! treat `/privacy?x=1` and `/privacy#top` as the page `/privacy`).

use serde::{Deserialize, Serialize};

/// A parsed, normalized URL.
///
/// ```
/// use aipan_net::Url;
///
/// let base = Url::parse("https://www.acme.com/legal/privacy?lang=en").unwrap();
/// assert_eq!(base.path, "/legal/privacy");          // query dropped
/// assert_eq!(base.domain(), "acme.com");            // registrable domain
/// let joined = base.join("../privacy-policy").unwrap();
/// assert_eq!(joined.to_string(), "https://www.acme.com/privacy-policy");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Lower-cased host, e.g. `www.acme.com`.
    pub host: String,
    /// Absolute path beginning with `/`, with a trailing slash stripped
    /// (except for the root path itself).
    pub path: String,
}

/// Error parsing or resolving a URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlError {
    /// The scheme is not http/https (e.g. `mailto:`, `javascript:`).
    UnsupportedScheme(String),
    /// The input had no usable host.
    MissingHost,
    /// A relative reference was given without a base.
    RelativeWithoutBase,
}

impl std::fmt::Display for UrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UrlError::UnsupportedScheme(s) => write!(f, "unsupported scheme: {s}"),
            UrlError::MissingHost => write!(f, "missing host"),
            UrlError::RelativeWithoutBase => write!(f, "relative reference without a base URL"),
        }
    }
}

impl std::error::Error for UrlError {}

impl Url {
    /// Parse an absolute URL.
    pub fn parse(input: &str) -> Result<Url, UrlError> {
        let input = input.trim();
        let (scheme, rest) = match input.split_once("://") {
            Some((s, r)) => (s.to_ascii_lowercase(), r),
            None => {
                if let Some((s, _)) = input.split_once(':') {
                    // mailto:, javascript:, tel:, data:
                    return Err(UrlError::UnsupportedScheme(s.to_ascii_lowercase()));
                }
                return Err(UrlError::RelativeWithoutBase);
            }
        };
        if scheme != "http" && scheme != "https" {
            return Err(UrlError::UnsupportedScheme(scheme));
        }
        let (host, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        let host = host
            .split('@')
            .next_back()
            .unwrap_or(host)
            .split(':')
            .next()
            .unwrap_or(host)
            .to_ascii_lowercase();
        if host.is_empty() {
            return Err(UrlError::MissingHost);
        }
        Ok(Url {
            scheme,
            host,
            path: normalize_path(path),
        })
    }

    /// Resolve `reference` against this base URL. Handles absolute URLs,
    /// protocol-relative (`//host/p`), absolute paths (`/p`), and relative
    /// paths (`p`, `../p`).
    pub fn join(&self, reference: &str) -> Result<Url, UrlError> {
        let reference = reference.trim();
        if reference.is_empty() {
            return Ok(self.clone());
        }
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        if reference.contains("://") {
            return Url::parse(reference);
        }
        if let Some((scheme, _)) = reference.split_once(':') {
            if scheme.chars().all(|c| c.is_ascii_alphabetic()) && !scheme.is_empty() {
                // mailto:, javascript:, tel: — unsupported.
                return Err(UrlError::UnsupportedScheme(scheme.to_ascii_lowercase()));
            }
        }
        let path = if let Some(p) = reference.strip_prefix('/') {
            format!("/{p}")
        } else {
            // Relative to the base path's directory.
            let dir = match self.path.rfind('/') {
                Some(idx) => &self.path[..=idx],
                None => "/",
            };
            format!("{dir}{reference}")
        };
        Ok(Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            path: normalize_path(&path),
        })
    }

    /// Registrable-domain heuristic: last two labels of the host
    /// (`shop.acme.com` → `acme.com`).
    pub fn domain(&self) -> String {
        let labels: Vec<&str> = self.host.split('.').collect();
        if labels.len() <= 2 {
            self.host.clone()
        } else {
            labels[labels.len() - 2..].join(".")
        }
    }

    /// Whether `other` is on the same registrable domain.
    pub fn same_site(&self, other: &Url) -> bool {
        self.domain() == other.domain()
    }

    /// File extension of the path, lower-cased, if any.
    pub fn extension(&self) -> Option<String> {
        let last = self.path.rsplit('/').next()?;
        let (_, ext) = last.rsplit_once('.')?;
        if ext.is_empty() || ext.len() > 5 {
            None
        } else {
            Some(ext.to_ascii_lowercase())
        }
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

/// Normalize a path: strip query/fragment, resolve `.`/`..` segments,
/// collapse `//`, strip one trailing slash (keeping `/`).
fn normalize_path(path: &str) -> String {
    let path = path.split(['?', '#']).next().unwrap_or(path);
    // Typical paths are shallow; one reallocation at most for deep ones.
    let mut segments: Vec<&str> = Vec::with_capacity(8);
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                segments.pop();
            }
            s => segments.push(s),
        }
    }
    if segments.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", segments.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let u = Url::parse("https://www.Acme.com/Privacy-Policy").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "www.acme.com");
        assert_eq!(u.path, "/Privacy-Policy");
        assert_eq!(u.to_string(), "https://www.acme.com/Privacy-Policy");
    }

    #[test]
    fn parse_no_path() {
        let u = Url::parse("http://acme.com").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn parse_strips_port_and_userinfo() {
        let u = Url::parse("https://user@acme.com:8443/x").unwrap();
        assert_eq!(u.host, "acme.com");
    }

    #[test]
    fn query_and_fragment_dropped() {
        let u = Url::parse("https://acme.com/privacy?lang=en#top").unwrap();
        assert_eq!(u.path, "/privacy");
    }

    #[test]
    fn unsupported_schemes_rejected() {
        assert!(matches!(
            Url::parse("mailto:privacy@acme.com"),
            Err(UrlError::UnsupportedScheme(s)) if s == "mailto"
        ));
        assert!(Url::parse("javascript:void(0)").is_err());
    }

    #[test]
    fn join_absolute_path() {
        let base = Url::parse("https://acme.com/legal/privacy").unwrap();
        let u = base.join("/privacy-policy").unwrap();
        assert_eq!(u.to_string(), "https://acme.com/privacy-policy");
    }

    #[test]
    fn join_relative_path() {
        let base = Url::parse("https://acme.com/legal/privacy").unwrap();
        assert_eq!(base.join("cookies").unwrap().path, "/legal/cookies");
        assert_eq!(base.join("../about").unwrap().path, "/about");
        assert_eq!(base.join("").unwrap(), base);
    }

    #[test]
    fn join_absolute_url_and_protocol_relative() {
        let base = Url::parse("https://acme.com/").unwrap();
        let u = base.join("http://other.com/p").unwrap();
        assert_eq!(u.host, "other.com");
        assert_eq!(u.scheme, "http");
        let v = base.join("//cdn.acme.com/a").unwrap();
        assert_eq!(v.scheme, "https");
        assert_eq!(v.host, "cdn.acme.com");
    }

    #[test]
    fn join_rejects_mailto() {
        let base = Url::parse("https://acme.com/").unwrap();
        assert!(base.join("mailto:x@y.com").is_err());
    }

    #[test]
    fn dot_segments_resolved() {
        let u = Url::parse("https://a.com/x/./y/../z//w").unwrap();
        assert_eq!(u.path, "/x/z/w");
        let v = Url::parse("https://a.com/../..").unwrap();
        assert_eq!(v.path, "/");
    }

    #[test]
    fn trailing_slash_normalized() {
        let a = Url::parse("https://a.com/privacy/").unwrap();
        let b = Url::parse("https://a.com/privacy").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn domain_and_same_site() {
        let a = Url::parse("https://www.acme.com/").unwrap();
        let b = Url::parse("https://shop.acme.com/x").unwrap();
        let c = Url::parse("https://other.com/").unwrap();
        assert_eq!(a.domain(), "acme.com");
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
    }

    #[test]
    fn extension() {
        assert_eq!(
            Url::parse("https://a.com/p/policy.pdf")
                .unwrap()
                .extension(),
            Some("pdf".into())
        );
        assert_eq!(
            Url::parse("https://a.com/p/policy").unwrap().extension(),
            None
        );
        assert_eq!(Url::parse("https://a.com/").unwrap().extension(), None);
    }
}
