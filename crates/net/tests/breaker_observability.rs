//! Integration test: the circuit breaker's full lifecycle is observable
//! through the public `aipan_net` API — Closed under transient noise, Open
//! after a threshold of failures, short-circuiting while Open, HalfOpen
//! after the cool-down, and Closed again once a probe succeeds — and the
//! transport counters stay conserved throughout.

use aipan_net::fault::{FaultConfig, FaultInjector, TransientFault};
use aipan_net::host::StaticSite;
use aipan_net::{BreakerState, Client, FetchError, Internet, Response, RetryPolicy, Url};

fn url(s: &str) -> Url {
    Url::parse(s).expect("static test url parses")
}

#[test]
fn breaker_lifecycle_is_observable_end_to_end() {
    // One host, two paths. Transient episodes are drawn per (domain, path),
    // so pick a seed — deterministically, via the injector's own oracle —
    // where /flaky resets on its first attempt and /solid does not. With a
    // single-attempt policy, /flaky then fails every fetch while /solid
    // always lands.
    let cfg = FaultConfig {
        conn_reset: 0.5,
        burst_max: 2,
        base_latency_ms: 0,
        jitter_ms: 0,
        ..FaultConfig::none()
    };
    let seed = (0..100u64)
        .find(|&s| {
            let probe = FaultInjector::new(s, cfg);
            probe.transient("a.com", "/flaky", 0) != TransientFault::None
                && probe.transient("a.com", "/solid", 0) == TransientFault::None
        })
        .expect("some seed separates the two paths");

    let net = Internet::new();
    net.register(
        "a.com",
        StaticSite::new()
            .page("/flaky", Response::html("eventually"))
            .page("/solid", Response::html("always")),
    );
    let client = Client::new(net, FaultInjector::new(seed, cfg));
    let policy = RetryPolicy {
        max_attempts: 1,
        breaker_threshold: 2,
        breaker_cooldown_ms: 500,
        ..RetryPolicy::default()
    };
    let mut session = client.session(9, policy);

    // Fresh session: breaker closed for a host it has never seen.
    assert_eq!(session.breaker_state("a.com"), BreakerState::Closed);

    // Two single-attempt failures against the flaky path trip the threshold.
    assert!(session.fetch(&url("https://a.com/flaky")).is_err());
    assert_eq!(session.breaker_state("a.com"), BreakerState::Closed);
    assert!(session.fetch(&url("https://a.com/flaky")).is_err());
    assert_eq!(session.breaker_state("a.com"), BreakerState::Open);

    // While open, fetches short-circuit without touching the transport —
    // even for the healthy path, since the breaker guards the whole host.
    let requests_when_opened = client.metrics().requests;
    assert!(matches!(
        session.fetch(&url("https://a.com/solid")),
        Err(FetchError::CircuitOpen(_))
    ));
    assert_eq!(client.metrics().requests, requests_when_opened);

    // The cool-down elapses on the simulated clock; a failed half-open
    // probe against the still-flaky path re-opens the breaker immediately.
    session.advance(500);
    assert_eq!(session.breaker_state("a.com"), BreakerState::HalfOpen);
    assert!(session.fetch(&url("https://a.com/flaky")).is_err());
    assert_eq!(session.breaker_state("a.com"), BreakerState::Open);

    // After another cool-down, a probe against the healthy path lands and
    // the breaker recloses; normal traffic resumes.
    session.advance(500);
    assert_eq!(session.breaker_state("a.com"), BreakerState::HalfOpen);
    let res = session
        .fetch(&url("https://a.com/solid"))
        .expect("half-open probe against the healthy path lands");
    assert_eq!(res.response.body_text(), "always");
    assert_eq!(session.breaker_state("a.com"), BreakerState::Closed);

    // Breaker state is per-host: the exercised host never contaminates a
    // sibling, and the books still balance.
    assert_eq!(session.breaker_state("b.com"), BreakerState::Closed);
    let m = client.metrics();
    assert!(m.breaker_opens >= 2, "{m:?}");
    assert!(m.is_conserved(), "{m:?}");
}
