//! The nine privacy-policy section aspects of Section 3.2.1.

use serde::{Deserialize, Serialize};

/// A privacy-policy *aspect*: the topic a section of the policy discusses.
///
/// Segmentation (Appendix B of the paper) assigns one or more aspects to
/// every section of a crawled policy; the annotation tasks then consume the
/// text of the four aspects that are the focus of the study
/// ([`Aspect::Types`], [`Aspect::Purposes`], [`Aspect::Handling`],
/// [`Aspect::Rights`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Aspect {
    /// What types or categories of data are collected.
    Types,
    /// How data may be collected (methods, sources, tools).
    Methods,
    /// Why data is collected and how it is used.
    Purposes,
    /// How collected data is handled, stored, retained, or protected.
    Handling,
    /// Whether and how data is shared with or disclosed to third parties.
    Sharing,
    /// User rights, choices, and controls (access, edit, deletion, opt-out).
    Rights,
    /// Information for specific audiences (children, California, Europe, ...).
    Audiences,
    /// If and how users will be informed of policy changes.
    Changes,
    /// Introductory/generic statements, contact info, anything else.
    Other,
}

impl Aspect {
    /// All nine aspects, in the order the paper lists them.
    pub const ALL: [Aspect; 9] = [
        Aspect::Types,
        Aspect::Methods,
        Aspect::Purposes,
        Aspect::Handling,
        Aspect::Sharing,
        Aspect::Rights,
        Aspect::Audiences,
        Aspect::Changes,
        Aspect::Other,
    ];

    /// The four aspects whose text feeds the annotation tasks of §3.2.2.
    pub const ANNOTATED: [Aspect; 4] = [
        Aspect::Types,
        Aspect::Purposes,
        Aspect::Handling,
        Aspect::Rights,
    ];

    /// Lower-case key used in prompts and serialized outputs.
    pub fn key(self) -> &'static str {
        match self {
            Aspect::Types => "types",
            Aspect::Methods => "methods",
            Aspect::Purposes => "purposes",
            Aspect::Handling => "handling",
            Aspect::Sharing => "sharing",
            Aspect::Rights => "rights",
            Aspect::Audiences => "audiences",
            Aspect::Changes => "changes",
            Aspect::Other => "other",
        }
    }

    /// Parse a lower-case aspect key as emitted by the chatbot tasks.
    pub fn from_key(key: &str) -> Option<Aspect> {
        Aspect::ALL.iter().copied().find(|a| a.key() == key)
    }

    /// One-line description of the aspect, as used in the section-heading
    /// labeling prompt (Figure 2a).
    pub fn description(self) -> &'static str {
        match self {
            Aspect::Types => "What types or categories of data are collected.",
            Aspect::Methods => {
                "How data may be collected, including methods, sources, or tools used for data collection."
            }
            Aspect::Purposes => {
                "What are the purposes of data collection, including why data is collected and how it is used."
            }
            Aspect::Handling => {
                "How the collected data is handled, stored, or protected, including data processing, data retention, and security mechanisms."
            }
            Aspect::Sharing => {
                "Whether and how data is shared with or disclosed to third parties."
            }
            Aspect::Rights => {
                "User rights, choices, and controls, including access, edit, deletion, and opt-out options."
            }
            Aspect::Audiences => {
                "Information related to specific audiences, e.g., children or users from California, Europe, etc."
            }
            Aspect::Changes => "If and how users will be informed of changes.",
            Aspect::Other => {
                "Information not covered above, including introductory or generic statements, contact information, and other information not directly related to data privacy."
            }
        }
    }

    /// Example section headings relevant to this aspect; the glossary block of
    /// the heading-labeling prompt (Figure 2a).
    pub fn heading_glossary(self) -> &'static [&'static str] {
        match self {
            Aspect::Types => &[
                "Information we collect",
                "Types of data collected",
                "Categories of personal data",
                "Personal information we collect",
                "What information do we collect",
            ],
            Aspect::Methods => &[
                "How we collect information",
                "Data collection methods",
                "Sources of data we collect",
                "Cookies and tracking technologies",
            ],
            Aspect::Purposes => &[
                "Why do we collect your data",
                "How we use the information we collect",
                "Purpose of data collection",
                "Use of personal information",
            ],
            Aspect::Handling => &[
                "How we protect your information",
                "Data retention",
                "Data security",
                "How long we keep your information",
            ],
            Aspect::Sharing => &[
                "How we share your information",
                "Disclosure of personal information",
                "Third parties",
                "Who we share data with",
            ],
            Aspect::Rights => &[
                "Your rights and choices",
                "Your privacy rights",
                "Opt-out options",
                "Access and correction",
                "Managing your information",
            ],
            Aspect::Audiences => &[
                "Children's privacy",
                "California residents",
                "European users",
                "Notice to Nevada residents",
            ],
            Aspect::Changes => &[
                "Changes to this policy",
                "Policy updates",
                "Amendments to this notice",
            ],
            Aspect::Other => &[
                "Contact us",
                "Introduction",
                "About this policy",
                "Definitions",
            ],
        }
    }
}

impl std::fmt::Display for Aspect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_keys() {
        for a in Aspect::ALL {
            assert_eq!(Aspect::from_key(a.key()), Some(a));
        }
    }

    #[test]
    fn unknown_key_is_none() {
        assert_eq!(Aspect::from_key("bogus"), None);
        assert_eq!(Aspect::from_key(""), None);
        assert_eq!(Aspect::from_key("Types"), None, "keys are lower-case");
    }

    #[test]
    fn annotated_is_subset_of_all() {
        for a in Aspect::ANNOTATED {
            assert!(Aspect::ALL.contains(&a));
        }
    }

    #[test]
    fn nine_distinct_aspects() {
        let mut keys: Vec<_> = Aspect::ALL.iter().map(|a| a.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 9);
    }

    #[test]
    fn every_aspect_has_glossary_and_description() {
        for a in Aspect::ALL {
            assert!(!a.description().is_empty());
            assert!(!a.heading_glossary().is_empty());
        }
    }
}
