//! Collected data-type taxonomy: 6 meta-categories, 34 categories, and the
//! normalized-descriptor vocabulary (Tables 1 and 4 of the paper).
//!
//! Each [`DescriptorSpec`] carries the canonical descriptor string, its
//! category, the *surface forms* that normalize onto it (the paper's example:
//! both "mailing address" and "home address" map to "postal address"), and a
//! within-category popularity weight used by the synthetic-policy generator
//! to match the descriptor frequency columns of Table 4.

use serde::{Deserialize, Serialize};

/// One of the six data-type meta-categories (outer grouping of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataTypeMeta {
    /// Identity attributes of a natural person (contact details, identifiers,
    /// professional/educational background, demographics, vehicles).
    PhysicalProfile,
    /// Attributes of the user's digital presence (devices, online
    /// identifiers, accounts, connectivity, social media, external data).
    DigitalProfile,
    /// Biological and health attributes.
    BioHealthProfile,
    /// Financial and legal attributes.
    FinancialLegalProfile,
    /// Behaviour in the physical world (location, travel, in-store).
    PhysicalBehavior,
    /// Behaviour in the digital world (browsing, tracking, usage,
    /// transactions, content, communications, diagnostics).
    DigitalBehavior,
}

impl DataTypeMeta {
    /// All six meta-categories in Table 4 order.
    pub const ALL: [DataTypeMeta; 6] = [
        DataTypeMeta::PhysicalProfile,
        DataTypeMeta::DigitalProfile,
        DataTypeMeta::BioHealthProfile,
        DataTypeMeta::FinancialLegalProfile,
        DataTypeMeta::PhysicalBehavior,
        DataTypeMeta::DigitalBehavior,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DataTypeMeta::PhysicalProfile => "Physical profile",
            DataTypeMeta::DigitalProfile => "Digital profile",
            DataTypeMeta::BioHealthProfile => "Bio/health profile",
            DataTypeMeta::FinancialLegalProfile => "Financial/legal profile",
            DataTypeMeta::PhysicalBehavior => "Physical behavior",
            DataTypeMeta::DigitalBehavior => "Digital behavior",
        }
    }

    /// The categories belonging to this meta-category, in Table 4 order.
    pub fn categories(self) -> &'static [DataTypeCategory] {
        use DataTypeCategory::*;
        match self {
            DataTypeMeta::PhysicalProfile => &[
                ContactInfo,
                PersonalIdentifier,
                ProfessionalInfo,
                DemographicInfo,
                EducationalInfo,
                VehicleInfo,
            ],
            DataTypeMeta::DigitalProfile => &[
                DeviceInfo,
                OnlineIdentifier,
                AccountInfo,
                NetworkConnectivity,
                SocialMediaData,
                ExternalData,
            ],
            DataTypeMeta::BioHealthProfile => &[
                MedicalInfo,
                BiometricData,
                PhysicalCharacteristic,
                FitnessHealth,
            ],
            DataTypeMeta::FinancialLegalProfile => {
                &[FinancialInfo, LegalInfo, FinancialCapability, InsuranceInfo]
            }
            DataTypeMeta::PhysicalBehavior => &[
                PreciseLocation,
                ApproximateLocation,
                TravelData,
                PhysicalInteraction,
            ],
            DataTypeMeta::DigitalBehavior => &[
                InternetUsage,
                TrackingData,
                ProductServiceUsage,
                TransactionInfo,
                Preferences,
                ContentGeneration,
                CommunicationData,
                FeedbackData,
                ContentConsumption,
                DiagnosticData,
            ],
        }
    }

    /// Stable dense index (0..6); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for DataTypeMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the 34 data-type categories (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataTypeCategory {
    // Physical profile
    /// Email, postal address, phone — ways to reach a person.
    ContactInfo,
    /// Names, SSNs, government IDs, and other identifiers.
    PersonalIdentifier,
    /// Employment history, employer, job title.
    ProfessionalInfo,
    /// Gender, age, ethnicity, household attributes.
    DemographicInfo,
    /// Schools, degrees, academic records.
    EducationalInfo,
    /// VINs, registrations, telematics.
    VehicleInfo,
    // Digital profile
    /// Browser, OS, device identifiers and attributes.
    DeviceInfo,
    /// IP addresses, MAC addresses, advertising IDs.
    OnlineIdentifier,
    /// Usernames, passwords, account numbers.
    AccountInfo,
    /// ISP, connection type, network traffic.
    NetworkConnectivity,
    /// Handles, profiles, social content.
    SocialMediaData,
    /// Data acquired from third parties and inferences.
    ExternalData,
    // Bio/health profile
    /// Conditions, history, prescriptions.
    MedicalInfo,
    /// Fingerprints, face/voice/iris biometrics.
    BiometricData,
    /// Height, weight, appearance.
    PhysicalCharacteristic,
    /// Activity, sleep, wellness metrics.
    FitnessHealth,
    // Financial/legal profile
    /// Payment cards, bank accounts, billing.
    FinancialInfo,
    /// Signatures, background checks, criminal records.
    LegalInfo,
    /// Income, credit history and scores, assets.
    FinancialCapability,
    /// Policies, claims, coverage.
    InsuranceInfo,
    // Physical behavior
    /// GPS-grade location.
    PreciseLocation,
    /// Country, region, ZIP-level location.
    ApproximateLocation,
    /// Movement patterns, trips, itineraries.
    TravelData,
    /// In-store visits, event participation.
    PhysicalInteraction,
    // Digital behavior
    /// Browsing, search, click behavior.
    InternetUsage,
    /// Cookies, beacons, pixels.
    TrackingData,
    /// Engagement with sites, apps, and services.
    ProductServiceUsage,
    /// Purchases, orders, commercial records.
    TransactionInfo,
    /// Language, product, and communication preferences.
    Preferences,
    /// Uploads, posts, recordings users create.
    ContentGeneration,
    /// Emails, calls, chats with the company.
    CommunicationData,
    /// Surveys, support interactions, reviews.
    FeedbackData,
    /// Content accessed, downloaded, viewed.
    ContentConsumption,
    /// Error, crash, and performance reports.
    DiagnosticData,
}

impl DataTypeCategory {
    /// All 34 categories, grouped by meta-category in Table 4 order.
    pub const ALL: [DataTypeCategory; 34] = [
        DataTypeCategory::ContactInfo,
        DataTypeCategory::PersonalIdentifier,
        DataTypeCategory::ProfessionalInfo,
        DataTypeCategory::DemographicInfo,
        DataTypeCategory::EducationalInfo,
        DataTypeCategory::VehicleInfo,
        DataTypeCategory::DeviceInfo,
        DataTypeCategory::OnlineIdentifier,
        DataTypeCategory::AccountInfo,
        DataTypeCategory::NetworkConnectivity,
        DataTypeCategory::SocialMediaData,
        DataTypeCategory::ExternalData,
        DataTypeCategory::MedicalInfo,
        DataTypeCategory::BiometricData,
        DataTypeCategory::PhysicalCharacteristic,
        DataTypeCategory::FitnessHealth,
        DataTypeCategory::FinancialInfo,
        DataTypeCategory::LegalInfo,
        DataTypeCategory::FinancialCapability,
        DataTypeCategory::InsuranceInfo,
        DataTypeCategory::PreciseLocation,
        DataTypeCategory::ApproximateLocation,
        DataTypeCategory::TravelData,
        DataTypeCategory::PhysicalInteraction,
        DataTypeCategory::InternetUsage,
        DataTypeCategory::TrackingData,
        DataTypeCategory::ProductServiceUsage,
        DataTypeCategory::TransactionInfo,
        DataTypeCategory::Preferences,
        DataTypeCategory::ContentGeneration,
        DataTypeCategory::CommunicationData,
        DataTypeCategory::FeedbackData,
        DataTypeCategory::ContentConsumption,
        DataTypeCategory::DiagnosticData,
    ];

    /// The meta-category this category belongs to.
    pub fn meta(self) -> DataTypeMeta {
        use DataTypeCategory::*;
        match self {
            ContactInfo | PersonalIdentifier | ProfessionalInfo | DemographicInfo
            | EducationalInfo | VehicleInfo => DataTypeMeta::PhysicalProfile,
            DeviceInfo | OnlineIdentifier | AccountInfo | NetworkConnectivity | SocialMediaData
            | ExternalData => DataTypeMeta::DigitalProfile,
            MedicalInfo | BiometricData | PhysicalCharacteristic | FitnessHealth => {
                DataTypeMeta::BioHealthProfile
            }
            FinancialInfo | LegalInfo | FinancialCapability | InsuranceInfo => {
                DataTypeMeta::FinancialLegalProfile
            }
            PreciseLocation | ApproximateLocation | TravelData | PhysicalInteraction => {
                DataTypeMeta::PhysicalBehavior
            }
            InternetUsage | TrackingData | ProductServiceUsage | TransactionInfo | Preferences
            | ContentGeneration | CommunicationData | FeedbackData | ContentConsumption
            | DiagnosticData => DataTypeMeta::DigitalBehavior,
        }
    }

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        use DataTypeCategory::*;
        match self {
            ContactInfo => "Contact info",
            PersonalIdentifier => "Personal identifier",
            ProfessionalInfo => "Professional info",
            DemographicInfo => "Demographic info",
            EducationalInfo => "Educational info",
            VehicleInfo => "Vehicle info",
            DeviceInfo => "Device info",
            OnlineIdentifier => "Online identifier",
            AccountInfo => "Account info",
            NetworkConnectivity => "Network connectivity",
            SocialMediaData => "Social media data",
            ExternalData => "External data",
            MedicalInfo => "Medical info",
            BiometricData => "Biometric data",
            PhysicalCharacteristic => "Physical characteristic",
            FitnessHealth => "Fitness & health",
            FinancialInfo => "Financial info",
            LegalInfo => "Legal info",
            FinancialCapability => "Financial capability",
            InsuranceInfo => "Insurance info",
            PreciseLocation => "Precise location",
            ApproximateLocation => "Approximate location",
            TravelData => "Travel data",
            PhysicalInteraction => "Physical interaction",
            InternetUsage => "Internet usage",
            TrackingData => "Tracking data",
            ProductServiceUsage => "Product/service usage",
            TransactionInfo => "Transaction info",
            Preferences => "Preferences",
            ContentGeneration => "Content generation",
            CommunicationData => "Communication data",
            FeedbackData => "Feedback data",
            ContentConsumption => "Content consumption",
            DiagnosticData => "Diagnostic data",
        }
    }

    /// Parse a table-style category name (case-insensitive).
    pub fn from_name(name: &str) -> Option<DataTypeCategory> {
        let lower = name.trim().to_ascii_lowercase();
        DataTypeCategory::ALL
            .iter()
            .copied()
            .find(|c| c.name().to_ascii_lowercase() == lower)
    }

    /// Stable dense index (0..34); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for DataTypeCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A normalized data-type descriptor together with the surface forms that
/// map onto it and its within-category popularity weight.
#[derive(Debug, Clone, Copy)]
pub struct DescriptorSpec {
    /// Canonical normalized descriptor, e.g. `"postal address"`.
    pub name: &'static str,
    /// Category the descriptor belongs to.
    pub category: DataTypeCategory,
    /// Surface forms (beyond `name` itself) that normalize to this
    /// descriptor. All forms are lower-case.
    pub surfaces: &'static [&'static str],
    /// Relative popularity within the category (arbitrary positive units,
    /// calibrated so the top-3 shares match Table 4).
    pub weight: f32,
}

macro_rules! dt {
    ($name:literal, $cat:ident, $w:literal, [$($s:literal),*]) => {
        DescriptorSpec {
            name: $name,
            category: DataTypeCategory::$cat,
            surfaces: &[$($s),*],
            weight: $w,
        }
    };
}

/// The full normalized-descriptor vocabulary for collected data types
/// (superset of the 125 descriptors mentioned in §3.2.2; the list is
/// intentionally non-exhaustive — the pipeline accepts zero-shot descriptors
/// outside this vocabulary).
pub static DATA_TYPE_DESCRIPTORS: &[DescriptorSpec] = &[
    // ---- Physical profile / Contact info ----
    dt!(
        "email address",
        ContactInfo,
        27.3,
        ["e-mail address", "email", "electronic mail address"]
    ),
    dt!(
        "postal address",
        ContactInfo,
        25.6,
        [
            "mailing address",
            "home address",
            "street address",
            "physical address",
            "billing address",
            "shipping address"
        ]
    ),
    dt!(
        "phone number",
        ContactInfo,
        25.1,
        [
            "telephone number",
            "mobile number",
            "cell phone number",
            "mobile phone number"
        ]
    ),
    dt!(
        "contact info",
        ContactInfo,
        12.0,
        ["contact information", "contact details", "contact data"]
    ),
    dt!("fax number", ContactInfo, 4.0, ["facsimile number"]),
    dt!(
        "emergency contact",
        ContactInfo,
        6.0,
        ["emergency contact details", "emergency contact information"]
    ),
    // ---- Physical profile / Personal identifier ----
    dt!(
        "name",
        PersonalIdentifier,
        31.0,
        ["full name", "first and last name", "legal name", "surname"]
    ),
    dt!(
        "unique personal identifier",
        PersonalIdentifier,
        11.7,
        ["unique identifier", "personal identifier", "customer id"]
    ),
    dt!(
        "social security number",
        PersonalIdentifier,
        8.6,
        ["ssn", "social security no"]
    ),
    dt!(
        "date of birth",
        PersonalIdentifier,
        8.0,
        ["birth date", "birthdate", "dob"]
    ),
    dt!(
        "driver's license",
        PersonalIdentifier,
        7.0,
        [
            "driver's license number",
            "drivers license",
            "driving license number"
        ]
    ),
    dt!(
        "passport",
        PersonalIdentifier,
        5.5,
        ["passport number", "passport details"]
    ),
    dt!(
        "government-issued identifier",
        PersonalIdentifier,
        5.0,
        [
            "government id",
            "government identification number",
            "national id number",
            "state identification card"
        ]
    ),
    dt!(
        "birth certificate",
        PersonalIdentifier,
        2.0,
        ["birth certificate details"]
    ),
    dt!(
        "photograph",
        PersonalIdentifier,
        4.0,
        ["photo id", "photographic identification"]
    ),
    // ---- Physical profile / Professional info ----
    dt!(
        "employment history",
        ProfessionalInfo,
        16.3,
        [
            "work history",
            "employment records",
            "employment background"
        ]
    ),
    dt!(
        "employer details",
        ProfessionalInfo,
        10.8,
        [
            "employer name",
            "employer information",
            "company you work for"
        ]
    ),
    dt!(
        "job title",
        ProfessionalInfo,
        10.5,
        ["position", "role", "occupation"]
    ),
    dt!(
        "professional info",
        ProfessionalInfo,
        9.0,
        [
            "professional information",
            "professional details",
            "employment-related information"
        ]
    ),
    dt!(
        "resume",
        ProfessionalInfo,
        6.0,
        ["cv", "curriculum vitae", "resume details"]
    ),
    dt!(
        "salary",
        ProfessionalInfo,
        4.0,
        ["compensation", "salary information", "pay history"]
    ),
    dt!(
        "professional certifications",
        ProfessionalInfo,
        3.5,
        ["professional licenses", "certifications"]
    ),
    // ---- Physical profile / Demographic info ----
    dt!("gender", DemographicInfo, 14.1, ["sex", "gender identity"]),
    dt!("age", DemographicInfo, 10.6, ["age range", "age group"]),
    dt!(
        "demographic info",
        DemographicInfo,
        9.9,
        [
            "demographic information",
            "demographic data",
            "demographics"
        ]
    ),
    dt!(
        "ethnicity",
        DemographicInfo,
        7.5,
        ["race", "racial or ethnic origin", "ethnic background"]
    ),
    dt!("marital status", DemographicInfo, 6.0, ["family status"]),
    dt!(
        "citizenship",
        DemographicInfo,
        5.0,
        [
            "citizenships held",
            "citizenship status",
            "nationality",
            "residency status"
        ]
    ),
    dt!(
        "household data",
        DemographicInfo,
        4.0,
        [
            "household information",
            "household composition",
            "number of dependents"
        ]
    ),
    dt!(
        "language",
        DemographicInfo,
        3.0,
        ["spoken language", "native language"]
    ),
    // ---- Physical profile / Educational info ----
    dt!(
        "educational info",
        EducationalInfo,
        30.7,
        [
            "educational information",
            "education details",
            "education history",
            "educational background"
        ]
    ),
    dt!(
        "schools attended",
        EducationalInfo,
        6.4,
        ["institutions attended", "university attended"]
    ),
    dt!(
        "degrees earned",
        EducationalInfo,
        5.5,
        ["degrees", "qualifications", "diplomas"]
    ),
    dt!(
        "academic records",
        EducationalInfo,
        5.0,
        ["transcripts", "grades"]
    ),
    dt!(
        "student status",
        EducationalInfo,
        3.0,
        ["enrollment status"]
    ),
    // ---- Physical profile / Vehicle info ----
    dt!(
        "vehicle info",
        VehicleInfo,
        14.3,
        ["vehicle information", "vehicle details", "vehicle data"]
    ),
    dt!("vin", VehicleInfo, 10.2, ["vehicle identification number"]),
    dt!(
        "vehicle registration",
        VehicleInfo,
        5.6,
        ["registration details", "vehicle registration number"]
    ),
    dt!(
        "license plate number",
        VehicleInfo,
        5.0,
        ["license plate", "number plate"]
    ),
    dt!(
        "vehicle telematics",
        VehicleInfo,
        3.0,
        ["driving behavior data", "odometer reading"]
    ),
    // ---- Digital profile / Device info ----
    dt!(
        "browser type",
        DeviceInfo,
        22.4,
        [
            "type of browser",
            "browser version",
            "type of browser software",
            "web browser type"
        ]
    ),
    dt!(
        "operating system",
        DeviceInfo,
        15.6,
        [
            "type of operating system",
            "os version",
            "operating system version"
        ]
    ),
    dt!(
        "device identifier",
        DeviceInfo,
        12.9,
        [
            "device id",
            "unique device identifier",
            "device serial number"
        ]
    ),
    dt!(
        "device type",
        DeviceInfo,
        9.0,
        ["type of device", "device model", "hardware model"]
    ),
    dt!(
        "device settings",
        DeviceInfo,
        5.0,
        ["device configuration", "device attributes"]
    ),
    dt!(
        "screen resolution",
        DeviceInfo,
        3.5,
        ["display size", "screen size"]
    ),
    dt!(
        "device info",
        DeviceInfo,
        8.0,
        [
            "device information",
            "device data",
            "information about your device"
        ]
    ),
    // ---- Digital profile / Online identifier ----
    dt!(
        "ip address",
        OnlineIdentifier,
        65.5,
        [
            "internet protocol address",
            "internet address",
            "ip addresses"
        ]
    ),
    dt!(
        "online identifier",
        OnlineIdentifier,
        9.1,
        ["online identifiers", "digital identifier"]
    ),
    dt!("domain name", OnlineIdentifier, 3.9, ["domain"]),
    dt!(
        "mac address",
        OnlineIdentifier,
        3.0,
        ["media access control address"]
    ),
    dt!(
        "advertising identifier",
        OnlineIdentifier,
        4.0,
        ["advertising id", "mobile advertising identifier", "idfa"]
    ),
    // ---- Digital profile / Account info ----
    dt!(
        "username",
        AccountInfo,
        30.1,
        ["user name", "user id", "login name", "screen name"]
    ),
    dt!(
        "password",
        AccountInfo,
        19.1,
        ["passwords", "account password"]
    ),
    dt!(
        "account info",
        AccountInfo,
        9.0,
        ["account information", "account details", "account data"]
    ),
    dt!(
        "account number",
        AccountInfo,
        6.0,
        ["membership number", "customer number"]
    ),
    dt!(
        "security questions",
        AccountInfo,
        4.0,
        ["security question answers", "password hints"]
    ),
    dt!(
        "login credentials",
        AccountInfo,
        5.0,
        ["login information", "sign-in information", "login details"]
    ),
    // ---- Digital profile / Network connectivity ----
    dt!(
        "isp",
        NetworkConnectivity,
        21.6,
        ["internet service provider", "internet provider"]
    ),
    dt!(
        "internet connection",
        NetworkConnectivity,
        17.3,
        ["connection type", "connection information"]
    ),
    dt!(
        "network traffic",
        NetworkConnectivity,
        8.0,
        ["traffic data", "network activity"]
    ),
    dt!(
        "wifi network",
        NetworkConnectivity,
        5.0,
        ["wi-fi network information", "wireless network"]
    ),
    dt!("connection speed", NetworkConnectivity, 4.0, ["bandwidth"]),
    // ---- Digital profile / Social media data ----
    dt!(
        "social media handle",
        SocialMediaData,
        23.4,
        [
            "social media username",
            "social media account name",
            "social media profile"
        ]
    ),
    dt!(
        "profile picture",
        SocialMediaData,
        19.1,
        ["profile photo", "avatar"]
    ),
    dt!(
        "social media data",
        SocialMediaData,
        9.4,
        [
            "social media information",
            "social network data",
            "social media content"
        ]
    ),
    dt!(
        "friends list",
        SocialMediaData,
        4.0,
        ["contact list", "connections", "followers"]
    ),
    dt!(
        "social media posts",
        SocialMediaData,
        4.0,
        ["shares", "likes", "social posts"]
    ),
    // ---- Digital profile / External data ----
    dt!(
        "third-party data",
        ExternalData,
        24.8,
        [
            "data from third parties",
            "information from third parties",
            "third party sources"
        ]
    ),
    dt!(
        "data from partners",
        ExternalData,
        17.2,
        ["partner data", "information from business partners"]
    ),
    dt!(
        "inferences",
        ExternalData,
        5.6,
        ["inferred data", "derived data", "inferences drawn"]
    ),
    dt!(
        "public records data",
        ExternalData,
        5.0,
        ["publicly available information", "public sources"]
    ),
    dt!(
        "data broker data",
        ExternalData,
        4.0,
        ["data from data brokers"]
    ),
    // ---- Bio/health profile / Medical info ----
    dt!(
        "medical info",
        MedicalInfo,
        14.7,
        [
            "medical information",
            "health information",
            "health data",
            "medical data"
        ]
    ),
    dt!(
        "medical conditions",
        MedicalInfo,
        10.1,
        ["health conditions", "diagnoses", "illnesses"]
    ),
    dt!(
        "disability status",
        MedicalInfo,
        4.3,
        ["disability information", "disabilities"]
    ),
    dt!(
        "medical history",
        MedicalInfo,
        4.0,
        ["health history", "medical records"]
    ),
    dt!(
        "prescription info",
        MedicalInfo,
        3.5,
        ["medications", "prescription information", "prescriptions"]
    ),
    dt!(
        "mental health info",
        MedicalInfo,
        2.5,
        ["mental health information"]
    ),
    dt!(
        "vaccination status",
        MedicalInfo,
        2.0,
        ["immunization records"]
    ),
    // ---- Bio/health profile / Biometric data ----
    dt!(
        "biometric data",
        BiometricData,
        25.0,
        [
            "biometric information",
            "biometric identifiers",
            "biometrics"
        ]
    ),
    dt!(
        "facial data",
        BiometricData,
        12.6,
        [
            "face geometry",
            "facial recognition data",
            "facial images",
            "faceprint"
        ]
    ),
    dt!(
        "fingerprint",
        BiometricData,
        10.9,
        ["fingerprints", "palm prints or fingerprints"]
    ),
    dt!(
        "voice print",
        BiometricData,
        6.0,
        ["voice prints", "voiceprint", "voice recognition data"]
    ),
    dt!(
        "retina scan",
        BiometricData,
        4.0,
        ["imagery of the iris or retina", "retina or iris scan"]
    ),
    dt!("iris scan", BiometricData, 3.0, ["iris imagery"]),
    // ---- Bio/health profile / Physical characteristic ----
    dt!(
        "physical characteristics",
        PhysicalCharacteristic,
        46.6,
        [
            "physical description",
            "physical attributes",
            "physical appearance"
        ]
    ),
    dt!("weight", PhysicalCharacteristic, 7.3, []),
    dt!("height", PhysicalCharacteristic, 6.3, []),
    dt!("hair color", PhysicalCharacteristic, 3.0, ["hair colour"]),
    dt!("eye color", PhysicalCharacteristic, 3.0, ["eye colour"]),
    // ---- Bio/health profile / Fitness & health ----
    dt!(
        "physical activity info",
        FitnessHealth,
        25.0,
        [
            "activity data",
            "exercise data",
            "physical activity information"
        ]
    ),
    dt!("sleep patterns", FitnessHealth, 17.3, ["sleep data"]),
    dt!(
        "health metrics",
        FitnessHealth,
        3.8,
        ["wellness metrics", "vital signs"]
    ),
    dt!("heart rate", FitnessHealth, 3.0, ["pulse"]),
    dt!("step count", FitnessHealth, 3.0, ["steps taken"]),
    // ---- Financial/legal / Financial info ----
    dt!(
        "payment card info",
        FinancialInfo,
        25.6,
        [
            "credit card number",
            "debit card number",
            "card details",
            "payment card information",
            "credit or debit card information"
        ]
    ),
    dt!(
        "financial info",
        FinancialInfo,
        15.3,
        [
            "financial information",
            "financial data",
            "financial details"
        ]
    ),
    dt!(
        "bank account info",
        FinancialInfo,
        14.7,
        [
            "bank account number",
            "bank details",
            "banking information",
            "routing number"
        ]
    ),
    dt!(
        "billing info",
        FinancialInfo,
        7.0,
        ["billing information", "billing details"]
    ),
    dt!(
        "tax id",
        FinancialInfo,
        4.0,
        [
            "tax identification number",
            "taxpayer id",
            "tax information"
        ]
    ),
    dt!(
        "investment info",
        FinancialInfo,
        3.5,
        [
            "investment information",
            "portfolio holdings",
            "brokerage information"
        ]
    ),
    // ---- Financial/legal / Legal info ----
    dt!(
        "signature",
        LegalInfo,
        21.2,
        ["electronic signature", "signatures"]
    ),
    dt!(
        "background checks",
        LegalInfo,
        9.8,
        ["background check results", "background screening"]
    ),
    dt!(
        "criminal records",
        LegalInfo,
        7.2,
        [
            "criminal history",
            "criminal convictions",
            "criminal background"
        ]
    ),
    dt!(
        "litigation history",
        LegalInfo,
        4.0,
        ["legal proceedings", "court records"]
    ),
    dt!(
        "legal claims",
        LegalInfo,
        3.5,
        ["claims information", "legal disputes"]
    ),
    // ---- Financial/legal / Financial capability ----
    dt!(
        "income",
        FinancialCapability,
        17.6,
        [
            "income level",
            "income information",
            "earnings",
            "household income"
        ]
    ),
    dt!(
        "credit history",
        FinancialCapability,
        13.9,
        ["credit records", "credit information", "credit reports"]
    ),
    dt!(
        "credit score",
        FinancialCapability,
        7.6,
        ["credit rating", "credit worthiness"]
    ),
    dt!(
        "assets",
        FinancialCapability,
        5.0,
        ["asset information", "property owned"]
    ),
    dt!(
        "liabilities",
        FinancialCapability,
        3.0,
        ["debts", "outstanding loans"]
    ),
    dt!(
        "net worth",
        FinancialCapability,
        3.0,
        ["net worth information"]
    ),
    dt!(
        "student loan information",
        FinancialCapability,
        2.0,
        ["student loan financial information", "student loans"]
    ),
    // ---- Financial/legal / Insurance info ----
    dt!(
        "health insurance",
        InsuranceInfo,
        29.2,
        [
            "health insurance information",
            "health plan details",
            "health insurance policy"
        ]
    ),
    dt!(
        "insurance policy number",
        InsuranceInfo,
        19.5,
        ["policy number", "insurance policy details"]
    ),
    dt!(
        "insurance info",
        InsuranceInfo,
        9.7,
        [
            "insurance information",
            "insurance details",
            "insurance data"
        ]
    ),
    dt!(
        "insurance claims",
        InsuranceInfo,
        5.0,
        ["claims history", "insurance claim information"]
    ),
    dt!(
        "coverage details",
        InsuranceInfo,
        3.5,
        ["coverage information", "benefits information"]
    ),
    // ---- Physical behavior / Precise location ----
    dt!(
        "gps location",
        PreciseLocation,
        54.8,
        [
            "gps coordinates",
            "latitude and longitude coordinates",
            "gps data",
            "satellite location"
        ]
    ),
    dt!(
        "precise location",
        PreciseLocation,
        13.0,
        [
            "precise geolocation",
            "exact location",
            "precise location data"
        ]
    ),
    dt!(
        "device location",
        PreciseLocation,
        4.1,
        ["location of your device", "mobile device location"]
    ),
    dt!(
        "geolocation coordinates",
        PreciseLocation,
        3.5,
        ["geolocation data", "geo-location information"]
    ),
    dt!(
        "real-time location",
        PreciseLocation,
        3.0,
        ["live location"]
    ),
    // ---- Physical behavior / Approximate location ----
    dt!(
        "country",
        ApproximateLocation,
        18.7,
        ["country of residence", "country location"]
    ),
    dt!(
        "zip code",
        ApproximateLocation,
        18.0,
        ["postal code", "zip/postal code"]
    ),
    dt!(
        "approximate location",
        ApproximateLocation,
        17.6,
        [
            "general location",
            "coarse location",
            "approximate geolocation"
        ]
    ),
    dt!(
        "city",
        ApproximateLocation,
        8.0,
        ["city of residence", "town"]
    ),
    dt!(
        "region",
        ApproximateLocation,
        6.0,
        ["state", "province", "geographic region"]
    ),
    dt!(
        "time zone",
        ApproximateLocation,
        4.0,
        ["timezone", "time zone setting"]
    ),
    // ---- Physical behavior / Travel data ----
    dt!(
        "movement patterns",
        TravelData,
        26.1,
        ["movement data", "mobility patterns"]
    ),
    dt!(
        "travel history",
        TravelData,
        10.9,
        ["places visited", "travel records"]
    ),
    dt!(
        "travel data",
        TravelData,
        2.2,
        ["travel information", "travel details"]
    ),
    dt!(
        "trip itinerary",
        TravelData,
        2.0,
        ["itinerary details", "booking itinerary"]
    ),
    dt!("flight bookings", TravelData, 2.0, ["flight reservations"]),
    // ---- Physical behavior / Physical interaction ----
    dt!(
        "in-store interactions",
        PhysicalInteraction,
        43.3,
        [
            "in-store activity",
            "in-store purchases and visits",
            "store visits"
        ]
    ),
    dt!(
        "event participation",
        PhysicalInteraction,
        4.4,
        ["event attendance", "events attended"]
    ),
    dt!(
        "interactions",
        PhysicalInteraction,
        4.4,
        ["physical interactions", "offline interactions"]
    ),
    // ---- Digital behavior / Internet usage ----
    dt!(
        "browsing history",
        InternetUsage,
        14.5,
        [
            "browsing activity",
            "web browsing history",
            "browsing behavior",
            "sites visited"
        ]
    ),
    dt!(
        "search history",
        InternetUsage,
        8.3,
        ["search queries", "search terms", "searches performed"]
    ),
    dt!(
        "click behavior",
        InternetUsage,
        7.7,
        [
            "clicks",
            "clickstream data",
            "click-through data",
            "links clicked"
        ]
    ),
    dt!(
        "pages visited",
        InternetUsage,
        6.5,
        ["pages viewed", "pages you visit", "visited pages"]
    ),
    dt!(
        "time spent on pages",
        InternetUsage,
        5.0,
        ["time spent on site", "visit duration", "session duration"]
    ),
    dt!(
        "referring urls",
        InternetUsage,
        4.5,
        [
            "referring website",
            "referral url",
            "referring page",
            "referring/exit pages"
        ]
    ),
    dt!(
        "navigation paths",
        InternetUsage,
        3.0,
        ["navigation data", "browsing paths"]
    ),
    // ---- Digital behavior / Tracking data ----
    dt!(
        "cookies",
        TrackingData,
        43.4,
        [
            "cookie data",
            "browser cookies",
            "http cookies",
            "cookies and similar technologies"
        ]
    ),
    dt!(
        "web beacons",
        TrackingData,
        19.0,
        ["beacons", "clear gifs", "web bugs"]
    ),
    dt!(
        "online tracking technologies",
        TrackingData,
        6.8,
        [
            "tracking technologies",
            "similar tracking technologies",
            "tracking tools"
        ]
    ),
    dt!(
        "pixel tags",
        TrackingData,
        5.5,
        ["pixels", "tracking pixels"]
    ),
    dt!(
        "session identifiers",
        TrackingData,
        3.5,
        ["session id", "session tokens"]
    ),
    dt!(
        "local storage data",
        TrackingData,
        2.5,
        ["local shared objects", "flash cookies"]
    ),
    // ---- Digital behavior / Product-service usage ----
    dt!(
        "user engagement metrics",
        ProductServiceUsage,
        20.6,
        [
            "engagement data",
            "engagement metrics",
            "interaction metrics"
        ]
    ),
    dt!(
        "website usage",
        ProductServiceUsage,
        9.7,
        [
            "use of our website",
            "site usage",
            "website activity",
            "usage of the site"
        ]
    ),
    dt!(
        "app usage",
        ProductServiceUsage,
        9.1,
        ["application usage", "app activity", "mobile app usage"]
    ),
    dt!(
        "feature usage",
        ProductServiceUsage,
        5.0,
        ["features used", "features accessed"]
    ),
    dt!(
        "service usage",
        ProductServiceUsage,
        5.0,
        ["use of our services", "services used", "usage data"]
    ),
    dt!(
        "usage frequency",
        ProductServiceUsage,
        3.0,
        ["frequency of use"]
    ),
    // ---- Digital behavior / Transaction info ----
    dt!(
        "purchase history",
        TransactionInfo,
        28.6,
        [
            "purchasing history",
            "products purchased",
            "purchase records",
            "purchases made",
            "purchasing tendencies"
        ]
    ),
    dt!(
        "transaction info",
        TransactionInfo,
        9.5,
        [
            "transaction information",
            "transaction data",
            "transaction details",
            "transaction history"
        ]
    ),
    dt!(
        "commercial info",
        TransactionInfo,
        5.5,
        ["commercial information"]
    ),
    dt!(
        "order details",
        TransactionInfo,
        5.0,
        ["order history", "order information"]
    ),
    dt!(
        "shopping cart contents",
        TransactionInfo,
        3.0,
        ["cart contents", "items in your cart"]
    ),
    dt!("returns history", TransactionInfo, 2.0, ["product returns"]),
    // ---- Digital behavior / Preferences ----
    dt!(
        "language preferences",
        Preferences,
        20.3,
        ["preferred language", "language settings"]
    ),
    dt!(
        "preferences",
        Preferences,
        16.5,
        [
            "user preferences",
            "personal preferences",
            "saved preferences"
        ]
    ),
    dt!(
        "product preferences",
        Preferences,
        7.0,
        ["shopping preferences", "favorite products"]
    ),
    dt!(
        "communication preferences",
        Preferences,
        6.0,
        ["contact preferences", "notification preferences"]
    ),
    dt!(
        "marketing preferences",
        Preferences,
        5.0,
        ["advertising preferences"]
    ),
    dt!(
        "interests",
        Preferences,
        5.0,
        ["areas of interest", "interests and hobbies"]
    ),
    // ---- Digital behavior / Content generation ----
    dt!(
        "uploaded media",
        ContentGeneration,
        31.7,
        [
            "uploaded content",
            "uploaded files",
            "files you upload",
            "uploaded images"
        ]
    ),
    dt!(
        "comments & posts",
        ContentGeneration,
        9.1,
        ["comments", "posts", "forum posts", "comments and posts"]
    ),
    dt!(
        "audio recordings",
        ContentGeneration,
        4.5,
        ["voice recordings", "recorded calls", "audio data"]
    ),
    dt!(
        "photos",
        ContentGeneration,
        4.0,
        ["photographs", "pictures", "images you provide"]
    ),
    dt!(
        "videos",
        ContentGeneration,
        3.5,
        ["video recordings", "video content"]
    ),
    dt!(
        "reviews",
        ContentGeneration,
        3.0,
        ["product reviews", "ratings and reviews"]
    ),
    dt!(
        "user-generated content",
        ContentGeneration,
        3.0,
        ["content you create", "content you submit"]
    ),
    // ---- Digital behavior / Communication data ----
    dt!(
        "email records",
        CommunicationData,
        23.4,
        [
            "email communications",
            "email correspondence",
            "emails you send"
        ]
    ),
    dt!(
        "call records",
        CommunicationData,
        15.3,
        ["phone call records", "call logs", "call history"]
    ),
    dt!(
        "communication data",
        CommunicationData,
        9.0,
        [
            "communication records",
            "correspondence",
            "communication history"
        ]
    ),
    dt!(
        "chat logs",
        CommunicationData,
        5.0,
        ["chat history", "chat transcripts", "live chat records"]
    ),
    dt!(
        "messages",
        CommunicationData,
        5.0,
        ["text messages", "direct messages", "sms messages"]
    ),
    // ---- Digital behavior / Feedback data ----
    dt!(
        "survey responses",
        FeedbackData,
        26.1,
        ["survey answers", "survey data", "responses to surveys"]
    ),
    dt!(
        "customer service interactions",
        FeedbackData,
        13.9,
        [
            "support interactions",
            "customer support records",
            "service inquiries"
        ]
    ),
    dt!(
        "feedback data",
        FeedbackData,
        9.9,
        ["feedback", "feedback you provide", "user feedback"]
    ),
    dt!(
        "reviews & ratings",
        FeedbackData,
        4.0,
        ["ratings", "customer reviews"]
    ),
    dt!("complaints", FeedbackData, 3.0, ["complaint records"]),
    // ---- Digital behavior / Content consumption ----
    dt!(
        "accessed content",
        ContentConsumption,
        62.0,
        [
            "content accessed",
            "content you view",
            "content viewed",
            "content you access"
        ]
    ),
    dt!(
        "downloaded content",
        ContentConsumption,
        6.2,
        ["downloads", "files downloaded", "content downloaded"]
    ),
    dt!(
        "access logs",
        ContentConsumption,
        5.3,
        ["log files", "server logs", "access times"]
    ),
    dt!(
        "viewed videos",
        ContentConsumption,
        3.0,
        ["videos watched", "viewing history"]
    ),
    dt!(
        "reading history",
        ContentConsumption,
        2.0,
        ["articles read"]
    ),
    // ---- Digital behavior / Diagnostic data ----
    dt!(
        "error reports",
        DiagnosticData,
        13.4,
        ["error logs", "error data"]
    ),
    dt!(
        "crash reports",
        DiagnosticData,
        10.7,
        ["crash data", "crash logs"]
    ),
    dt!(
        "diagnostic data",
        DiagnosticData,
        9.1,
        ["diagnostic information", "diagnostics"]
    ),
    dt!(
        "performance data",
        DiagnosticData,
        5.0,
        ["performance metrics", "performance information"]
    ),
    dt!(
        "system logs",
        DiagnosticData,
        4.0,
        ["system activity logs", "event logs"]
    ),
];

/// Iterate the descriptor specs belonging to `category`, in vocabulary order.
pub fn descriptors_for(
    category: DataTypeCategory,
) -> impl Iterator<Item = &'static DescriptorSpec> {
    DATA_TYPE_DESCRIPTORS
        .iter()
        .filter(move |d| d.category == category)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thirty_four_categories_six_metas() {
        assert_eq!(DataTypeCategory::ALL.len(), 34);
        assert_eq!(DataTypeMeta::ALL.len(), 6);
        let from_meta: usize = DataTypeMeta::ALL.iter().map(|m| m.categories().len()).sum();
        assert_eq!(from_meta, 34);
    }

    #[test]
    fn meta_categories_consistent() {
        for m in DataTypeMeta::ALL {
            for &c in m.categories() {
                assert_eq!(c.meta(), m, "{c:?} should belong to {m:?}");
            }
        }
    }

    #[test]
    fn at_least_125_descriptors() {
        assert!(
            DATA_TYPE_DESCRIPTORS.len() >= 125,
            "only {} descriptors",
            DATA_TYPE_DESCRIPTORS.len()
        );
    }

    #[test]
    fn every_category_has_descriptors() {
        for c in DataTypeCategory::ALL {
            assert!(
                descriptors_for(c).count() >= 3,
                "{c:?} needs at least 3 descriptors"
            );
        }
    }

    #[test]
    fn descriptor_names_unique_and_lowercase() {
        let mut seen = HashSet::new();
        for d in DATA_TYPE_DESCRIPTORS {
            assert!(seen.insert(d.name), "duplicate descriptor {}", d.name);
            assert_eq!(d.name, d.name.to_lowercase(), "{} not lowercase", d.name);
            for s in d.surfaces {
                assert_eq!(*s, s.to_lowercase(), "surface {s} not lowercase");
            }
        }
    }

    #[test]
    fn surfaces_do_not_collide_across_descriptors() {
        let mut seen: HashSet<&str> = HashSet::new();
        for d in DATA_TYPE_DESCRIPTORS {
            for form in std::iter::once(&d.name).chain(d.surfaces.iter()) {
                assert!(seen.insert(form), "surface form {form:?} appears twice");
            }
        }
    }

    #[test]
    fn weights_positive() {
        for d in DATA_TYPE_DESCRIPTORS {
            assert!(d.weight > 0.0, "{} has non-positive weight", d.name);
        }
    }

    #[test]
    fn top3_weights_match_paper_for_contact_info() {
        // Table 4: email address 27.3%, postal address 25.6%, phone 25.1%.
        let mut ds: Vec<_> = descriptors_for(DataTypeCategory::ContactInfo).collect();
        ds.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
        assert_eq!(ds[0].name, "email address");
        assert_eq!(ds[1].name, "postal address");
        assert_eq!(ds[2].name, "phone number");
    }

    #[test]
    fn category_name_roundtrip() {
        for c in DataTypeCategory::ALL {
            assert_eq!(DataTypeCategory::from_name(c.name()), Some(c));
            assert_eq!(
                DataTypeCategory::from_name(&c.name().to_uppercase()),
                Some(c)
            );
        }
        assert_eq!(DataTypeCategory::from_name("nonsense"), None);
    }

    #[test]
    fn index_dense() {
        for (i, c) in DataTypeCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, m) in DataTypeMeta::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }
}
