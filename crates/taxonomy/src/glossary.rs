//! Glossary rendering: turns the taxonomy into the glossary blocks attached
//! to the chatbot prompts (Figure 2 of the paper).
//!
//! The paper attaches a compiled glossary to both data-type tasks ("this
//! helps provide the chatbot with more context for performing the tasks")
//! and notes the glossary is *not* comprehensive — the chatbot is asked to
//! also identify terms not listed.

use crate::aspect::Aspect;
use crate::datatypes::{descriptors_for, DataTypeCategory};
use crate::purposes::{purposes_for, PurposeCategory};
use std::fmt::Write as _;

/// Render the section-heading glossary for the heading-labeling task
/// (Figure 2a): one line per aspect with example headings.
pub fn heading_glossary() -> String {
    let mut out = String::new();
    out.push_str(
        "The glossary below includes phrases relevant to each category. This glossary is \
         not comprehensive; it is crucial that you also identify relevant phrases not \
         listed below.\n",
    );
    for aspect in Aspect::ALL {
        let examples: Vec<String> = aspect
            .heading_glossary()
            .iter()
            .map(|h| format!("\"{h}\""))
            .collect();
        let _ = writeln!(out, "- {}: {}.", aspect.key(), examples.join(", "));
    }
    out
}

/// Render the data-type glossary for the extraction and normalization tasks
/// (Figure 2b): one line per category listing its descriptors.
///
/// `max_per_category` truncates each category's list (the paper's glossary
/// is an illustrative subset, not the full vocabulary).
pub fn datatype_glossary(max_per_category: usize) -> String {
    let mut out = String::new();
    out.push_str(
        "The glossary below includes some examples of data types. This glossary is not \
         comprehensive; it is crucial that you also identify terms not listed below.\n",
    );
    for category in DataTypeCategory::ALL {
        let mut specs: Vec<_> = descriptors_for(category).collect();
        specs.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        let shown: Vec<String> = specs
            .iter()
            .take(max_per_category)
            .map(|d| format!("\"{}\"", d.name))
            .collect();
        let _ = writeln!(out, "- {}: {}", category.name(), shown.join(", "));
    }
    out
}

/// Render the purpose glossary for the purpose extraction/normalization task.
pub fn purpose_glossary(max_per_category: usize) -> String {
    let mut out = String::new();
    out.push_str(
        "The glossary below includes some examples of data collection purposes. This \
         glossary is not comprehensive; it is crucial that you also identify purposes \
         not listed below.\n",
    );
    for category in PurposeCategory::ALL {
        let mut specs: Vec<_> = purposes_for(category).collect();
        specs.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        let shown: Vec<String> = specs
            .iter()
            .take(max_per_category)
            .map(|p| format!("\"{}\"", p.name))
            .collect();
        let _ = writeln!(out, "- {}: {}", category.name(), shown.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heading_glossary_lists_all_aspects() {
        let g = heading_glossary();
        for a in Aspect::ALL {
            assert!(g.contains(&format!("- {}:", a.key())), "missing {a}");
        }
        assert!(g.contains("Information we collect"));
    }

    #[test]
    fn datatype_glossary_lists_all_categories() {
        let g = datatype_glossary(5);
        for c in DataTypeCategory::ALL {
            assert!(g.contains(c.name()), "missing {c}");
        }
        assert!(g.contains("\"email address\""));
    }

    #[test]
    fn datatype_glossary_truncates() {
        let short = datatype_glossary(1);
        let long = datatype_glossary(100);
        assert!(short.len() < long.len());
        // With one descriptor per category the top-weighted must survive.
        assert!(short.contains("\"ip address\""));
    }

    #[test]
    fn purpose_glossary_lists_all_categories() {
        let g = purpose_glossary(5);
        for c in PurposeCategory::ALL {
            assert!(g.contains(c.name()), "missing {c}");
        }
        assert!(g.contains("\"legal compliance\""));
    }

    #[test]
    fn glossaries_declare_non_exhaustiveness() {
        for g in [
            heading_glossary(),
            datatype_glossary(3),
            purpose_glossary(3),
        ] {
            assert!(g.contains("not comprehensive"));
        }
    }
}
