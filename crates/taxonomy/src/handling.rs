//! Data-handling labels: retention and protection practices (Table 1,
//! "Data retention" and "Data protection" blocks).

use serde::{Deserialize, Serialize};

/// Label for a data-retention mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RetentionLabel {
    /// Retention period is limited but unspecified ("as long as necessary").
    Limited,
    /// Retention period is explicitly specified (and extracted).
    Stated,
    /// Collected data is retained indefinitely.
    Indefinitely,
}

impl RetentionLabel {
    /// All three retention labels in Table 1 order.
    pub const ALL: [RetentionLabel; 3] = [
        RetentionLabel::Limited,
        RetentionLabel::Stated,
        RetentionLabel::Indefinitely,
    ];

    /// Table-style label name.
    pub fn name(self) -> &'static str {
        match self {
            RetentionLabel::Limited => "Limited",
            RetentionLabel::Stated => "Stated",
            RetentionLabel::Indefinitely => "Indefinitely",
        }
    }

    /// One-line description as in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            RetentionLabel::Limited => "Retention period is limited but unspecified.",
            RetentionLabel::Stated => {
                "Retention period is specified (and extracted by the chatbot)."
            }
            RetentionLabel::Indefinitely => "Collected data is retained indefinitely.",
        }
    }

    /// Parse a label name (case-insensitive).
    pub fn from_name(name: &str) -> Option<RetentionLabel> {
        let lower = name.trim().to_ascii_lowercase();
        RetentionLabel::ALL
            .iter()
            .copied()
            .find(|l| l.name().to_ascii_lowercase() == lower)
    }

    /// Stable dense index (0..3); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for RetentionLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Label for a data-protection mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtectionLabel {
    /// Generic statement regarding data protection/security.
    Generic,
    /// Data access is restricted on a need-to-know basis.
    AccessLimit,
    /// Data transfer is secured, e.g. via encryption in transit.
    SecureTransfer,
    /// Data is stored securely, e.g. encrypted at rest.
    SecureStorage,
    /// Company has a data privacy/protection program.
    PrivacyProgram,
    /// Privacy measures and protections are reviewed/audited.
    PrivacyReview,
    /// User authentication is secured, e.g. via encryption or 2FA.
    SecureAuthentication,
}

impl ProtectionLabel {
    /// All seven protection labels in Table 1 order.
    pub const ALL: [ProtectionLabel; 7] = [
        ProtectionLabel::Generic,
        ProtectionLabel::AccessLimit,
        ProtectionLabel::SecureTransfer,
        ProtectionLabel::SecureStorage,
        ProtectionLabel::PrivacyProgram,
        ProtectionLabel::PrivacyReview,
        ProtectionLabel::SecureAuthentication,
    ];

    /// Table-style label name.
    pub fn name(self) -> &'static str {
        match self {
            ProtectionLabel::Generic => "Generic",
            ProtectionLabel::AccessLimit => "Access limit",
            ProtectionLabel::SecureTransfer => "Secure transfer",
            ProtectionLabel::SecureStorage => "Secure storage",
            ProtectionLabel::PrivacyProgram => "Privacy program",
            ProtectionLabel::PrivacyReview => "Privacy review",
            ProtectionLabel::SecureAuthentication => "Secure authentication",
        }
    }

    /// One-line description as in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            ProtectionLabel::Generic => "Generic statement regarding data protection/security.",
            ProtectionLabel::AccessLimit => "Data access is restricted on a need-to-know basis.",
            ProtectionLabel::SecureTransfer => "Data transfer is secured, e.g., via encryption.",
            ProtectionLabel::SecureStorage => {
                "Data is stored securely, e.g., in an encrypted format or database."
            }
            ProtectionLabel::PrivacyProgram => "Company has a data privacy/protection program.",
            ProtectionLabel::PrivacyReview => {
                "Privacy measures and data protection practices are reviewed/audited."
            }
            ProtectionLabel::SecureAuthentication => {
                "User authentication is secured, e.g., via encryption or 2FA."
            }
        }
    }

    /// Parse a label name (case-insensitive). Accepts the abbreviated
    /// "Secure auth." spelling used in Table 3.
    pub fn from_name(name: &str) -> Option<ProtectionLabel> {
        let lower = name.trim().to_ascii_lowercase();
        if lower == "secure auth." || lower == "secure auth" {
            return Some(ProtectionLabel::SecureAuthentication);
        }
        ProtectionLabel::ALL
            .iter()
            .copied()
            .find(|l| l.name().to_ascii_lowercase() == lower)
    }

    /// Stable dense index (0..7); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for ProtectionLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_roundtrip() {
        for l in RetentionLabel::ALL {
            assert_eq!(RetentionLabel::from_name(l.name()), Some(l));
            assert!(!l.description().is_empty());
        }
        assert_eq!(RetentionLabel::from_name("forever"), None);
    }

    #[test]
    fn protection_roundtrip() {
        for l in ProtectionLabel::ALL {
            assert_eq!(ProtectionLabel::from_name(l.name()), Some(l));
            assert!(!l.description().is_empty());
        }
        assert_eq!(
            ProtectionLabel::from_name("Secure auth."),
            Some(ProtectionLabel::SecureAuthentication)
        );
    }

    #[test]
    fn counts_match_paper() {
        assert_eq!(RetentionLabel::ALL.len(), 3);
        assert_eq!(ProtectionLabel::ALL.len(), 7);
    }

    #[test]
    fn indices_dense() {
        for (i, l) in RetentionLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        for (i, l) in ProtectionLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }
}
