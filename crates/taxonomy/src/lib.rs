//! # aipan-taxonomy
//!
//! The annotation taxonomy used throughout AIPAN-RS, reproducing the manual
//! taxonomy constructed in *"Analyzing Corporate Privacy Policies using AI
//! Chatbots"* (IMC 2024), Section 3.2 and Appendix D.
//!
//! The taxonomy covers four annotation *aspects* of a privacy policy:
//!
//! * **Collected data types** — 6 meta-categories, 34 categories, and 125+
//!   normalized descriptors (e.g. both "mailing address" and "home address"
//!   normalize to the descriptor `postal address` in category
//!   [`DataTypeCategory::ContactInfo`]).
//! * **Data collection purposes** — 3 meta-categories, 7 categories, and 48
//!   normalized descriptors.
//! * **Data handling** — data retention labels (limited / stated /
//!   indefinitely) and data protection labels (generic, access limit, secure
//!   transfer, secure storage, privacy program, privacy review, secure
//!   authentication).
//! * **User rights** — user choice labels (opt-out via contact / via link,
//!   privacy settings, opt-in, do-not-use) and user access labels (edit,
//!   full delete, view, export, partial delete, deactivate).
//!
//! It also defines the nine section [`Aspect`]s used for policy segmentation
//! (Section 3.2.1) and the eleven S&P [`Sector`]s used for the sector
//! breakdowns of Tables 2, 3, and 5.
//!
//! The taxonomy is *open*: normalized descriptors are carried as strings in
//! [`records::Annotation`] values so that out-of-vocabulary (zero-shot)
//! descriptors produced by a chatbot can flow through the pipeline unchanged,
//! while the [`normalize::Normalizer`] maps known surface forms onto the
//! canonical vocabulary defined here.

#![warn(missing_docs)]

pub mod aspect;
pub mod datatypes;
pub mod glossary;
pub mod handling;
pub mod normalize;
pub mod purposes;
pub mod records;
pub mod rights;
pub mod sector;
pub mod zeroshot;

pub use aspect::Aspect;
pub use datatypes::{DataTypeCategory, DataTypeMeta, DescriptorSpec, DATA_TYPE_DESCRIPTORS};
pub use handling::{ProtectionLabel, RetentionLabel};
pub use normalize::Normalizer;
pub use purposes::{PurposeCategory, PurposeMeta, PurposeSpec, PURPOSE_DESCRIPTORS};
pub use records::{Annotation, AnnotationPayload, AspectKind};
pub use rights::{AccessLabel, ChoiceLabel};
pub use sector::Sector;
