//! Normalization of surface forms onto the canonical descriptor vocabulary.
//!
//! The paper's second data-type task maps verbatim mentions onto *normalized*
//! descriptors (e.g. "mailing address" → "postal address") and assigns a
//! category. [`Normalizer`] provides that mapping for the built-in
//! vocabulary; unknown terms are left to the caller (the chatbot generates
//! zero-shot descriptors for them).

use crate::datatypes::{DataTypeCategory, DATA_TYPE_DESCRIPTORS};
use crate::purposes::{PurposeCategory, PURPOSE_DESCRIPTORS};
use std::collections::HashMap;

/// Result of normalizing a data-type surface form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizedDataType {
    /// Canonical descriptor.
    pub descriptor: &'static str,
    /// Category of the descriptor.
    pub category: DataTypeCategory,
}

/// Result of normalizing a purpose surface form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizedPurpose {
    /// Canonical descriptor.
    pub descriptor: &'static str,
    /// Category of the descriptor.
    pub category: PurposeCategory,
}

/// Case/whitespace/punctuation-insensitive index from surface forms onto the
/// canonical vocabulary.
///
/// Construction walks the static descriptor tables once; lookups are O(1)
/// hash probes on a folded key.
///
/// ```
/// use aipan_taxonomy::{DataTypeCategory, Normalizer};
///
/// let normalizer = Normalizer::new();
/// let hit = normalizer.datatype("Mailing   Address").unwrap();
/// assert_eq!(hit.descriptor, "postal address");
/// assert_eq!(hit.category, DataTypeCategory::ContactInfo);
/// assert!(normalizer.datatype("flux capacitor readings").is_none());
/// ```
#[derive(Debug)]
pub struct Normalizer {
    datatypes: HashMap<String, NormalizedDataType>,
    purposes: HashMap<String, NormalizedPurpose>,
}

impl Normalizer {
    /// Build the index over the full built-in vocabulary.
    pub fn new() -> Self {
        let mut datatypes = HashMap::new();
        for spec in DATA_TYPE_DESCRIPTORS {
            let value = NormalizedDataType {
                descriptor: spec.name,
                category: spec.category,
            };
            datatypes.insert(fold(spec.name), value);
            for s in spec.surfaces {
                datatypes.insert(fold(s), value);
            }
        }
        let mut purposes = HashMap::new();
        for spec in PURPOSE_DESCRIPTORS {
            let value = NormalizedPurpose {
                descriptor: spec.name,
                category: spec.category,
            };
            purposes.insert(fold(spec.name), value);
            for s in spec.surfaces {
                purposes.insert(fold(s), value);
            }
        }
        Normalizer {
            datatypes,
            purposes,
        }
    }

    /// Normalize a data-type surface form, if it is in the vocabulary.
    pub fn datatype(&self, surface: &str) -> Option<NormalizedDataType> {
        self.datatypes.get(&fold(surface)).copied()
    }

    /// Normalize a purpose surface form, if it is in the vocabulary.
    pub fn purpose(&self, surface: &str) -> Option<NormalizedPurpose> {
        self.purposes.get(&fold(surface)).copied()
    }

    /// Number of indexed data-type surface forms.
    pub fn datatype_surface_count(&self) -> usize {
        self.datatypes.len()
    }

    /// Number of indexed purpose surface forms.
    pub fn purpose_surface_count(&self) -> usize {
        self.purposes.len()
    }
}

impl Default for Normalizer {
    fn default() -> Self {
        Self::new()
    }
}

/// Fold a surface form to its lookup key: lower-cased, punctuation stripped
/// (except internal hyphens/slashes which are significant, e.g. "e-mail",
/// "zip/postal code"), whitespace collapsed.
pub fn fold(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.chars() {
        let ch = ch.to_ascii_lowercase();
        if ch.is_alphanumeric() || ch == '-' || ch == '/' || ch == '&' || ch == '\'' {
            out.push(ch);
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_mailing_and_home_address() {
        let n = Normalizer::new();
        let a = n.datatype("mailing address").unwrap();
        let b = n.datatype("Home Address").unwrap();
        assert_eq!(a.descriptor, "postal address");
        assert_eq!(b.descriptor, "postal address");
        assert_eq!(a.category, DataTypeCategory::ContactInfo);
    }

    #[test]
    fn fold_is_insensitive_to_case_space_punct() {
        assert_eq!(fold("  E-Mail   Address!! "), "e-mail address");
        assert_eq!(fold("IP, address."), "ip address");
        assert_eq!(fold("zip/postal code"), "zip/postal code");
    }

    #[test]
    fn canonical_names_normalize_to_themselves() {
        let n = Normalizer::new();
        for spec in DATA_TYPE_DESCRIPTORS {
            let got = n.datatype(spec.name).unwrap();
            assert_eq!(got.descriptor, spec.name);
            assert_eq!(got.category, spec.category);
        }
        for spec in PURPOSE_DESCRIPTORS {
            let got = n.purpose(spec.name).unwrap();
            assert_eq!(got.descriptor, spec.name);
        }
    }

    #[test]
    fn unknown_terms_are_none() {
        let n = Normalizer::new();
        assert!(n.datatype("quantum entanglement state").is_none());
        assert!(n.purpose("summon demons").is_none());
    }

    #[test]
    fn purpose_surface_normalizes() {
        let n = Normalizer::new();
        let p = n.purpose("send you marketing communications").unwrap();
        assert_eq!(p.descriptor, "direct marketing");
        assert_eq!(p.category, PurposeCategory::AdvertisingSales);
    }

    #[test]
    fn index_sizes_cover_vocabulary() {
        let n = Normalizer::new();
        assert!(n.datatype_surface_count() >= DATA_TYPE_DESCRIPTORS.len());
        assert!(n.purpose_surface_count() >= PURPOSE_DESCRIPTORS.len());
    }
}
