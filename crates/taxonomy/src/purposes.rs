//! Data-collection purpose taxonomy: 3 meta-categories, 7 categories, 48
//! normalized descriptors (Table 1, "Purposes" block).

use serde::{Deserialize, Serialize};

/// One of the three purpose meta-categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PurposeMeta {
    /// Running and improving the business itself.
    Operations,
    /// Legal, regulatory, and security obligations.
    Legal,
    /// Marketing and sharing with third parties.
    ThirdParty,
}

impl PurposeMeta {
    /// All three purpose meta-categories in Table 1 order.
    pub const ALL: [PurposeMeta; 3] = [
        PurposeMeta::Operations,
        PurposeMeta::Legal,
        PurposeMeta::ThirdParty,
    ];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PurposeMeta::Operations => "Operations",
            PurposeMeta::Legal => "Legal",
            PurposeMeta::ThirdParty => "Third-party",
        }
    }

    /// Categories belonging to this meta-category.
    pub fn categories(self) -> &'static [PurposeCategory] {
        use PurposeCategory::*;
        match self {
            PurposeMeta::Operations => &[BasicFunctioning, UserExperience, AnalyticsResearch],
            PurposeMeta::Legal => &[LegalCompliance, Security],
            PurposeMeta::ThirdParty => &[AdvertisingSales, DataSharing],
        }
    }

    /// Stable dense index (0..3); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for PurposeMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the seven purpose categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PurposeCategory {
    /// Core operation of the product/service (customer service, transaction
    /// processing, account management, ...).
    BasicFunctioning,
    /// Improving or personalizing the user experience.
    UserExperience,
    /// Analytics, research, and product development.
    AnalyticsResearch,
    /// Legal, regulatory, and policy compliance.
    LegalCompliance,
    /// Security, fraud prevention, authentication.
    Security,
    /// Marketing, promotions, and targeted advertising.
    AdvertisingSales,
    /// Sharing with (or selling to) third parties.
    DataSharing,
}

impl PurposeCategory {
    /// All seven purpose categories, grouped by meta-category.
    pub const ALL: [PurposeCategory; 7] = [
        PurposeCategory::BasicFunctioning,
        PurposeCategory::UserExperience,
        PurposeCategory::AnalyticsResearch,
        PurposeCategory::LegalCompliance,
        PurposeCategory::Security,
        PurposeCategory::AdvertisingSales,
        PurposeCategory::DataSharing,
    ];

    /// The meta-category this category belongs to.
    pub fn meta(self) -> PurposeMeta {
        use PurposeCategory::*;
        match self {
            BasicFunctioning | UserExperience | AnalyticsResearch => PurposeMeta::Operations,
            LegalCompliance | Security => PurposeMeta::Legal,
            AdvertisingSales | DataSharing => PurposeMeta::ThirdParty,
        }
    }

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        use PurposeCategory::*;
        match self {
            BasicFunctioning => "Basic functioning",
            UserExperience => "User experience",
            AnalyticsResearch => "Analytics & research",
            LegalCompliance => "Legal & compliance",
            Security => "Security",
            AdvertisingSales => "Advertising & sales",
            DataSharing => "Data sharing",
        }
    }

    /// Parse a table-style category name (case-insensitive).
    pub fn from_name(name: &str) -> Option<PurposeCategory> {
        let lower = name.trim().to_ascii_lowercase();
        PurposeCategory::ALL
            .iter()
            .copied()
            .find(|c| c.name().to_ascii_lowercase() == lower)
    }

    /// Stable dense index (0..7); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for PurposeCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A normalized purpose descriptor with its surface forms and within-category
/// popularity weight (calibrated to the Table 1 "Purposes" frequencies).
#[derive(Debug, Clone, Copy)]
pub struct PurposeSpec {
    /// Canonical normalized descriptor, e.g. `"targeted advertising"`.
    pub name: &'static str,
    /// Category the descriptor belongs to.
    pub category: PurposeCategory,
    /// Additional lower-case surface forms that normalize to this descriptor.
    pub surfaces: &'static [&'static str],
    /// Relative popularity within the category.
    pub weight: f32,
}

macro_rules! pp {
    ($name:literal, $cat:ident, $w:literal, [$($s:literal),*]) => {
        PurposeSpec {
            name: $name,
            category: PurposeCategory::$cat,
            surfaces: &[$($s),*],
            weight: $w,
        }
    };
}

/// The 48-descriptor normalized vocabulary for data-collection purposes.
pub static PURPOSE_DESCRIPTORS: &[PurposeSpec] = &[
    // ---- Operations / Basic functioning (11) ----
    pp!(
        "customer service",
        BasicFunctioning,
        9.3,
        [
            "provide customer service",
            "customer support",
            "respond to your inquiries",
            "support services"
        ]
    ),
    pp!(
        "customer communication",
        BasicFunctioning,
        8.0,
        [
            "communicate with you",
            "send you notifications",
            "contact you",
            "service announcements"
        ]
    ),
    pp!(
        "transaction processing",
        BasicFunctioning,
        4.8,
        [
            "process transactions",
            "process your orders",
            "complete transactions"
        ]
    ),
    pp!(
        "account management",
        BasicFunctioning,
        4.5,
        [
            "manage your account",
            "maintain your account",
            "account creation",
            "register your account"
        ]
    ),
    pp!(
        "order fulfillment",
        BasicFunctioning,
        4.0,
        [
            "fulfill your orders",
            "deliver products",
            "shipping and delivery"
        ]
    ),
    pp!(
        "service provision",
        BasicFunctioning,
        4.5,
        [
            "provide our services",
            "provide the services you request",
            "operate our website",
            "deliver our services"
        ]
    ),
    pp!(
        "contract fulfillment",
        BasicFunctioning,
        3.5,
        [
            "for the performance of a contract or to conduct business with you",
            "perform our contract",
            "contractual obligations"
        ]
    ),
    pp!(
        "payment processing",
        BasicFunctioning,
        3.5,
        ["process payments", "billing purposes", "collect payments"]
    ),
    pp!(
        "identity verification",
        BasicFunctioning,
        3.0,
        ["verify your identity", "confirm your identity"]
    ),
    pp!(
        "record keeping",
        BasicFunctioning,
        2.5,
        [
            "maintain records",
            "internal record keeping",
            "administrative purposes"
        ]
    ),
    pp!(
        "recruitment",
        BasicFunctioning,
        2.5,
        [
            "process your application",
            "evaluate job applicants",
            "hiring purposes"
        ]
    ),
    // ---- Operations / User experience (6) ----
    pp!(
        "product improvement",
        UserExperience,
        20.1,
        [
            "improve our products",
            "improve our services",
            "improve our website",
            "enhance our offerings",
            "improve the services"
        ]
    ),
    pp!(
        "personalization",
        UserExperience,
        16.3,
        [
            "personalize your experience",
            "customize your experience",
            "tailor content",
            "personalized content"
        ]
    ),
    pp!(
        "quality assurance",
        UserExperience,
        4.4,
        [
            "quality control",
            "monitor quality",
            "training and quality purposes"
        ]
    ),
    pp!(
        "user experience enhancement",
        UserExperience,
        4.0,
        [
            "enhance your experience",
            "improve user experience",
            "better user experience"
        ]
    ),
    pp!(
        "recommendations",
        UserExperience,
        3.0,
        [
            "provide recommendations",
            "suggest products",
            "recommend content"
        ]
    ),
    pp!(
        "remember preferences",
        UserExperience,
        3.0,
        [
            "remember your preferences",
            "remember your settings",
            "store your preferences"
        ]
    ),
    // ---- Operations / Analytics & research (6) ----
    pp!(
        "analytics",
        AnalyticsResearch,
        17.4,
        [
            "perform analytics",
            "web analytics",
            "usage analytics",
            "analyze usage",
            "analytics purposes"
        ]
    ),
    pp!(
        "product/service development",
        AnalyticsResearch,
        8.6,
        [
            "develop new products",
            "develop new services",
            "product development",
            "develop new features"
        ]
    ),
    pp!(
        "research",
        AnalyticsResearch,
        6.2,
        ["conduct research", "research purposes", "internal research"]
    ),
    pp!(
        "market research",
        AnalyticsResearch,
        4.0,
        [
            "market analysis",
            "understand our market",
            "consumer research"
        ]
    ),
    pp!(
        "statistical analysis",
        AnalyticsResearch,
        3.5,
        [
            "compile statistics",
            "statistical purposes",
            "aggregate statistics"
        ]
    ),
    pp!(
        "trend analysis",
        AnalyticsResearch,
        3.0,
        [
            "identify usage trends",
            "analyze trends",
            "understand trends"
        ]
    ),
    // ---- Legal / Legal & compliance (7) ----
    pp!(
        "legal compliance",
        LegalCompliance,
        28.1,
        [
            "comply with the law",
            "comply with legal obligations",
            "comply with applicable laws",
            "as required by law",
            "legal requirements"
        ]
    ),
    pp!(
        "regulatory compliance",
        LegalCompliance,
        10.2,
        [
            "comply with regulations",
            "regulatory requirements",
            "regulatory obligations"
        ]
    ),
    pp!(
        "policy compliance",
        LegalCompliance,
        7.4,
        [
            "enforce our policies",
            "enforce our terms",
            "enforce our terms of service",
            "enforce agreements"
        ]
    ),
    pp!(
        "legal rights protection",
        LegalCompliance,
        5.0,
        [
            "protect our legal rights",
            "establish or defend legal claims",
            "exercise legal rights"
        ]
    ),
    pp!(
        "law enforcement requests",
        LegalCompliance,
        4.0,
        [
            "respond to law enforcement",
            "respond to lawful requests",
            "respond to subpoenas",
            "court orders"
        ]
    ),
    pp!(
        "dispute resolution",
        LegalCompliance,
        3.0,
        ["resolve disputes", "handle disputes"]
    ),
    pp!(
        "audit requirements",
        LegalCompliance,
        2.5,
        ["audits", "internal audits", "audit purposes"]
    ),
    // ---- Legal / Security (7) ----
    pp!(
        "fraud prevention",
        Security,
        21.8,
        [
            "prevent fraud",
            "detect fraud",
            "fraud detection",
            "prevent fraudulent activity",
            "anti-fraud"
        ]
    ),
    pp!(
        "authentication",
        Security,
        6.6,
        [
            "authenticate users",
            "verify your credentials",
            "authenticate your account"
        ]
    ),
    pp!(
        "product/service safety",
        Security,
        5.4,
        [
            "safety of our services",
            "protect the safety",
            "user safety",
            "ensure safety"
        ]
    ),
    pp!(
        "security monitoring",
        Security,
        5.0,
        [
            "monitor for security",
            "protect the security",
            "maintain security",
            "security purposes",
            "network security"
        ]
    ),
    pp!(
        "threat detection",
        Security,
        3.5,
        [
            "detect security incidents",
            "detect malicious activity",
            "identify threats"
        ]
    ),
    pp!(
        "access control",
        Security,
        3.0,
        ["control access", "prevent unauthorized access"]
    ),
    pp!(
        "incident investigation",
        Security,
        2.5,
        [
            "investigate incidents",
            "investigate suspicious activity",
            "investigate violations"
        ]
    ),
    // ---- Third-party / Advertising & sales (6) ----
    pp!(
        "direct marketing",
        AdvertisingSales,
        20.8,
        [
            "marketing purposes",
            "send you marketing communications",
            "marketing emails",
            "direct mail marketing",
            "send promotional materials"
        ]
    ),
    pp!(
        "promotions",
        AdvertisingSales,
        18.8,
        [
            "promotional offers",
            "special offers",
            "contests and sweepstakes",
            "promotional communications"
        ]
    ),
    pp!(
        "targeted advertising",
        AdvertisingSales,
        16.3,
        [
            "interest-based advertising",
            "personalized advertising",
            "behavioral advertising",
            "serve relevant ads",
            "tailored advertising"
        ]
    ),
    pp!(
        "newsletters",
        AdvertisingSales,
        4.0,
        ["send newsletters", "email newsletters"]
    ),
    pp!(
        "sales outreach",
        AdvertisingSales,
        3.5,
        [
            "sales purposes",
            "sell our products",
            "business development"
        ]
    ),
    pp!(
        "advertising measurement",
        AdvertisingSales,
        3.0,
        [
            "measure ad effectiveness",
            "measure advertising performance",
            "ad campaign measurement"
        ]
    ),
    // ---- Third-party / Data sharing (5) ----
    pp!(
        "third-party sharing",
        DataSharing,
        18.8,
        [
            "share with third parties",
            "disclose to third parties",
            "share your information with third parties"
        ]
    ),
    pp!(
        "sharing with partners",
        DataSharing,
        15.0,
        [
            "share with our partners",
            "share with business partners",
            "provide personal information to our affiliated businesses",
            "data sharing with affiliates"
        ]
    ),
    pp!(
        "anonymization",
        DataSharing,
        4.3,
        [
            "share aggregated data",
            "share anonymized data",
            "de-identified data sharing"
        ]
    ),
    pp!(
        "data for sale",
        DataSharing,
        8.0,
        [
            "sell your personal information",
            "sale of personal information",
            "sell your data",
            "may sell your information"
        ]
    ),
    pp!(
        "service provider sharing",
        DataSharing,
        6.0,
        [
            "share with service providers",
            "share with vendors",
            "disclose to our service providers"
        ]
    ),
];

/// Iterate the purpose specs belonging to `category`.
pub fn purposes_for(category: PurposeCategory) -> impl Iterator<Item = &'static PurposeSpec> {
    PURPOSE_DESCRIPTORS
        .iter()
        .filter(move |p| p.category == category)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_48_descriptors() {
        assert_eq!(PURPOSE_DESCRIPTORS.len(), 48);
    }

    #[test]
    fn seven_categories_three_metas() {
        assert_eq!(PurposeCategory::ALL.len(), 7);
        assert_eq!(PurposeMeta::ALL.len(), 3);
        let n: usize = PurposeMeta::ALL.iter().map(|m| m.categories().len()).sum();
        assert_eq!(n, 7);
        for m in PurposeMeta::ALL {
            for &c in m.categories() {
                assert_eq!(c.meta(), m);
            }
        }
    }

    #[test]
    fn every_category_populated() {
        for c in PurposeCategory::ALL {
            assert!(purposes_for(c).count() >= 3, "{c:?} too sparse");
        }
    }

    #[test]
    fn names_and_surfaces_unique() {
        let mut seen: HashSet<&str> = HashSet::new();
        for p in PURPOSE_DESCRIPTORS {
            for form in std::iter::once(&p.name).chain(p.surfaces.iter()) {
                assert!(seen.insert(form), "purpose surface {form:?} duplicated");
                assert_eq!(*form, form.to_lowercase());
            }
        }
    }

    #[test]
    fn top3_matches_paper_for_advertising() {
        let mut ds: Vec<_> = purposes_for(PurposeCategory::AdvertisingSales).collect();
        ds.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap());
        assert_eq!(ds[0].name, "direct marketing");
        assert_eq!(ds[1].name, "promotions");
        assert_eq!(ds[2].name, "targeted advertising");
    }

    #[test]
    fn data_for_sale_exists() {
        // §5 highlights "data sharing → data for sale" (26 companies).
        assert!(PURPOSE_DESCRIPTORS
            .iter()
            .any(|p| p.name == "data for sale" && p.category == PurposeCategory::DataSharing));
    }

    #[test]
    fn category_name_roundtrip() {
        for c in PurposeCategory::ALL {
            assert_eq!(PurposeCategory::from_name(c.name()), Some(c));
        }
    }

    #[test]
    fn indices_dense() {
        for (i, m) in PurposeMeta::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        for (i, c) in PurposeCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
