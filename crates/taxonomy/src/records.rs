//! Structured annotation records produced by the pipeline and consumed by
//! the analysis layer.
//!
//! An [`Annotation`] pairs a taxonomy label ([`AnnotationPayload`]) with the
//! verbatim text span that evidences it (used by the hallucination check of
//! §3.2.2) and the line of the policy it was found on.

use crate::datatypes::{DataTypeCategory, DataTypeMeta};
use crate::handling::{ProtectionLabel, RetentionLabel};
use crate::purposes::{PurposeCategory, PurposeMeta};
use crate::rights::{AccessLabel, ChoiceLabel};
use serde::{Deserialize, Serialize};

/// Which of the four annotated aspect streams a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AspectKind {
    /// Collected data types.
    Types,
    /// Data-collection purposes.
    Purposes,
    /// Data handling (retention + protection).
    Handling,
    /// User rights (choices + access).
    Rights,
}

impl AspectKind {
    /// All four annotated aspect kinds.
    pub const ALL: [AspectKind; 4] = [
        AspectKind::Types,
        AspectKind::Purposes,
        AspectKind::Handling,
        AspectKind::Rights,
    ];

    /// Lower-case key.
    pub fn key(self) -> &'static str {
        match self {
            AspectKind::Types => "types",
            AspectKind::Purposes => "purposes",
            AspectKind::Handling => "handling",
            AspectKind::Rights => "rights",
        }
    }
}

impl std::fmt::Display for AspectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// The label part of an annotation.
///
/// Data types and purposes carry an *open* normalized descriptor string —
/// descriptors outside the built-in vocabulary (zero-shot annotations) flow
/// through unchanged — plus the closed category assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnnotationPayload {
    /// A collected data type, e.g. descriptor `"postal address"` in category
    /// [`DataTypeCategory::ContactInfo`].
    DataType {
        /// Normalized descriptor (open vocabulary).
        descriptor: String,
        /// Closed category assignment.
        category: DataTypeCategory,
    },
    /// A data-collection purpose.
    Purpose {
        /// Normalized descriptor (open vocabulary).
        descriptor: String,
        /// Closed category assignment.
        category: PurposeCategory,
    },
    /// A data-retention practice; `period_days` is populated for
    /// [`RetentionLabel::Stated`] mentions where the chatbot extracted a
    /// concrete period.
    Retention {
        /// Retention label.
        label: RetentionLabel,
        /// Stated retention period in days, if extracted.
        period_days: Option<u32>,
    },
    /// A data-protection practice.
    Protection {
        /// Protection label.
        label: ProtectionLabel,
    },
    /// A user-choice practice.
    Choice {
        /// Choice label.
        label: ChoiceLabel,
    },
    /// A user-access practice.
    Access {
        /// Access label.
        label: AccessLabel,
    },
}

impl AnnotationPayload {
    /// The aspect stream this payload belongs to.
    pub fn aspect_kind(&self) -> AspectKind {
        match self {
            AnnotationPayload::DataType { .. } => AspectKind::Types,
            AnnotationPayload::Purpose { .. } => AspectKind::Purposes,
            AnnotationPayload::Retention { .. } | AnnotationPayload::Protection { .. } => {
                AspectKind::Handling
            }
            AnnotationPayload::Choice { .. } | AnnotationPayload::Access { .. } => {
                AspectKind::Rights
            }
        }
    }

    /// A canonical key identifying "the same term" for the per-policy
    /// deduplication of Table 1 ("unique annotations after eliminating
    /// repetitive mentions of the same term").
    pub fn dedup_key(&self) -> String {
        match self {
            AnnotationPayload::DataType {
                descriptor,
                category,
            } => {
                format!("dt:{}:{}", category.index(), descriptor)
            }
            AnnotationPayload::Purpose {
                descriptor,
                category,
            } => {
                format!("pu:{}:{}", category.index(), descriptor)
            }
            AnnotationPayload::Retention { label, .. } => format!("re:{}", label.index()),
            AnnotationPayload::Protection { label } => format!("pr:{}", label.index()),
            AnnotationPayload::Choice { label } => format!("ch:{}", label.index()),
            AnnotationPayload::Access { label } => format!("ac:{}", label.index()),
        }
    }

    /// Data-type meta-category, if this is a data-type annotation.
    pub fn datatype_meta(&self) -> Option<DataTypeMeta> {
        match self {
            AnnotationPayload::DataType { category, .. } => Some(category.meta()),
            _ => None,
        }
    }

    /// Purpose meta-category, if this is a purpose annotation.
    pub fn purpose_meta(&self) -> Option<PurposeMeta> {
        match self {
            AnnotationPayload::Purpose { category, .. } => Some(category.meta()),
            _ => None,
        }
    }
}

/// One labeled annotation extracted from a privacy policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// The taxonomy label.
    pub payload: AnnotationPayload,
    /// Verbatim text span from the policy that evidences the label. The
    /// pipeline's hallucination check verifies this text is present in the
    /// source document.
    pub text: String,
    /// 1-based line number of the mention in the extracted policy text.
    pub line: usize,
}

impl Annotation {
    /// Construct an annotation.
    pub fn new(payload: AnnotationPayload, text: impl Into<String>, line: usize) -> Self {
        Annotation {
            payload,
            text: text.into(),
            line,
        }
    }

    /// The aspect stream this annotation belongs to.
    pub fn aspect_kind(&self) -> AspectKind {
        self.payload.aspect_kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(desc: &str) -> AnnotationPayload {
        AnnotationPayload::DataType {
            descriptor: desc.into(),
            category: DataTypeCategory::ContactInfo,
        }
    }

    #[test]
    fn aspect_kind_mapping() {
        assert_eq!(dt("email address").aspect_kind(), AspectKind::Types);
        assert_eq!(
            AnnotationPayload::Purpose {
                descriptor: "analytics".into(),
                category: PurposeCategory::AnalyticsResearch,
            }
            .aspect_kind(),
            AspectKind::Purposes
        );
        assert_eq!(
            AnnotationPayload::Retention {
                label: RetentionLabel::Limited,
                period_days: None
            }
            .aspect_kind(),
            AspectKind::Handling
        );
        assert_eq!(
            AnnotationPayload::Protection {
                label: ProtectionLabel::Generic
            }
            .aspect_kind(),
            AspectKind::Handling
        );
        assert_eq!(
            AnnotationPayload::Choice {
                label: ChoiceLabel::OptIn
            }
            .aspect_kind(),
            AspectKind::Rights
        );
        assert_eq!(
            AnnotationPayload::Access {
                label: AccessLabel::View
            }
            .aspect_kind(),
            AspectKind::Rights
        );
    }

    #[test]
    fn dedup_key_collapses_repeats_and_distinguishes_terms() {
        assert_eq!(
            dt("email address").dedup_key(),
            dt("email address").dedup_key()
        );
        assert_ne!(
            dt("email address").dedup_key(),
            dt("phone number").dedup_key()
        );
        // Same descriptor text in different enum arms must not collide.
        let p = AnnotationPayload::Purpose {
            descriptor: "email address".into(),
            category: PurposeCategory::BasicFunctioning,
        };
        assert_ne!(dt("email address").dedup_key(), p.dedup_key());
    }

    #[test]
    fn retention_dedup_ignores_period() {
        let a = AnnotationPayload::Retention {
            label: RetentionLabel::Stated,
            period_days: Some(730),
        };
        let b = AnnotationPayload::Retention {
            label: RetentionLabel::Stated,
            period_days: Some(365),
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn serde_roundtrip() {
        let ann = Annotation::new(dt("postal address"), "mailing address", 42);
        let json = serde_json::to_string(&ann).unwrap();
        let back: Annotation = serde_json::from_str(&json).unwrap();
        assert_eq!(ann, back);
    }

    #[test]
    fn metas_only_for_matching_variants() {
        assert!(dt("x").datatype_meta().is_some());
        assert!(dt("x").purpose_meta().is_none());
    }
}
