//! User-rights labels: choices and access practices (Table 1, "User choices"
//! and "User access" blocks).

use serde::{Deserialize, Serialize};

/// Label for a user-choice mention (opt-in/opt-out and privacy controls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChoiceLabel {
    /// Users must directly contact the company (e.g. via email) to opt out.
    OptOutViaContact,
    /// Users can opt out via a link provided by the company.
    OptOutViaLink,
    /// Company provides controls via a dedicated privacy-settings page.
    PrivacySettings,
    /// Users must consent before data can be collected, used, or shared.
    OptIn,
    /// The only option is for users to not use a feature or service.
    DoNotUse,
}

impl ChoiceLabel {
    /// All five choice labels in Table 1 order.
    pub const ALL: [ChoiceLabel; 5] = [
        ChoiceLabel::OptOutViaContact,
        ChoiceLabel::OptOutViaLink,
        ChoiceLabel::PrivacySettings,
        ChoiceLabel::OptIn,
        ChoiceLabel::DoNotUse,
    ];

    /// Table-style label name.
    pub fn name(self) -> &'static str {
        match self {
            ChoiceLabel::OptOutViaContact => "Opt-out via contact",
            ChoiceLabel::OptOutViaLink => "Opt-out via link",
            ChoiceLabel::PrivacySettings => "Privacy settings",
            ChoiceLabel::OptIn => "Opt-in",
            ChoiceLabel::DoNotUse => "Do not use",
        }
    }

    /// One-line description as in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            ChoiceLabel::OptOutViaContact => {
                "Users must directly contact the company (e.g., via email) to opt-out."
            }
            ChoiceLabel::OptOutViaLink => "Users can opt-out via a link provided by the company.",
            ChoiceLabel::PrivacySettings => {
                "Company provides controls via a dedicated privacy settings page."
            }
            ChoiceLabel::OptIn => {
                "Users must consent before data can be collected, used, or shared."
            }
            ChoiceLabel::DoNotUse => {
                "The only option is for users to not use a feature or service."
            }
        }
    }

    /// Parse a label name (case-insensitive). Accepts the parenthesized Table
    /// 3 spellings "Opt-out (contact)" and "Opt-out (link)".
    pub fn from_name(name: &str) -> Option<ChoiceLabel> {
        let lower = name.trim().to_ascii_lowercase();
        match lower.as_str() {
            "opt-out (contact)" => return Some(ChoiceLabel::OptOutViaContact),
            "opt-out (link)" => return Some(ChoiceLabel::OptOutViaLink),
            _ => {}
        }
        ChoiceLabel::ALL
            .iter()
            .copied()
            .find(|l| l.name().to_ascii_lowercase() == lower)
    }

    /// Stable dense index (0..5); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for ChoiceLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Label for a user-access mention (view/edit/delete/export rights).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessLabel {
    /// Users can modify, correct, or delete specific data.
    Edit,
    /// Users can fully delete their account (all data removed).
    FullDelete,
    /// Users can view their data.
    View,
    /// Users can export or obtain a copy of their data.
    Export,
    /// Users can partially delete their account (company may retain some data).
    PartialDelete,
    /// Users can deactivate their account (company retains access to data).
    Deactivate,
}

impl AccessLabel {
    /// All six access labels in Table 1 order.
    pub const ALL: [AccessLabel; 6] = [
        AccessLabel::Edit,
        AccessLabel::FullDelete,
        AccessLabel::View,
        AccessLabel::Export,
        AccessLabel::PartialDelete,
        AccessLabel::Deactivate,
    ];

    /// Table-style label name.
    pub fn name(self) -> &'static str {
        match self {
            AccessLabel::Edit => "Edit",
            AccessLabel::FullDelete => "Full delete",
            AccessLabel::View => "View",
            AccessLabel::Export => "Export",
            AccessLabel::PartialDelete => "Partial delete",
            AccessLabel::Deactivate => "Deactivate",
        }
    }

    /// One-line description as in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            AccessLabel::Edit => "Users can modify, correct, or delete specific data.",
            AccessLabel::FullDelete => {
                "Users can fully delete their account (all data is removed from servers/databases)."
            }
            AccessLabel::View => "Users can view their data.",
            AccessLabel::Export => "Users can export or obtain a copy of their data.",
            AccessLabel::PartialDelete => {
                "Users can partially delete their account (company may retain some of their data)."
            }
            AccessLabel::Deactivate => {
                "Users can deactivate their account (company retains access to their data)."
            }
        }
    }

    /// Parse a label name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AccessLabel> {
        let lower = name.trim().to_ascii_lowercase();
        AccessLabel::ALL
            .iter()
            .copied()
            .find(|l| l.name().to_ascii_lowercase() == lower)
    }

    /// Whether this access right implies *write* access to user data (used
    /// by the §5 read/write vs read-only breakdown).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            AccessLabel::Edit | AccessLabel::FullDelete | AccessLabel::PartialDelete
        )
    }

    /// Stable dense index (0..6); `ALL` lists variants in declaration
    /// order, so the discriminant is the position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for AccessLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_roundtrip() {
        for l in ChoiceLabel::ALL {
            assert_eq!(ChoiceLabel::from_name(l.name()), Some(l));
            assert!(!l.description().is_empty());
        }
        assert_eq!(
            ChoiceLabel::from_name("Opt-out (contact)"),
            Some(ChoiceLabel::OptOutViaContact)
        );
        assert_eq!(
            ChoiceLabel::from_name("Opt-out (link)"),
            Some(ChoiceLabel::OptOutViaLink)
        );
    }

    #[test]
    fn access_roundtrip() {
        for l in AccessLabel::ALL {
            assert_eq!(AccessLabel::from_name(l.name()), Some(l));
            assert!(!l.description().is_empty());
        }
    }

    #[test]
    fn counts_match_paper() {
        assert_eq!(ChoiceLabel::ALL.len(), 5);
        assert_eq!(AccessLabel::ALL.len(), 6);
    }

    #[test]
    fn indices_dense() {
        for (i, l) in ChoiceLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        for (i, l) in AccessLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn write_split_matches_section5() {
        // §5: read/write access = edit, partial delete, or full delete.
        let writes: Vec<_> = AccessLabel::ALL.iter().filter(|l| l.is_write()).collect();
        assert_eq!(writes.len(), 3);
        assert!(!AccessLabel::View.is_write());
        assert!(!AccessLabel::Export.is_write());
        assert!(!AccessLabel::Deactivate.is_write());
    }
}
