//! The eleven S&P sectors used for the sector breakdowns of Tables 2/3/5.

use serde::{Deserialize, Serialize};

/// An S&P (GICS-style) sector, with the abbreviations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sector {
    /// CD — Consumer discretionary.
    ConsumerDiscretionary,
    /// CS — Consumer staples.
    ConsumerStaples,
    /// EN — Energy.
    Energy,
    /// FS — Financials.
    Financials,
    /// HC — Health care.
    HealthCare,
    /// IN — Industrials.
    Industrials,
    /// IT — Information technology.
    InformationTechnology,
    /// MT — Materials.
    Materials,
    /// RE — Real estate.
    RealEstate,
    /// TC — Communication services.
    CommunicationServices,
    /// UT — Utilities.
    Utilities,
}

impl Sector {
    /// All eleven sectors in abbreviation order (CD, CS, EN, FS, HC, IN, IT,
    /// MT, RE, TC, UT).
    pub const ALL: [Sector; 11] = [
        Sector::ConsumerDiscretionary,
        Sector::ConsumerStaples,
        Sector::Energy,
        Sector::Financials,
        Sector::HealthCare,
        Sector::Industrials,
        Sector::InformationTechnology,
        Sector::Materials,
        Sector::RealEstate,
        Sector::CommunicationServices,
        Sector::Utilities,
    ];

    /// Two-letter abbreviation used throughout the paper's tables.
    pub fn abbrev(self) -> &'static str {
        match self {
            Sector::ConsumerDiscretionary => "CD",
            Sector::ConsumerStaples => "CS",
            Sector::Energy => "EN",
            Sector::Financials => "FS",
            Sector::HealthCare => "HC",
            Sector::Industrials => "IN",
            Sector::InformationTechnology => "IT",
            Sector::Materials => "MT",
            Sector::RealEstate => "RE",
            Sector::CommunicationServices => "TC",
            Sector::Utilities => "UT",
        }
    }

    /// Full sector name.
    pub fn name(self) -> &'static str {
        match self {
            Sector::ConsumerDiscretionary => "Consumer discretionary",
            Sector::ConsumerStaples => "Consumer staples",
            Sector::Energy => "Energy",
            Sector::Financials => "Financials",
            Sector::HealthCare => "Health care",
            Sector::Industrials => "Industrials",
            Sector::InformationTechnology => "Information technology",
            Sector::Materials => "Materials",
            Sector::RealEstate => "Real estate",
            Sector::CommunicationServices => "Communication services",
            Sector::Utilities => "Utilities",
        }
    }

    /// Parse a two-letter abbreviation.
    pub fn from_abbrev(s: &str) -> Option<Sector> {
        Sector::ALL.iter().copied().find(|x| x.abbrev() == s)
    }

    /// Approximate share of Russell-3000 constituents in this sector, used by
    /// the synthetic universe generator. Shares sum to 1.
    pub fn universe_share(self) -> f64 {
        match self {
            Sector::ConsumerDiscretionary => 0.110,
            Sector::ConsumerStaples => 0.040,
            Sector::Energy => 0.040,
            Sector::Financials => 0.160,
            Sector::HealthCare => 0.170,
            Sector::Industrials => 0.152,
            Sector::InformationTechnology => 0.140,
            Sector::Materials => 0.055,
            Sector::RealEstate => 0.070,
            Sector::CommunicationServices => 0.035,
            Sector::Utilities => 0.028,
        }
    }

    /// Stable dense index (0..11) for array-indexed per-sector accumulators;
    /// `ALL` lists variants in declaration order, so the discriminant is the
    /// position (asserted in tests).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Sector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrev_roundtrip() {
        for s in Sector::ALL {
            assert_eq!(Sector::from_abbrev(s.abbrev()), Some(s));
        }
        assert_eq!(Sector::from_abbrev("XX"), None);
    }

    #[test]
    fn eleven_sectors() {
        let mut ab: Vec<_> = Sector::ALL.iter().map(|s| s.abbrev()).collect();
        ab.sort_unstable();
        ab.dedup();
        assert_eq!(ab.len(), 11);
    }

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = Sector::ALL.iter().map(|s| s.universe_share()).sum();
        assert!((total - 1.0).abs() < 0.015, "shares sum to {total}");
    }

    #[test]
    fn index_is_dense_and_stable() {
        for (i, s) in Sector::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
