//! Out-of-vocabulary ("zero-shot") descriptors.
//!
//! The paper's first contribution is a pipeline that supports
//! *out-of-vocabulary (zero-shot) annotations by leaving the set of labels
//! open*: the chatbot is instructed to generate descriptors of its own for
//! terms not in the glossary. This module models that world: terms that are
//! **not** part of [`crate::DATA_TYPE_DESCRIPTORS`] / glossaries, but that a
//! capable LLM recognizes and can categorize anyway.
//!
//! The synthetic-policy generator plants these terms; the simulated chatbot
//! "knows" them (its world knowledge exceeds the glossary) and emits them as
//! open-vocabulary descriptors, which flow through the pipeline as plain
//! strings.

use crate::datatypes::DataTypeCategory;
use crate::purposes::PurposeCategory;

/// A zero-shot data-type term and the category a capable model assigns it.
#[derive(Debug, Clone, Copy)]
pub struct ZeroShotDataType {
    /// The surface term as it appears in policies (also used as the
    /// emitted descriptor).
    pub term: &'static str,
    /// Category a capable model assigns.
    pub category: DataTypeCategory,
}

/// Zero-shot data-type vocabulary (disjoint from the built-in glossary).
pub static ZERO_SHOT_DATA_TYPES: &[ZeroShotDataType] = &[
    ZeroShotDataType {
        term: "podcast listening habits",
        category: DataTypeCategory::ContentConsumption,
    },
    ZeroShotDataType {
        term: "gait patterns",
        category: DataTypeCategory::BiometricData,
    },
    ZeroShotDataType {
        term: "commute routes",
        category: DataTypeCategory::TravelData,
    },
    ZeroShotDataType {
        term: "smart home telemetry",
        category: DataTypeCategory::DeviceInfo,
    },
    ZeroShotDataType {
        term: "loyalty program tier",
        category: DataTypeCategory::AccountInfo,
    },
    ZeroShotDataType {
        term: "gaming achievements",
        category: DataTypeCategory::ProductServiceUsage,
    },
    ZeroShotDataType {
        term: "charging station usage",
        category: DataTypeCategory::VehicleInfo,
    },
    ZeroShotDataType {
        term: "dietary restrictions",
        category: DataTypeCategory::MedicalInfo,
    },
    ZeroShotDataType {
        term: "pet information",
        category: DataTypeCategory::DemographicInfo,
    },
    ZeroShotDataType {
        term: "voice assistant queries",
        category: DataTypeCategory::CommunicationData,
    },
    ZeroShotDataType {
        term: "keyboard typing cadence",
        category: DataTypeCategory::BiometricData,
    },
    ZeroShotDataType {
        term: "warranty registrations",
        category: DataTypeCategory::TransactionInfo,
    },
    ZeroShotDataType {
        term: "wearable sensor readings",
        category: DataTypeCategory::FitnessHealth,
    },
    ZeroShotDataType {
        term: "smart meter readings",
        category: DataTypeCategory::DeviceInfo,
    },
    ZeroShotDataType {
        term: "beacon proximity pings",
        category: DataTypeCategory::PreciseLocation,
    },
    ZeroShotDataType {
        term: "delivery drop-off notes",
        category: DataTypeCategory::ContactInfo,
    },
    ZeroShotDataType {
        term: "screen recording sessions",
        category: DataTypeCategory::InternetUsage,
    },
    ZeroShotDataType {
        term: "seat preferences",
        category: DataTypeCategory::Preferences,
    },
    ZeroShotDataType {
        term: "crypto wallet addresses",
        category: DataTypeCategory::FinancialInfo,
    },
    ZeroShotDataType {
        term: "drone flight logs",
        category: DataTypeCategory::DiagnosticData,
    },
];

/// A zero-shot purpose term and its category.
#[derive(Debug, Clone, Copy)]
pub struct ZeroShotPurpose {
    /// The surface term (also used as the emitted descriptor).
    pub term: &'static str,
    /// Category a capable model assigns.
    pub category: PurposeCategory,
}

/// Zero-shot purpose vocabulary (disjoint from the built-in glossary).
pub static ZERO_SHOT_PURPOSES: &[ZeroShotPurpose] = &[
    ZeroShotPurpose {
        term: "train machine learning models",
        category: PurposeCategory::AnalyticsResearch,
    },
    ZeroShotPurpose {
        term: "calibrate demand forecasts",
        category: PurposeCategory::AnalyticsResearch,
    },
    ZeroShotPurpose {
        term: "co-branded loyalty campaigns",
        category: PurposeCategory::AdvertisingSales,
    },
    ZeroShotPurpose {
        term: "verify statutory eligibility",
        category: PurposeCategory::LegalCompliance,
    },
    ZeroShotPurpose {
        term: "detect account-sharing abuse",
        category: PurposeCategory::Security,
    },
    ZeroShotPurpose {
        term: "benchmark against industry peers",
        category: PurposeCategory::AnalyticsResearch,
    },
    ZeroShotPurpose {
        term: "optimize store layouts",
        category: PurposeCategory::UserExperience,
    },
    ZeroShotPurpose {
        term: "coordinate franchise operations",
        category: PurposeCategory::BasicFunctioning,
    },
    ZeroShotPurpose {
        term: "syndicate listings to aggregators",
        category: PurposeCategory::DataSharing,
    },
    ZeroShotPurpose {
        term: "schedule preventive maintenance",
        category: PurposeCategory::BasicFunctioning,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatypes::DATA_TYPE_DESCRIPTORS;
    use crate::normalize::Normalizer;
    use crate::purposes::PURPOSE_DESCRIPTORS;

    #[test]
    fn zero_shot_terms_not_in_glossary() {
        let n = Normalizer::new();
        for z in ZERO_SHOT_DATA_TYPES {
            assert!(
                n.datatype(z.term).is_none(),
                "{} is in the built-in vocabulary; not zero-shot",
                z.term
            );
        }
        for z in ZERO_SHOT_PURPOSES {
            assert!(n.purpose(z.term).is_none(), "{} is in-vocabulary", z.term);
        }
    }

    #[test]
    fn zero_shot_terms_unique() {
        let mut seen = std::collections::HashSet::new();
        for z in ZERO_SHOT_DATA_TYPES {
            assert!(seen.insert(z.term));
        }
        for z in ZERO_SHOT_PURPOSES {
            assert!(seen.insert(z.term));
        }
    }

    #[test]
    fn vocabularies_disjoint_by_construction() {
        // Defensive: no zero-shot term equals any canonical descriptor name.
        for z in ZERO_SHOT_DATA_TYPES {
            assert!(DATA_TYPE_DESCRIPTORS.iter().all(|d| d.name != z.term));
        }
        for z in ZERO_SHOT_PURPOSES {
            assert!(PURPOSE_DESCRIPTORS.iter().all(|p| p.name != z.term));
        }
    }
}
