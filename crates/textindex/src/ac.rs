//! Aho–Corasick automaton over `u32` symbol streams.
//!
//! The automaton is symbol-agnostic: callers intern whatever alphabet they
//! scan — byte values (substring search over a folded document) or token
//! identifiers (vocabulary phrase matching) — and feed the same automaton.
//! Construction is the textbook goto/fail/output build: a trie over the
//! patterns, breadth-first failure links, and output links that chain each
//! state to its nearest proper suffix state carrying patterns. A scan walks
//! the input once and reports every occurrence of every pattern.
//!
//! Determinism: transitions live in `BTreeMap`s and states are numbered in
//! insertion order, so identical pattern sets always build identical tables
//! regardless of hash seeds.

use std::collections::BTreeMap;

/// Sentinel for "no state" in the output-link chains.
const NONE: u32 = u32::MAX;

/// Incremental trie construction for [`AcAutomaton`].
#[derive(Debug, Default)]
pub struct AcBuilder {
    goto: Vec<BTreeMap<u32, u32>>,
    terminal: Vec<Vec<u32>>,
    pat_lens: Vec<u32>,
    symbol_bound: u32,
}

impl AcBuilder {
    /// Empty builder (just the root state).
    pub fn new() -> AcBuilder {
        AcBuilder {
            goto: vec![BTreeMap::new()],
            terminal: vec![Vec::new()],
            pat_lens: Vec::new(),
            symbol_bound: 0,
        }
    }

    /// Insert one pattern; returns its id, or `None` if the pattern is
    /// empty. Duplicate patterns get distinct ids terminating at the same
    /// state (callers resolve precedence by id order).
    pub fn add(&mut self, symbols: impl IntoIterator<Item = u32>) -> Option<u32> {
        let mut state = 0usize;
        let mut len = 0u32;
        for sym in symbols {
            if sym >= self.symbol_bound {
                self.symbol_bound = sym + 1;
            }
            let next_id = u32::try_from(self.goto.len()).unwrap_or(u32::MAX);
            let next = match self.goto.get_mut(state) {
                Some(map) => *map.entry(sym).or_insert(next_id),
                None => next_id,
            };
            if next == next_id {
                self.goto.push(BTreeMap::new());
                self.terminal.push(Vec::new());
            }
            state = next as usize;
            len += 1;
        }
        if len == 0 {
            return None;
        }
        let pat = u32::try_from(self.pat_lens.len()).unwrap_or(u32::MAX);
        self.pat_lens.push(len);
        if let Some(t) = self.terminal.get_mut(state) {
            t.push(pat);
        }
        Some(pat)
    }

    /// Finalize: compute failure and output links.
    pub fn build(self) -> AcAutomaton {
        let AcBuilder {
            goto,
            terminal,
            pat_lens,
            symbol_bound,
        } = self;
        let n = goto.len();
        let mut fail = vec![0u32; n];
        let mut out_link = vec![NONE; n];
        let mut first_out = vec![NONE; n];

        let mut root_next = vec![0u32; symbol_bound as usize];
        for (&sym, &next) in &goto[0] {
            if let Some(slot) = root_next.get_mut(sym as usize) {
                *slot = next;
            }
        }

        // Breadth-first over the trie; parents are finalized before
        // children, so fail/out links can chain through them.
        let mut queue: Vec<u32> = goto[0].values().copied().collect();
        let mut head = 0usize;
        while head < queue.len() {
            let state = queue[head] as usize;
            head += 1;
            for (&sym, &child) in goto.get(state).into_iter().flatten() {
                queue.push(child);
                // Walk the parent's failure chain for the longest proper
                // suffix state that can consume `sym`.
                let mut f = fail.get(state).copied().unwrap_or(0);
                let fallback = loop {
                    if f == 0 {
                        break root_next.get(sym as usize).copied().unwrap_or(0);
                    }
                    if let Some(&next) = goto.get(f as usize).and_then(|m| m.get(&sym)) {
                        break next;
                    }
                    f = fail.get(f as usize).copied().unwrap_or(0);
                };
                if let Some(slot) = fail.get_mut(child as usize) {
                    *slot = if fallback == child { 0 } else { fallback };
                }
            }
            let f = fail.get(state).copied().unwrap_or(0) as usize;
            let linked = if terminal.get(f).is_none_or(|t| t.is_empty()) {
                out_link.get(f).copied().unwrap_or(NONE)
            } else {
                f as u32
            };
            if let Some(slot) = out_link.get_mut(state) {
                *slot = linked;
            }
            // `out_link[state]` was just written, so reuse `linked`.
            let first = if terminal.get(state).is_none_or(|t| t.is_empty()) {
                linked
            } else {
                state as u32
            };
            if let Some(slot) = first_out.get_mut(state) {
                *slot = first;
            }
        }

        AcAutomaton {
            goto,
            root_next,
            fail,
            terminal,
            out_link,
            first_out,
            pat_lens,
            symbol_bound,
        }
    }
}

/// Built Aho–Corasick matcher; see [`AcBuilder`].
#[derive(Debug)]
pub struct AcAutomaton {
    goto: Vec<BTreeMap<u32, u32>>,
    /// Dense root transitions (`symbol -> state`, 0 = stay at root): the
    /// scan spends most positions at or near the root, so the common case
    /// is one array read instead of a map probe.
    root_next: Vec<u32>,
    fail: Vec<u32>,
    terminal: Vec<Vec<u32>>,
    out_link: Vec<u32>,
    first_out: Vec<u32>,
    pat_lens: Vec<u32>,
    symbol_bound: u32,
}

impl AcAutomaton {
    /// Number of patterns inserted.
    pub fn pattern_count(&self) -> usize {
        self.pat_lens.len()
    }

    /// Length (in symbols) of pattern `pat`.
    pub fn pattern_len(&self, pat: u32) -> usize {
        self.pat_lens.get(pat as usize).copied().unwrap_or(0) as usize
    }

    /// Scan a symbol stream, reporting every pattern occurrence as
    /// `emit(end_index, pattern_id)` — `end_index` is the position of the
    /// occurrence's last symbol, so it starts at
    /// `end_index + 1 - pattern_len(pat)`. Symbols outside the automaton's
    /// alphabet reset the scan to the root (no pattern contains them).
    /// `emit` returns `false` to stop early.
    pub fn scan(
        &self,
        symbols: impl IntoIterator<Item = u32>,
        emit: &mut impl FnMut(usize, u32) -> bool,
    ) {
        let mut state = 0u32;
        for (i, sym) in symbols.into_iter().enumerate() {
            if sym >= self.symbol_bound {
                state = 0;
                continue;
            }
            state = self.step(state, sym);
            let mut s = self.first_out.get(state as usize).copied().unwrap_or(NONE);
            while s != NONE {
                for &pat in self.terminal.get(s as usize).into_iter().flatten() {
                    if !emit(i, pat) {
                        return;
                    }
                }
                s = self.out_link.get(s as usize).copied().unwrap_or(NONE);
            }
        }
    }

    fn step(&self, mut state: u32, sym: u32) -> u32 {
        loop {
            if state == 0 {
                return self.root_next.get(sym as usize).copied().unwrap_or(0);
            }
            if let Some(&next) = self.goto.get(state as usize).and_then(|m| m.get(&sym)) {
                return next;
            }
            state = self.fail.get(state as usize).copied().unwrap_or(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(patterns: &[&str]) -> AcAutomaton {
        let mut b = AcBuilder::new();
        for p in patterns {
            b.add(p.bytes().map(u32::from));
        }
        b.build()
    }

    /// All `(end, pat)` occurrences, in scan order.
    fn occurrences(ac: &AcAutomaton, text: &str) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        ac.scan(text.bytes().map(u32::from), &mut |end, pat| {
            out.push((end, pat));
            true
        });
        out
    }

    #[test]
    fn textbook_he_she_his_hers() {
        let ac = build(&["he", "she", "his", "hers"]);
        let got = occurrences(&ac, "ushers");
        // "ushers": "she" ends at 3, "he" ends at 3, "hers" ends at 5.
        assert!(got.contains(&(3, 1)), "{got:?}");
        assert!(got.contains(&(3, 0)), "{got:?}");
        assert!(got.contains(&(5, 3)), "{got:?}");
        assert_eq!(got.len(), 3, "{got:?}");
    }

    #[test]
    fn overlapping_and_nested_patterns_all_reported() {
        let ac = build(&["a", "aa", "aaa"]);
        let got = occurrences(&ac, "aaaa");
        // Every suffix of every prefix: 4x"a", 3x"aa", 2x"aaa".
        assert_eq!(got.iter().filter(|(_, p)| *p == 0).count(), 4);
        assert_eq!(got.iter().filter(|(_, p)| *p == 1).count(), 3);
        assert_eq!(got.iter().filter(|(_, p)| *p == 2).count(), 2);
    }

    #[test]
    fn duplicate_patterns_get_distinct_ids_same_hits() {
        let mut b = AcBuilder::new();
        let first = b.add("dup".bytes().map(u32::from));
        let second = b.add("dup".bytes().map(u32::from));
        assert_eq!(first, Some(0));
        assert_eq!(second, Some(1));
        let ac = b.build();
        let got = occurrences(&ac, "a dup here");
        assert_eq!(got, vec![(4, 0), (4, 1)]);
    }

    #[test]
    fn empty_pattern_rejected() {
        let mut b = AcBuilder::new();
        assert_eq!(b.add(std::iter::empty()), None);
        assert_eq!(b.add("x".bytes().map(u32::from)), Some(0));
    }

    #[test]
    fn out_of_alphabet_symbols_reset_to_root() {
        let ac = build(&["ab"]);
        // 0x1F600 is far outside the byte alphabet: a match must not
        // bridge across it.
        let symbols = [u32::from(b'a'), 0x1F600, u32::from(b'b')];
        let mut hits = Vec::new();
        ac.scan(symbols.iter().copied(), &mut |end, pat| {
            hits.push((end, pat));
            true
        });
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn early_exit_stops_scan() {
        let ac = build(&["a"]);
        let mut seen = 0;
        ac.scan("aaaa".bytes().map(u32::from), &mut |_, _| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn pattern_metadata() {
        let ac = build(&["he", "hers"]);
        assert_eq!(ac.pattern_count(), 2);
        assert_eq!(ac.pattern_len(0), 2);
        assert_eq!(ac.pattern_len(1), 4);
    }
}
