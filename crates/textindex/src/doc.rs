//! `FoldedDoc`: a policy document folded exactly once.
//!
//! The verification step of the paper's §3.2 loop asks, per candidate row,
//! "does the folded policy contain the folded candidate text?". The legacy
//! implementation folded the whole policy once per *task* and the candidate
//! once per *row*, then ran a full substring scan per row. A [`FoldedDoc`]
//! folds the document once at annotation start; [`FoldedDoc::verify_batch`]
//! answers a whole batch of candidate rows with one Aho–Corasick scan of
//! that buffer, folding each needle incrementally into the automaton trie
//! (no per-row fold allocation).

use crate::ac::AcBuilder;
use crate::fold::{fold_bytes, fold_into};

/// A document folded once: `fold(line) + ' '` per line, concatenated —
/// byte-identical to folding and joining the lines individually.
#[derive(Debug, Clone)]
pub struct FoldedDoc {
    buf: String,
    line_spans: Vec<(usize, usize)>,
}

/// Reusable backing buffers for [`FoldedDoc`]s.
///
/// A worker that folds many documents in sequence threads one arena
/// through all of them ([`FoldedDoc::from_lines_in`] to build,
/// [`FoldArena::recycle`] to hand the buffers back), so the fold buffer
/// and span table are allocated once per worker and grown to the largest
/// document, instead of allocated fresh for every policy.
#[derive(Debug, Default)]
pub struct FoldArena {
    buf: String,
    line_spans: Vec<(usize, usize)>,
}

impl FoldArena {
    /// An empty arena (first use allocates like [`FoldedDoc::from_lines`]).
    pub fn new() -> FoldArena {
        FoldArena::default()
    }

    /// Take a finished document's buffers back for the next
    /// [`FoldedDoc::from_lines_in`] call. Dropping the doc instead is not
    /// an error — the next fold simply allocates fresh buffers.
    pub fn recycle(&mut self, doc: FoldedDoc) {
        self.buf = doc.buf;
        self.line_spans = doc.line_spans;
    }
}

fn fill<'a>(
    mut buf: String,
    mut line_spans: Vec<(usize, usize)>,
    lines: impl Iterator<Item = &'a str>,
) -> FoldedDoc {
    buf.clear();
    line_spans.clear();
    // Folding never grows a line; ~64 bytes per line is a safe start. On a
    // recycled arena with enough capacity these reserves are no-ops.
    buf.reserve(lines.size_hint().0.saturating_mul(64));
    line_spans.reserve(lines.size_hint().0);
    for line in lines {
        let start = buf.len();
        fold_into(&mut buf, line);
        line_spans.push((start, buf.len()));
        buf.push(' ');
    }
    FoldedDoc { buf, line_spans }
}

impl FoldedDoc {
    /// Fold each line once into the shared buffer.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> FoldedDoc {
        fill(String::new(), Vec::new(), lines.into_iter())
    }

    /// [`FoldedDoc::from_lines`], but built in `arena`'s recycled buffers:
    /// byte-identical output, no fresh allocation when the arena's last
    /// document was at least as large.
    pub fn from_lines_in<'a>(
        arena: &mut FoldArena,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> FoldedDoc {
        fill(
            std::mem::take(&mut arena.buf),
            std::mem::take(&mut arena.line_spans),
            lines.into_iter(),
        )
    }

    /// The whole folded buffer.
    pub fn folded(&self) -> &str {
        &self.buf
    }

    /// Number of source lines.
    pub fn line_count(&self) -> usize {
        self.line_spans.len()
    }

    /// Byte span of line `idx`'s folded text within [`Self::folded`]
    /// (excludes the joining space).
    pub fn line_span(&self, idx: usize) -> Option<(usize, usize)> {
        self.line_spans.get(idx).copied()
    }

    /// For each needle, whether `fold(needle)` occurs as a substring of the
    /// folded buffer — the batched equivalent of
    /// `self.folded().contains(&fold(needle))` per needle, answered with a
    /// single scan. Needles that fold to the empty string are trivially
    /// present, matching `str::contains("")`.
    pub fn verify_batch<'a>(&self, needles: impl IntoIterator<Item = &'a str>) -> Vec<bool> {
        let mut builder = AcBuilder::new();
        let pats: Vec<Option<u32>> = needles
            .into_iter()
            .map(|needle| builder.add(fold_bytes(needle).map(u32::from)))
            .collect();
        let ac = builder.build();
        let mut found = vec![false; ac.pattern_count()];
        let mut remaining = found.len();
        ac.scan(self.buf.bytes().map(u32::from), &mut |_, pat| {
            let Some(slot) = found.get_mut(pat as usize) else {
                return true;
            };
            if !*slot {
                *slot = true;
                remaining -= 1;
            }
            remaining > 0
        });
        pats.into_iter()
            .map(|pat| match pat {
                None => true,
                Some(id) => found.get(id as usize).copied().unwrap_or(false),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_taxonomy::normalize::fold;

    const LINES: [&str; 4] = [
        "We collect your Email Address.",
        "",
        "  Third parties: analytics, advertising!  ",
        "We do not sell biometric data.",
    ];

    fn doc() -> FoldedDoc {
        FoldedDoc::from_lines(LINES)
    }

    #[test]
    fn buffer_is_fold_per_line_plus_space() {
        let mut expected = String::new();
        for line in LINES {
            expected.push_str(&fold(line));
            expected.push(' ');
        }
        assert_eq!(doc().folded(), expected);
    }

    #[test]
    fn line_spans_slice_back_to_folds() {
        let d = doc();
        assert_eq!(d.line_count(), LINES.len());
        for (i, line) in LINES.iter().enumerate() {
            let (start, end) = d.line_span(i).unwrap();
            assert_eq!(&d.folded()[start..end], fold(line));
        }
        assert_eq!(d.line_span(LINES.len()), None);
    }

    #[test]
    fn verify_batch_matches_contains_of_fold() {
        let d = doc();
        let needles = [
            "email address",
            "EMAIL, address",
            "biometric data",
            "postal address",
            "analytics advertising",
            "",
            "!!!",
            "collect your email address third",
        ];
        let got = d.verify_batch(needles.iter().copied());
        let expected: Vec<bool> = needles
            .iter()
            .map(|n| d.folded().contains(&fold(n)))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_needles_verify_independently() {
        let d = doc();
        let got = d.verify_batch(["email address", "email address", "nope"]);
        assert_eq!(got, vec![true, true, false]);
    }

    #[test]
    fn arena_reuse_is_byte_identical_and_keeps_capacity() {
        let mut arena = FoldArena::new();
        let big = FoldedDoc::from_lines_in(&mut arena, LINES);
        assert_eq!(big.folded(), doc().folded());
        let grown_capacity = big.buf.capacity();
        arena.recycle(big);
        // A smaller follow-up document reuses the grown buffer.
        let small = FoldedDoc::from_lines_in(&mut arena, ["tiny line"]);
        assert_eq!(
            small.folded(),
            FoldedDoc::from_lines(["tiny line"]).folded()
        );
        assert!(small.buf.capacity() >= grown_capacity);
        assert_eq!(small.line_count(), 1);
    }

    #[test]
    fn empty_document_contains_only_empty_folds() {
        let d = FoldedDoc::from_lines(std::iter::empty());
        assert_eq!(d.folded(), "");
        assert_eq!(d.line_count(), 0);
        assert_eq!(d.verify_batch(["x", " ; "]), vec![false, true]);
    }
}
