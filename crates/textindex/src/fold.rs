//! Allocation-free re-expressions of [`aipan_taxonomy::normalize::fold`].
//!
//! `fold` returns a fresh `String` per call, which is fine at vocabulary
//! build time but shows up hot when the pipeline folds thousands of
//! candidate rows per corpus. These helpers produce the *same bytes* —
//! property-tested against `fold` in `tests/fold_props.rs` — without the
//! per-call allocation: [`fold_into`] appends to a caller-reused buffer,
//! and [`fold_bytes`] streams the folded UTF-8 bytes one at a time (used
//! to insert verification needles straight into an automaton trie).
//!
//! The fold itself: ASCII-lowercase; keep alphanumerics plus `-` `/` `&`
//! `'`; collapse every separator run to a single space; no leading or
//! trailing space.

/// Whether a (lowercased) char survives the fold.
fn keep(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '-' || ch == '/' || ch == '&' || ch == '\''
}

/// Append `fold(s)` onto `dst` without allocating a fresh `String`.
pub fn fold_into(dst: &mut String, s: &str) {
    let mut pending_space = false;
    let mut emitted = false;
    for ch in s.chars() {
        let ch = ch.to_ascii_lowercase();
        if keep(ch) {
            if pending_space {
                dst.push(' ');
                pending_space = false;
            }
            dst.push(ch);
            emitted = true;
        } else if emitted {
            pending_space = true;
        }
    }
}

/// Stream the UTF-8 bytes of `fold(s)` without materializing it.
pub fn fold_bytes(s: &str) -> FoldBytes<'_> {
    FoldBytes {
        chars: s.chars(),
        buf: [0; 4],
        buf_len: 0,
        buf_pos: 0,
        pending_space: false,
        emitted: false,
    }
}

/// Iterator state for [`fold_bytes`].
#[derive(Debug, Clone)]
pub struct FoldBytes<'a> {
    chars: std::str::Chars<'a>,
    /// UTF-8 bytes of the current folded char still to be yielded.
    buf: [u8; 4],
    buf_len: u8,
    buf_pos: u8,
    /// A separator run was seen after at least one kept char; emit one
    /// space if another kept char follows (never trailing).
    pending_space: bool,
    emitted: bool,
}

impl Iterator for FoldBytes<'_> {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.buf_pos < self.buf_len {
            let b = self.buf[self.buf_pos as usize];
            self.buf_pos += 1;
            return Some(b);
        }
        loop {
            let ch = self.chars.next()?.to_ascii_lowercase();
            if keep(ch) {
                let encoded = ch.encode_utf8(&mut self.buf);
                self.buf_len = u8::try_from(encoded.len()).unwrap_or(u8::MAX);
                self.buf_pos = 1;
                self.emitted = true;
                if self.pending_space {
                    self.pending_space = false;
                    self.buf_pos = 0;
                    return Some(b' ');
                }
                return Some(self.buf[0]);
            }
            if self.emitted {
                self.pending_space = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_taxonomy::normalize::fold;

    fn folded_via_bytes(s: &str) -> Vec<u8> {
        fold_bytes(s).collect()
    }

    #[test]
    fn matches_taxonomy_fold_on_representative_inputs() {
        for s in [
            "",
            "   ",
            "  E-Mail   Address!! ",
            "IP, address.",
            "zip/postal code",
            "We do NOT sell data…",
            "café résumé 中文 data",
            "a",
            "!?",
            "trailing space ",
            " leading",
        ] {
            let expected = fold(s);
            let mut appended = String::from("prefix·");
            fold_into(&mut appended, s);
            assert_eq!(appended, format!("prefix·{expected}"), "fold_into({s:?})");
            assert_eq!(
                folded_via_bytes(s),
                expected.as_bytes().to_vec(),
                "fold_bytes({s:?})"
            );
        }
    }

    #[test]
    fn fold_into_appends_without_separator() {
        let mut buf = String::new();
        fold_into(&mut buf, "One!");
        fold_into(&mut buf, "Two?");
        // Appends are raw concatenation; callers insert their own joins.
        assert_eq!(buf, "onetwo");
    }

    #[test]
    fn multibyte_kept_chars_stream_all_their_bytes() {
        // '中' is alphanumeric (Unicode letter) and 3 bytes in UTF-8.
        assert_eq!(folded_via_bytes("中"), "中".as_bytes().to_vec());
        assert_eq!(folded_via_bytes("a 中 b"), "a 中 b".as_bytes().to_vec());
    }
}
