//! Fold-once text engine shared by the annotation pipeline.
//!
//! The paper's §3.2 annotate-and-verify loop touches every policy line many
//! times: vocabulary scanning per task, substring verification per candidate
//! row, and normalization folds per mention. This crate centralizes the two
//! data structures that let the pipeline do each of those passes exactly
//! once:
//!
//! * [`AcAutomaton`] — a classic Aho–Corasick automaton (goto/fail/output
//!   tables) over `u32` symbol streams. Symbols are whatever the caller
//!   interns: byte values for substring search, token identifiers for
//!   vocabulary phrase matching. One scan of a document yields *every*
//!   occurrence of *every* pattern.
//! * [`FoldedDoc`] — a policy document folded exactly once through the
//!   taxonomy normalization ([`aipan_taxonomy::normalize::fold`]) into a single
//!   buffer with per-line spans. Verification queries run as one batched
//!   automaton scan over that buffer ([`FoldedDoc::verify_batch`]), with
//!   the needles folded incrementally ([`fold_bytes`]) so no per-row fold
//!   `String` is ever allocated.
//!
//! The folding helpers ([`fold_into`], [`fold_bytes`]) are byte-exact
//! re-expressions of [`aipan_taxonomy::normalize::fold`] — property-tested against it
//! in `tests/fold_props.rs` — differing only in where the output goes
//! (appended to a reused buffer / streamed as bytes) rather than in what it
//! is.

pub mod ac;
pub mod doc;
pub mod fold;

pub use ac::{AcAutomaton, AcBuilder};
pub use doc::{FoldArena, FoldedDoc};
pub use fold::{fold_bytes, fold_into, FoldBytes};
