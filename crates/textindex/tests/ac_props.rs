//! Differential property tests: the Aho–Corasick automaton reports exactly
//! the occurrence set of a naive per-pattern sliding-window search, over a
//! deliberately small alphabet so overlaps, nestings, and shared prefixes
//! are dense.

use aipan_textindex::AcBuilder;
use proptest::prelude::*;

/// Every `(end_index, pattern_index)` occurrence, the naive way.
fn naive_occurrences(patterns: &[String], text: &str) -> Vec<(usize, u32)> {
    let text: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    for (pi, pat) in patterns.iter().enumerate() {
        let pat: Vec<char> = pat.chars().collect();
        if pat.is_empty() {
            continue;
        }
        for end in (pat.len() - 1)..text.len() {
            let start = end + 1 - pat.len();
            if text[start..=end] == pat[..] {
                out.push((end, pi as u32));
            }
        }
    }
    out.sort_unstable();
    out
}

fn ac_occurrences(patterns: &[String], text: &str) -> Vec<(usize, u32)> {
    let mut builder = AcBuilder::new();
    // Map automaton pattern ids back to input indices (empty patterns are
    // rejected by the builder and simply never occur).
    let mut index_of: Vec<u32> = Vec::new();
    for (pi, pat) in patterns.iter().enumerate() {
        if builder.add(pat.chars().map(u32::from)).is_some() {
            index_of.push(pi as u32);
        }
    }
    let ac = builder.build();
    let mut out = Vec::new();
    ac.scan(text.chars().map(u32::from), &mut |end, pat| {
        out.push((end, index_of[pat as usize]));
        true
    });
    out.sort_unstable();
    out
}

proptest! {
    #[test]
    fn automaton_equals_naive_search(
        patterns in proptest::collection::vec("[ab]{0,4}", 1..8),
        text in "[abc]{0,40}",
    ) {
        prop_assert_eq!(
            ac_occurrences(&patterns, &text),
            naive_occurrences(&patterns, &text),
            "patterns={:?} text={:?}", patterns, text
        );
    }

    #[test]
    fn automaton_equals_naive_search_wide_alphabet(
        patterns in proptest::collection::vec("[a-f]{1,6}", 1..10),
        text in "[a-h ]{0,60}",
    ) {
        prop_assert_eq!(
            ac_occurrences(&patterns, &text),
            naive_occurrences(&patterns, &text),
            "patterns={:?} text={:?}", patterns, text
        );
    }
}
