//! Property tests: the allocation-free fold re-expressions are byte-exact
//! against `aipan_taxonomy::normalize::fold`, and `FoldedDoc::verify_batch` agrees
//! with the legacy per-needle `contains(&fold(needle))` check.

use aipan_taxonomy::normalize::fold;
use aipan_textindex::{fold_bytes, fold_into, FoldedDoc};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fold_into_appends_exactly_fold(s in ".{0,120}") {
        let mut buf = String::from("⟨seed⟩");
        fold_into(&mut buf, &s);
        prop_assert_eq!(buf, format!("⟨seed⟩{}", fold(&s)));
    }

    #[test]
    fn fold_bytes_streams_exactly_fold(s in ".{0,120}") {
        let streamed: Vec<u8> = fold_bytes(&s).collect();
        prop_assert_eq!(streamed, fold(&s).into_bytes());
    }

    #[test]
    fn folded_doc_buffer_equals_per_line_folds(
        lines in proptest::collection::vec(".{0,60}", 0..8)
    ) {
        let doc = FoldedDoc::from_lines(lines.iter().map(String::as_str));
        let mut expected = String::new();
        for line in &lines {
            expected.push_str(&fold(line));
            expected.push(' ');
        }
        prop_assert_eq!(doc.folded(), expected.as_str());
        prop_assert_eq!(doc.line_count(), lines.len());
        for (i, line) in lines.iter().enumerate() {
            let span = doc.line_span(i);
            prop_assert!(span.is_some());
            if let Some((start, end)) = span {
                let folded_line = fold(line);
                prop_assert_eq!(&doc.folded()[start..end], folded_line.as_str());
            }
        }
    }

    #[test]
    fn verify_batch_equals_contains_fold(
        lines in proptest::collection::vec(
            "(we|do not|collect|email address|ip|[a-z]{1,8}|[ -~]{0,20}| )(, | )?(data|info|address)?",
            0..6
        ),
        needles in proptest::collection::vec(
            "(email address|ip|data|info|[a-z]{0,6}|[ -~]{0,12})",
            0..10
        ),
    ) {
        let doc = FoldedDoc::from_lines(lines.iter().map(String::as_str));
        let got = doc.verify_batch(needles.iter().map(String::as_str));
        let expected: Vec<bool> = needles
            .iter()
            .map(|n| doc.folded().contains(&fold(n)))
            .collect();
        prop_assert_eq!(got, expected, "lines={:?} needles={:?}", lines, needles);
    }
}
