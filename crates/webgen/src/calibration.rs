//! Calibration targets: the coverage and mention-count distributions the
//! synthetic corpus is fit to.
//!
//! Each table below transcribes the paper's measured statistics (Tables 2b,
//! 3, and 5): overall coverage (fraction of companies with ≥1 annotation in
//! the category), the mean/SD of the number of unique descriptors among
//! covered companies, and the per-sector coverage anchors the paper reports
//! (top-3 and lowest sectors). Sectors without an anchor get the residual
//! coverage that keeps the share-weighted overall on target.

use aipan_taxonomy::{
    AccessLabel, ChoiceLabel, DataTypeCategory, ProtectionLabel, PurposeCategory, RetentionLabel,
    Sector,
};

/// Calibration entry for one category/label.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Overall coverage in `[0,1]`.
    pub coverage: f64,
    /// Mean number of unique descriptors among covered companies.
    pub mean: f64,
    /// Standard deviation of that count.
    pub sd: f64,
    /// Known per-sector coverage anchors.
    pub anchors: &'static [(Sector, f64)],
}

impl Calibration {
    /// Coverage for `sector`: the anchor if known, otherwise the residual
    /// value that keeps the share-weighted average equal to `coverage`,
    /// clamped to [0.01, 0.99].
    pub fn sector_coverage(&self, sector: Sector) -> f64 {
        if let Some(&(_, c)) = self.anchors.iter().find(|(s, _)| *s == sector) {
            return c;
        }
        let mut known_mass = 0.0;
        let mut known_share = 0.0;
        for &(s, c) in self.anchors {
            known_mass += s.universe_share() * c;
            known_share += s.universe_share();
        }
        let rest_share = (1.0 - known_share).max(1e-9);
        ((self.coverage - known_mass) / rest_share).clamp(0.01, 0.99)
    }

    /// Mean unique-descriptor count for a covered company in `sector`,
    /// scaled by relative sector activity.
    pub fn sector_mean(&self, sector: Sector) -> f64 {
        let rel = (self.sector_coverage(sector) / self.coverage.max(1e-9)).sqrt();
        (self.mean * rel.clamp(0.6, 1.6)).max(1.0)
    }
}

use aipan_taxonomy::Sector::*;

/// Table 5 calibration for each of the 34 data-type categories.
pub fn datatype_calibration(category: DataTypeCategory) -> Calibration {
    use DataTypeCategory::*;
    // (coverage, mean, sd, anchors = [(sector, coverage)])
    let (coverage, mean, sd, anchors): (f64, f64, f64, &'static [(Sector, f64)]) = match category {
        ContactInfo => (
            0.864,
            3.6,
            1.4,
            &[
                (HealthCare, 0.910),
                (CommunicationServices, 0.908),
                (ConsumerDiscretionary, 0.904),
                (Financials, 0.774),
            ],
        ),
        PersonalIdentifier => (
            0.895,
            3.4,
            2.6,
            &[
                (CommunicationServices, 0.939),
                (ConsumerDiscretionary, 0.918),
                (ConsumerStaples, 0.913),
                (Energy, 0.778),
            ],
        ),
        ProfessionalInfo => (
            0.590,
            4.5,
            5.0,
            &[
                (InformationTechnology, 0.687),
                (HealthCare, 0.656),
                (CommunicationServices, 0.653),
                (Utilities, 0.444),
            ],
        ),
        DemographicInfo => (
            0.499,
            4.7,
            4.2,
            &[
                (CommunicationServices, 0.673),
                (ConsumerDiscretionary, 0.653),
                (ConsumerStaples, 0.621),
                (Materials, 0.298),
            ],
        ),
        EducationalInfo => (
            0.279,
            2.2,
            2.3,
            &[
                (HealthCare, 0.346),
                (Financials, 0.314),
                (ConsumerStaples, 0.282),
                (Materials, 0.158),
            ],
        ),
        VehicleInfo => (
            0.050,
            3.0,
            8.2,
            &[
                (ConsumerDiscretionary, 0.113),
                (RealEstate, 0.097),
                (Industrials, 0.080),
                (HealthCare, 0.004),
            ],
        ),
        DeviceInfo => (
            0.744,
            4.0,
            2.9,
            &[
                (CommunicationServices, 0.888),
                (ConsumerDiscretionary, 0.863),
                (InformationTechnology, 0.830),
                (Financials, 0.583),
            ],
        ),
        OnlineIdentifier => (
            0.809,
            1.7,
            0.9,
            &[
                (CommunicationServices, 0.888),
                (ConsumerDiscretionary, 0.883),
                (Utilities, 0.870),
                (Financials, 0.657),
            ],
        ),
        AccountInfo => (
            0.500,
            2.4,
            1.6,
            &[
                (ConsumerDiscretionary, 0.646),
                (CommunicationServices, 0.622),
                (InformationTechnology, 0.604),
                (Energy, 0.303),
            ],
        ),
        NetworkConnectivity => (
            0.295,
            1.5,
            1.0,
            &[
                (ConsumerDiscretionary, 0.450),
                (CommunicationServices, 0.449),
                (InformationTechnology, 0.347),
                (Energy, 0.141),
            ],
        ),
        SocialMediaData => (
            0.233,
            1.6,
            1.2,
            &[
                (ConsumerDiscretionary, 0.395),
                (CommunicationServices, 0.367),
                (ConsumerStaples, 0.340),
                (Materials, 0.096),
            ],
        ),
        ExternalData => (
            0.124,
            1.7,
            1.4,
            &[
                (CommunicationServices, 0.235),
                (Utilities, 0.185),
                (ConsumerStaples, 0.175),
                (Energy, 0.051),
            ],
        ),
        MedicalInfo => (
            0.283,
            3.7,
            3.5,
            &[
                (HealthCare, 0.501),
                (ConsumerStaples, 0.311),
                (Financials, 0.280),
                (Energy, 0.111),
            ],
        ),
        BiometricData => (
            0.164,
            2.6,
            3.0,
            &[
                (Financials, 0.202),
                (HealthCare, 0.191),
                (ConsumerDiscretionary, 0.189),
                (Energy, 0.030),
            ],
        ),
        PhysicalCharacteristic => (
            0.112,
            1.5,
            1.1,
            &[
                (ConsumerStaples, 0.165),
                (Financials, 0.161),
                (ConsumerDiscretionary, 0.144),
                (Energy, 0.040),
            ],
        ),
        FitnessHealth => (
            0.035,
            2.2,
            2.5,
            &[
                (CommunicationServices, 0.071),
                (ConsumerDiscretionary, 0.052),
                (HealthCare, 0.047),
                (InformationTechnology, 0.015),
            ],
        ),
        FinancialInfo => (
            0.539,
            3.2,
            2.3,
            &[
                (ConsumerDiscretionary, 0.735),
                (Utilities, 0.648),
                (Financials, 0.639),
                (Energy, 0.273),
            ],
        ),
        LegalInfo => (
            0.287,
            2.3,
            2.1,
            &[
                (Financials, 0.359),
                (ConsumerDiscretionary, 0.330),
                (RealEstate, 0.323),
                (Materials, 0.167),
            ],
        ),
        FinancialCapability => (
            0.215,
            2.5,
            2.1,
            &[
                (Financials, 0.516),
                (RealEstate, 0.226),
                (ConsumerDiscretionary, 0.192),
                (ConsumerStaples, 0.087),
            ],
        ),
        InsuranceInfo => (
            0.148,
            2.0,
            1.7,
            &[
                (Financials, 0.242),
                (HealthCare, 0.222),
                (ConsumerDiscretionary, 0.134),
                (Materials, 0.061),
            ],
        ),
        PreciseLocation => (
            0.509,
            1.5,
            0.9,
            &[
                (CommunicationServices, 0.714),
                (ConsumerDiscretionary, 0.684),
                (ConsumerStaples, 0.592),
                (Energy, 0.253),
            ],
        ),
        ApproximateLocation => (
            0.333,
            1.8,
            1.2,
            &[
                (CommunicationServices, 0.541),
                (InformationTechnology, 0.449),
                (ConsumerDiscretionary, 0.430),
                (Utilities, 0.167),
            ],
        ),
        TravelData => (
            0.066,
            1.6,
            1.9,
            &[
                (Industrials, 0.104),
                (ConsumerDiscretionary, 0.096),
                (CommunicationServices, 0.092),
                (Utilities, 0.019),
            ],
        ),
        PhysicalInteraction => (
            0.028,
            1.2,
            0.5,
            &[
                (ConsumerDiscretionary, 0.065),
                (RealEstate, 0.040),
                (Industrials, 0.036),
                (Financials, 0.016),
            ],
        ),
        InternetUsage => (
            0.728,
            3.8,
            2.8,
            &[
                (CommunicationServices, 0.847),
                (ConsumerDiscretionary, 0.832),
                (ConsumerStaples, 0.806),
                (Energy, 0.485),
            ],
        ),
        TrackingData => (
            0.467,
            2.3,
            1.6,
            &[
                (ConsumerDiscretionary, 0.550),
                (InformationTechnology, 0.542),
                (CommunicationServices, 0.510),
                (Financials, 0.377),
            ],
        ),
        ProductServiceUsage => (
            0.508,
            2.1,
            1.8,
            &[
                (CommunicationServices, 0.724),
                (ConsumerDiscretionary, 0.619),
                (ConsumerStaples, 0.602),
                (Energy, 0.323),
            ],
        ),
        TransactionInfo => (
            0.439,
            2.2,
            1.5,
            &[
                (ConsumerDiscretionary, 0.639),
                (Financials, 0.601),
                (ConsumerStaples, 0.583),
                (Energy, 0.212),
            ],
        ),
        Preferences => (
            0.491,
            2.0,
            1.3,
            &[
                (ConsumerDiscretionary, 0.656),
                (ConsumerStaples, 0.641),
                (CommunicationServices, 0.541),
                (Utilities, 0.296),
            ],
        ),
        ContentGeneration => (
            0.328,
            2.3,
            1.9,
            &[
                (ConsumerDiscretionary, 0.495),
                (CommunicationServices, 0.418),
                (ConsumerStaples, 0.417),
                (Utilities, 0.130),
            ],
        ),
        CommunicationData => (
            0.338,
            1.9,
            1.4,
            &[
                (CommunicationServices, 0.480),
                (ConsumerDiscretionary, 0.426),
                (InformationTechnology, 0.390),
                (Utilities, 0.111),
            ],
        ),
        FeedbackData => (
            0.253,
            1.8,
            1.2,
            &[
                (ConsumerDiscretionary, 0.371),
                (ConsumerStaples, 0.340),
                (InformationTechnology, 0.310),
                (Energy, 0.121),
            ],
        ),
        ContentConsumption => (
            0.267,
            1.3,
            0.8,
            &[
                (CommunicationServices, 0.469),
                (InformationTechnology, 0.347),
                (ConsumerStaples, 0.330),
                (Utilities, 0.111),
            ],
        ),
        DiagnosticData => (
            0.143,
            1.6,
            1.3,
            &[
                (CommunicationServices, 0.265),
                (InformationTechnology, 0.220),
                (Industrials, 0.171),
                (Energy, 0.040),
            ],
        ),
    };
    Calibration {
        coverage,
        mean,
        sd,
        anchors,
    }
}

/// Table 2b calibration for each of the 7 purpose categories.
pub fn purpose_calibration(category: PurposeCategory) -> Calibration {
    use PurposeCategory::*;
    let (coverage, mean, sd, anchors): (f64, f64, f64, &'static [(Sector, f64)]) = match category {
        BasicFunctioning => (
            0.951,
            9.1,
            7.8,
            &[
                (ConsumerStaples, 0.990),
                (CommunicationServices, 0.980),
                (HealthCare, 0.974),
                (Energy, 0.889),
            ],
        ),
        UserExperience => (
            0.865,
            3.9,
            2.9,
            &[
                (ConsumerStaples, 0.932),
                (InformationTechnology, 0.923),
                (ConsumerDiscretionary, 0.921),
                (Financials, 0.751),
            ],
        ),
        AnalyticsResearch => (
            0.813,
            4.1,
            3.1,
            &[
                (ConsumerDiscretionary, 0.893),
                (CommunicationServices, 0.888),
                (ConsumerStaples, 0.874),
                (Energy, 0.667),
            ],
        ),
        LegalCompliance => (
            0.732,
            4.1,
            3.3,
            &[
                (CommunicationServices, 0.827),
                (Financials, 0.783),
                (ConsumerDiscretionary, 0.780),
                (Energy, 0.475),
            ],
        ),
        Security => (
            0.725,
            4.1,
            3.3,
            &[
                (CommunicationServices, 0.857),
                (ConsumerStaples, 0.796),
                (ConsumerDiscretionary, 0.790),
                (Energy, 0.535),
            ],
        ),
        AdvertisingSales => (
            0.780,
            3.0,
            2.3,
            &[
                (ConsumerDiscretionary, 0.911),
                (ConsumerStaples, 0.854),
                (InformationTechnology, 0.848),
                (Energy, 0.515),
            ],
        ),
        DataSharing => (
            0.261,
            2.1,
            2.3,
            &[
                (CommunicationServices, 0.367),
                (RealEstate, 0.355),
                (HealthCare, 0.303),
                (Financials, 0.182),
            ],
        ),
    };
    Calibration {
        coverage,
        mean,
        sd,
        anchors,
    }
}

/// Table 3 calibration for retention labels (coverage only; a retention
/// mention is one label, so mean=1).
pub fn retention_calibration(label: RetentionLabel) -> Calibration {
    let (coverage, anchors): (f64, &'static [(Sector, f64)]) = match label {
        RetentionLabel::Limited => (
            0.609,
            &[
                (CommunicationServices, 0.816),
                (InformationTechnology, 0.814),
                (Utilities, 0.259),
            ],
        ),
        RetentionLabel::Stated => (
            0.099,
            &[
                (InformationTechnology, 0.164),
                (CommunicationServices, 0.153),
                (Utilities, 0.056),
            ],
        ),
        RetentionLabel::Indefinitely => (
            0.055,
            &[
                (HealthCare, 0.065),
                (CommunicationServices, 0.061),
                (ConsumerDiscretionary, 0.045),
            ],
        ),
    };
    Calibration {
        coverage,
        mean: 1.0,
        sd: 0.0,
        anchors,
    }
}

/// Table 3 calibration for protection labels.
pub fn protection_calibration(label: ProtectionLabel) -> Calibration {
    let (coverage, anchors): (f64, &'static [(Sector, f64)]) = match label {
        ProtectionLabel::Generic => (
            0.731,
            &[
                (RealEstate, 0.782),
                (InformationTechnology, 0.765),
                (Energy, 0.636),
            ],
        ),
        ProtectionLabel::AccessLimit => (
            0.191,
            &[
                (Financials, 0.294),
                (InformationTechnology, 0.220),
                (Materials, 0.114),
            ],
        ),
        ProtectionLabel::SecureTransfer => (
            0.140,
            &[
                (Utilities, 0.185),
                (CommunicationServices, 0.184),
                (Energy, 0.071),
            ],
        ),
        ProtectionLabel::SecureStorage => (
            0.161,
            &[
                (Financials, 0.316),
                (InformationTechnology, 0.214),
                (ConsumerStaples, 0.049),
            ],
        ),
        ProtectionLabel::PrivacyProgram => (
            0.099,
            &[
                (InformationTechnology, 0.164),
                (Financials, 0.143),
                (RealEstate, 0.032),
            ],
        ),
        ProtectionLabel::PrivacyReview => (
            0.068,
            &[
                (InformationTechnology, 0.130),
                (Utilities, 0.111),
                (ConsumerStaples, 0.029),
            ],
        ),
        ProtectionLabel::SecureAuthentication => (
            0.042,
            &[
                (Financials, 0.072),
                (InformationTechnology, 0.053),
                (Materials, 0.018),
            ],
        ),
    };
    Calibration {
        coverage,
        mean: 1.0,
        sd: 0.0,
        anchors,
    }
}

/// Table 3 calibration for user-choice labels.
pub fn choice_calibration(label: ChoiceLabel) -> Calibration {
    let (coverage, anchors): (f64, &'static [(Sector, f64)]) = match label {
        ChoiceLabel::OptOutViaContact => (
            0.652,
            &[
                (CommunicationServices, 0.724),
                (InformationTechnology, 0.718),
                (Energy, 0.434),
            ],
        ),
        ChoiceLabel::OptOutViaLink => (
            0.361,
            &[
                (CommunicationServices, 0.612),
                (ConsumerStaples, 0.602),
                (Energy, 0.172),
            ],
        ),
        ChoiceLabel::PrivacySettings => (
            0.177,
            &[
                (CommunicationServices, 0.296),
                (InformationTechnology, 0.245),
                (Energy, 0.081),
            ],
        ),
        ChoiceLabel::OptIn => (
            0.177,
            &[
                (ConsumerStaples, 0.223),
                (Utilities, 0.222),
                (CommunicationServices, 0.122),
            ],
        ),
        ChoiceLabel::DoNotUse => (
            0.050,
            &[
                (Utilities, 0.071),
                (ConsumerStaples, 0.065),
                (RealEstate, 0.038),
            ],
        ),
    };
    Calibration {
        coverage,
        mean: 1.0,
        sd: 0.0,
        anchors,
    }
}

/// Table 3 calibration for user-access labels.
pub fn access_calibration(label: AccessLabel) -> Calibration {
    let (coverage, anchors): (f64, &'static [(Sector, f64)]) = match label {
        AccessLabel::Edit => (
            0.716,
            &[
                (InformationTechnology, 0.854),
                (CommunicationServices, 0.806),
                (Energy, 0.434),
            ],
        ),
        AccessLabel::FullDelete => (
            0.535,
            &[
                (ConsumerDiscretionary, 0.639),
                (CommunicationServices, 0.622),
                (Utilities, 0.278),
            ],
        ),
        AccessLabel::View => (
            0.456,
            &[
                (InformationTechnology, 0.573),
                (CommunicationServices, 0.520),
                (Utilities, 0.278),
            ],
        ),
        AccessLabel::Export => (
            0.429,
            &[
                (InformationTechnology, 0.610),
                (ConsumerStaples, 0.495),
                (Utilities, 0.185),
            ],
        ),
        AccessLabel::PartialDelete => (
            0.112,
            &[
                (CommunicationServices, 0.224),
                (InformationTechnology, 0.146),
                (Utilities, 0.019),
            ],
        ),
        AccessLabel::Deactivate => (
            0.025,
            &[
                (CommunicationServices, 0.082),
                (Utilities, 0.056),
                (Industrials, 0.008),
            ],
        ),
    };
    Calibration {
        coverage,
        mean: 1.0,
        sd: 0.0,
        anchors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_used_verbatim() {
        let c = datatype_calibration(DataTypeCategory::ContactInfo);
        assert!((c.sector_coverage(HealthCare) - 0.910).abs() < 1e-9);
        assert!((c.sector_coverage(Financials) - 0.774).abs() < 1e-9);
    }

    #[test]
    fn residual_preserves_overall_coverage() {
        for cat in DataTypeCategory::ALL {
            let c = datatype_calibration(cat);
            let weighted: f64 = Sector::ALL
                .iter()
                .map(|s| s.universe_share() * c.sector_coverage(*s))
                .sum();
            assert!(
                (weighted - c.coverage).abs() < 0.03,
                "{cat:?}: weighted {weighted} vs target {}",
                c.coverage
            );
        }
    }

    #[test]
    fn residual_in_bounds() {
        for cat in DataTypeCategory::ALL {
            let c = datatype_calibration(cat);
            for s in Sector::ALL {
                let cov = c.sector_coverage(s);
                assert!((0.0..=1.0).contains(&cov), "{cat:?}/{s}: {cov}");
            }
        }
    }

    #[test]
    fn all_label_calibrations_defined() {
        for cat in PurposeCategory::ALL {
            assert!(purpose_calibration(cat).coverage > 0.0);
        }
        for l in RetentionLabel::ALL {
            assert!(retention_calibration(l).coverage > 0.0);
        }
        for l in ProtectionLabel::ALL {
            assert!(protection_calibration(l).coverage > 0.0);
        }
        for l in ChoiceLabel::ALL {
            assert!(choice_calibration(l).coverage > 0.0);
        }
        for l in AccessLabel::ALL {
            assert!(access_calibration(l).coverage > 0.0);
        }
    }

    #[test]
    fn sector_mean_scales_with_coverage() {
        let c = datatype_calibration(DataTypeCategory::DeviceInfo);
        // TC coverage 0.888 > FS 0.583 → TC mean >= FS mean.
        assert!(c.sector_mean(CommunicationServices) >= c.sector_mean(Financials));
        assert!(c.sector_mean(CommunicationServices) >= 1.0);
    }

    #[test]
    fn highest_sector_in_paper_is_highest_here() {
        // Table 5 row spot-checks: the paper's top sector must beat the
        // paper's lowest sector after residual solving.
        let c = datatype_calibration(DataTypeCategory::MedicalInfo);
        assert!(c.sector_coverage(HealthCare) > c.sector_coverage(Energy));
        let p = purpose_calibration(PurposeCategory::DataSharing);
        assert!(p.sector_coverage(CommunicationServices) > p.sector_coverage(Financials));
    }
}
