//! Sampling the planted ground truth for each company's policy.
//!
//! A [`GroundTruth`] is the exact annotation set a policy is authored from.
//! Sampling is driven by the calibration targets of [`crate::calibration`]
//! (per-category coverage and unique-descriptor counts, sector-adjusted) and
//! is fully deterministic per `(seed, domain)`.

use crate::calibration;
use crate::rng;
use aipan_taxonomy::datatypes::descriptors_for;
use aipan_taxonomy::purposes::purposes_for;
use aipan_taxonomy::zeroshot::{ZERO_SHOT_DATA_TYPES, ZERO_SHOT_PURPOSES};
use aipan_taxonomy::{
    AccessLabel, ChoiceLabel, DataTypeCategory, ProtectionLabel, PurposeCategory, RetentionLabel,
    Sector,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A planted data-type mention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedMention {
    /// Canonical descriptor (or the zero-shot term itself).
    pub descriptor: String,
    /// Category.
    pub category: DataTypeCategory,
    /// The surface form the policy text uses.
    pub surface: String,
    /// Whether the term is outside the built-in glossary.
    pub zero_shot: bool,
}

/// A planted purpose mention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedPurpose {
    /// Canonical descriptor (or the zero-shot term itself).
    pub descriptor: String,
    /// Category.
    pub category: PurposeCategory,
    /// The surface form the policy text uses.
    pub surface: String,
    /// Whether the term is outside the built-in glossary.
    pub zero_shot: bool,
}

/// A planted retention mention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedRetention {
    /// Retention label.
    pub label: RetentionLabel,
    /// Stated period in days (only for [`RetentionLabel::Stated`]).
    pub period_days: Option<u32>,
}

/// The full planted annotation set for one company's policy.
///
/// ```
/// use aipan_taxonomy::Sector;
/// use aipan_webgen::GroundTruth;
///
/// let truth = GroundTruth::sample(42, "example.com", Sector::HealthCare);
/// assert!(!truth.types.is_empty());
/// // Sampling is deterministic per (seed, domain, sector).
/// assert_eq!(truth, GroundTruth::sample(42, "example.com", Sector::HealthCare));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The company's domain.
    pub domain: String,
    /// The company's sector.
    pub sector: Sector,
    /// Collected data types the policy asserts.
    pub types: Vec<PlantedMention>,
    /// Data types mentioned only in *negated* contexts ("we do not collect
    /// ..."); correct pipelines must not annotate these.
    pub negated_types: Vec<PlantedMention>,
    /// Data-collection purposes.
    pub purposes: Vec<PlantedPurpose>,
    /// Retention practices.
    pub retention: Vec<PlantedRetention>,
    /// Protection practices.
    pub protection: Vec<ProtectionLabel>,
    /// User choices.
    pub choices: Vec<ChoiceLabel>,
    /// User access rights.
    pub access: Vec<AccessLabel>,
}

/// Gaussian-copula correlation of data-type category coverage with the
/// per-company appetite factor: drives the §5 heavy tail (companies
/// collecting from >22 or >25 categories) while preserving exact marginal
/// coverage.
const RHO_TYPES: f64 = 0.72;
/// Copula correlation for purpose categories.
const RHO_PURPOSES: f64 = 0.68;
/// Copula correlation for retention/protection labels (drives the paper's
/// 39.9% specific-protection overlap and the missing-handling rate).
const RHO_HANDLING: f64 = 0.54;
/// Copula correlation for choice labels (drives the paper's two-thirds
/// any-opt-out rate through opt-out co-occurrence).
const RHO_CHOICES: f64 = 0.72;
/// Copula correlation for access labels: high, because real policies that
/// grant any access right tend to grant several (paper: only 0.5% read-only,
/// 22% with no access mention at all).
const RHO_ACCESS: f64 = 0.88;
/// Probability a company's policy plants zero-shot data-type terms.
const ZERO_SHOT_TYPE_RATE: f64 = 0.10;
/// Probability a company's policy plants a zero-shot purpose term.
const ZERO_SHOT_PURPOSE_RATE: f64 = 0.05;
/// Probability a company's policy contains negated data-type mentions.
const NEGATION_RATE: f64 = 0.30;
/// Multiplier applied to sampled unique-descriptor counts before clamping,
/// compensating for the truncation at the per-category vocabulary size
/// (keeps the measured Table 5 means on target).
const COUNT_INFLATION: f64 = 1.15;
/// Subtracted from planted coverage to leave head-room for the chatbot's
/// category-confusion noise inflow (keeps measured coverage on target).
const COVERAGE_HEADROOM: f64 = 0.015;

impl GroundTruth {
    /// Whether this ground truth has any mention at all for `kind`-like
    /// aspects (used by missing-aspect accounting).
    pub fn has_types(&self) -> bool {
        !self.types.is_empty()
    }

    /// Whether the policy discusses purposes.
    pub fn has_purposes(&self) -> bool {
        !self.purposes.is_empty()
    }

    /// Whether the policy discusses handling (retention or protection).
    pub fn has_handling(&self) -> bool {
        !self.retention.is_empty() || !self.protection.is_empty()
    }

    /// Whether the policy discusses rights (choices or access).
    pub fn has_rights(&self) -> bool {
        !self.choices.is_empty() || !self.access.is_empty()
    }

    /// Sample the ground truth for `(domain, sector)` under `seed`.
    ///
    /// Coverage decisions use a one-factor Gaussian copula: a per-company
    /// *appetite* factor `z` shifts every category's latent variable, so
    /// data-hungry companies collect broadly (the §5 heavy tail) while each
    /// category's marginal coverage stays exactly on its calibration target.
    pub fn sample(seed: u64, domain: &str, sector: Sector) -> GroundTruth {
        let mut r = rng::stream(seed, "groundtruth", domain);
        // Appetite factor: negative z → broader collection. Choices use an
        // independent factor so opt-out practices and access rights are not
        // artificially co-absent (the paper's 22% no-access companies still
        // mostly offer opt-outs).
        let z = box_muller(&mut r);
        let z_choices = box_muller(&mut r);
        let covered_with = |r: &mut rand_chacha::ChaCha8Rng, factor: f64, rho: f64, p: f64| {
            let p = p.clamp(0.002, 0.995);
            let u = box_muller(r);
            rho * factor + (1.0 - rho * rho).sqrt() * u < inv_norm_cdf(p)
        };
        let covered =
            |r: &mut rand_chacha::ChaCha8Rng, rho: f64, p: f64| covered_with(r, z, rho, p);

        // --- Data types ---
        let mut types = Vec::new();
        for category in DataTypeCategory::ALL {
            let cal = calibration::datatype_calibration(category);
            let p = (cal.sector_coverage(sector) - COVERAGE_HEADROOM).max(0.005);
            if !covered(&mut r, RHO_TYPES, p) {
                continue;
            }
            let specs: Vec<_> = descriptors_for(category).collect();
            let count = sample_count(&mut r, cal.sector_mean(sector), cal.sd, specs.len());
            for spec in weighted_sample(&mut r, &specs, count, |s| s.weight) {
                let surface = pick_surface(&mut r, spec.name, spec.surfaces);
                types.push(PlantedMention {
                    descriptor: spec.name.to_string(),
                    category,
                    surface,
                    zero_shot: false,
                });
            }
        }
        // Zero-shot plants.
        if r.gen::<f64>() < ZERO_SHOT_TYPE_RATE && !ZERO_SHOT_DATA_TYPES.is_empty() {
            let n = r.gen_range(1..=2usize);
            for _ in 0..n {
                let z = ZERO_SHOT_DATA_TYPES[r.gen_range(0..ZERO_SHOT_DATA_TYPES.len())];
                if types.iter().any(|t| t.descriptor == z.term) {
                    continue;
                }
                types.push(PlantedMention {
                    descriptor: z.term.to_string(),
                    category: z.category,
                    surface: z.term.to_string(),
                    zero_shot: true,
                });
            }
        }
        // Negated mentions: descriptors *not* positively collected.
        let mut negated_types = Vec::new();
        if r.gen::<f64>() < NEGATION_RATE {
            let n = r.gen_range(1..=2usize);
            let mut attempts = 0;
            while negated_types.len() < n && attempts < 20 {
                attempts += 1;
                let cat = DataTypeCategory::ALL[r.gen_range(0..DataTypeCategory::ALL.len())];
                let specs: Vec<_> = descriptors_for(cat).collect();
                let spec = specs[r.gen_range(0..specs.len())];
                if types.iter().any(|t| t.descriptor == spec.name)
                    || negated_types
                        .iter()
                        .any(|t: &PlantedMention| t.descriptor == spec.name)
                {
                    continue;
                }
                let surface = pick_surface(&mut r, spec.name, spec.surfaces);
                negated_types.push(PlantedMention {
                    descriptor: spec.name.to_string(),
                    category: cat,
                    surface,
                    zero_shot: false,
                });
            }
        }

        // --- Purposes ---
        let mut purposes = Vec::new();
        for category in PurposeCategory::ALL {
            let cal = calibration::purpose_calibration(category);
            if !covered(&mut r, RHO_PURPOSES, cal.sector_coverage(sector)) {
                continue;
            }
            // "Data for sale" is rare and deliberate (the paper found just
            // 26 companies); only explicit sellers plant it.
            let seller = rng::unit(seed, "data-seller", domain) < 0.085;
            let specs: Vec<_> = purposes_for(category)
                .filter(|p| p.name != "data for sale" || seller)
                .collect();
            let count = sample_count(&mut r, cal.sector_mean(sector), cal.sd, specs.len());
            for spec in weighted_sample(&mut r, &specs, count, |s| s.weight) {
                let surface = pick_surface(&mut r, spec.name, spec.surfaces);
                purposes.push(PlantedPurpose {
                    descriptor: spec.name.to_string(),
                    category,
                    surface,
                    zero_shot: false,
                });
            }
        }
        if r.gen::<f64>() < ZERO_SHOT_PURPOSE_RATE && !ZERO_SHOT_PURPOSES.is_empty() {
            let z = ZERO_SHOT_PURPOSES[r.gen_range(0..ZERO_SHOT_PURPOSES.len())];
            purposes.push(PlantedPurpose {
                descriptor: z.term.to_string(),
                category: z.category,
                surface: z.term.to_string(),
                zero_shot: true,
            });
        }

        // --- Retention ---
        let mut retention = Vec::new();
        for label in RetentionLabel::ALL {
            let cal = calibration::retention_calibration(label);
            if covered(&mut r, RHO_HANDLING, cal.sector_coverage(sector)) {
                let period = if label == RetentionLabel::Stated {
                    Some(sample_period_days(&mut r))
                } else {
                    None
                };
                retention.push(PlantedRetention {
                    label,
                    period_days: period,
                });
            }
        }
        // Planted retention extremes (§5: arescre.com & pg.com at 1 day,
        // bms.com at 50 years).
        match domain {
            "arescre.com" | "pg.com" => {
                retention.retain(|p| p.label != RetentionLabel::Stated);
                retention.push(PlantedRetention {
                    label: RetentionLabel::Stated,
                    period_days: Some(1),
                });
            }
            "bms.com" => {
                retention.retain(|p| p.label != RetentionLabel::Stated);
                retention.push(PlantedRetention {
                    label: RetentionLabel::Stated,
                    period_days: Some(50 * 365),
                });
            }
            _ => {}
        }

        // --- Protection / choices / access ---
        let mut protection = Vec::new();
        for label in ProtectionLabel::ALL {
            let cal = calibration::protection_calibration(label);
            if covered(&mut r, RHO_HANDLING, cal.sector_coverage(sector)) {
                protection.push(label);
            }
        }
        let mut choices = Vec::new();
        for label in ChoiceLabel::ALL {
            let cal = calibration::choice_calibration(label);
            if covered_with(&mut r, z_choices, RHO_CHOICES, cal.sector_coverage(sector)) {
                choices.push(label);
            }
        }
        let mut access = Vec::new();
        for label in AccessLabel::ALL {
            let cal = calibration::access_calibration(label);
            if covered(&mut r, RHO_ACCESS, cal.sector_coverage(sector)) {
                access.push(label);
            }
        }

        GroundTruth {
            domain: domain.to_string(),
            sector,
            types,
            negated_types,
            purposes,
            retention,
            protection,
            choices,
            access,
        }
    }
}

impl GroundTruth {
    /// Produce revision `rev` of this ground truth — the policy as it might
    /// read after an update cycle (longitudinal snapshots for trend
    /// analysis). Each revision independently: sometimes starts collecting
    /// a new category, drops one, grants or withdraws a right, adds a
    /// protection, or changes the stated retention period.
    pub fn revise(&self, seed: u64, rev: u32) -> GroundTruth {
        if rev == 0 {
            return self.clone();
        }
        let mut truth = self.revise(seed, rev - 1);
        let key = format!("{}:{rev}", self.domain);
        let mut r = rng::stream(seed, "revision", &key);

        // Start collecting a new category.
        if r.gen::<f64>() < 0.10 {
            let covered: std::collections::HashSet<DataTypeCategory> =
                truth.types.iter().map(|m| m.category).collect();
            let uncovered: Vec<DataTypeCategory> = DataTypeCategory::ALL
                .iter()
                .copied()
                .filter(|c| !covered.contains(c))
                .collect();
            if !uncovered.is_empty() {
                let category = uncovered[r.gen_range(0..uncovered.len())];
                // Never contradict a planted negated mention.
                let specs: Vec<_> = descriptors_for(category)
                    .filter(|spec| {
                        truth
                            .negated_types
                            .iter()
                            .all(|n| n.descriptor != spec.name)
                    })
                    .collect();
                let count = (1 + r.gen_range(0..2usize)).min(specs.len());
                for spec in weighted_sample(&mut r, &specs, count, |s| s.weight) {
                    let surface = pick_surface(&mut r, spec.name, spec.surfaces);
                    truth.types.push(PlantedMention {
                        descriptor: spec.name.to_string(),
                        category,
                        surface,
                        zero_shot: false,
                    });
                }
            }
        }
        // Stop collecting one category.
        if r.gen::<f64>() < 0.06 && !truth.types.is_empty() {
            let victim = truth.types[r.gen_range(0..truth.types.len())].category;
            truth.types.retain(|m| m.category != victim);
        }
        // Grant a new access right.
        if r.gen::<f64>() < 0.08 {
            let missing: Vec<AccessLabel> = AccessLabel::ALL
                .iter()
                .copied()
                .filter(|l| !truth.access.contains(l))
                .collect();
            if !missing.is_empty() {
                truth.access.push(missing[r.gen_range(0..missing.len())]);
            }
        }
        // Withdraw a choice.
        if r.gen::<f64>() < 0.04 && !truth.choices.is_empty() {
            let idx = r.gen_range(0..truth.choices.len());
            truth.choices.remove(idx);
        }
        // Add a protection practice.
        if r.gen::<f64>() < 0.07 {
            let missing: Vec<ProtectionLabel> = ProtectionLabel::ALL
                .iter()
                .copied()
                .filter(|l| !truth.protection.contains(l))
                .collect();
            if !missing.is_empty() {
                truth
                    .protection
                    .push(missing[r.gen_range(0..missing.len())]);
            }
        }
        // Change the stated retention period.
        if r.gen::<f64>() < 0.05 {
            for ret in &mut truth.retention {
                if ret.label == RetentionLabel::Stated {
                    ret.period_days = Some(sample_period_days(&mut r));
                }
            }
        }
        truth
    }
}

/// Sample a unique-descriptor count: rounded Gaussian, clamped to
/// `[1, available]`.
fn sample_count(r: &mut impl Rng, mean: f64, sd: f64, available: usize) -> usize {
    let z = box_muller(r);
    let v = (COUNT_INFLATION * mean + sd * z).round();
    (v.max(1.0) as usize).min(available.max(1))
}

/// Inverse standard-normal CDF (Acklam's rational approximation, |err| <
/// 1.15e-9) — used by the coverage copula.
pub fn inv_norm_cdf(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// One standard-normal draw (Box–Muller).
fn box_muller(r: &mut impl Rng) -> f64 {
    let u1: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = r.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Weighted sampling without replacement of `count` items.
fn weighted_sample<'a, T>(
    r: &mut impl Rng,
    items: &[&'a T],
    count: usize,
    weight: impl Fn(&T) -> f32,
) -> Vec<&'a T> {
    let mut pool: Vec<(&'a T, f64)> = items.iter().map(|&t| (t, weight(t) as f64)).collect();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count.min(items.len()) {
        let total: f64 = pool.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            break;
        }
        let mut pick = r.gen::<f64>() * total;
        let mut idx = pool.len() - 1;
        for (i, (_, w)) in pool.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
        }
        out.push(pool.swap_remove(idx).0);
    }
    out
}

/// Choose the surface form: the canonical name half the time, otherwise a
/// uniform synonym.
fn pick_surface(r: &mut impl Rng, name: &str, surfaces: &[&str]) -> String {
    if surfaces.is_empty() || r.gen::<f64>() < 0.5 {
        name.to_string()
    } else {
        surfaces[r.gen_range(0..surfaces.len())].to_string()
    }
}

/// Sample a stated retention period in days: log-normal with median ~2
/// years, clamped to [1 day, 50 years] (the §5 analysis reports exactly
/// this median and range).
fn sample_period_days(r: &mut impl Rng) -> u32 {
    const MENU: [u32; 16] = [
        30, 60, 90, 180, 365, 548, 730, 1095, 1460, 1825, 2190, 2555, 3650, 4380, 5475, 7300,
    ];
    let z = box_muller(r);
    let days = (730.0_f64 * (0.9 * z).exp()).clamp(7.0, 18_250.0);
    // Real policies state round periods: snap to the nearest common unit.
    MENU.iter()
        .copied()
        .min_by_key(|&m| (m as f64 - days).abs() as u64)
        .unwrap_or(730)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(seed: u64, domain: &str, sector: Sector) -> GroundTruth {
        GroundTruth::sample(seed, domain, sector)
    }

    #[test]
    fn deterministic() {
        let a = truth(1, "acme.com", Sector::InformationTechnology);
        let b = truth(1, "acme.com", Sector::InformationTechnology);
        assert_eq!(a, b);
    }

    #[test]
    fn negated_disjoint_from_positive() {
        for i in 0..50 {
            let t = truth(2, &format!("d{i}.com"), Sector::ConsumerDiscretionary);
            for neg in &t.negated_types {
                assert!(
                    t.types.iter().all(|p| p.descriptor != neg.descriptor),
                    "negated {} also positive",
                    neg.descriptor
                );
            }
        }
    }

    #[test]
    fn coverage_rates_close_to_calibration() {
        let n = 1500;
        let sector = Sector::InformationTechnology;
        let mut contact = 0usize;
        let mut medical = 0usize;
        for i in 0..n {
            let t = truth(3, &format!("c{i}.com"), sector);
            if t.types
                .iter()
                .any(|m| m.category == DataTypeCategory::ContactInfo && !m.zero_shot)
            {
                contact += 1;
            }
            if t.types
                .iter()
                .any(|m| m.category == DataTypeCategory::MedicalInfo && !m.zero_shot)
            {
                medical += 1;
            }
        }
        let contact_rate = contact as f64 / n as f64;
        let medical_rate = medical as f64 / n as f64;
        let contact_target = calibration::datatype_calibration(DataTypeCategory::ContactInfo)
            .sector_coverage(sector);
        let medical_target = calibration::datatype_calibration(DataTypeCategory::MedicalInfo)
            .sector_coverage(sector);
        assert!(
            (contact_rate - contact_target).abs() < 0.04,
            "{contact_rate} vs {contact_target}"
        );
        assert!(
            (medical_rate - medical_target).abs() < 0.04,
            "{medical_rate} vs {medical_target}"
        );
    }

    #[test]
    fn unique_descriptors_within_company() {
        for i in 0..30 {
            let t = truth(4, &format!("u{i}.com"), Sector::Financials);
            let mut seen = std::collections::HashSet::new();
            for m in &t.types {
                assert!(seen.insert(m.descriptor.clone()), "dup {}", m.descriptor);
            }
        }
    }

    #[test]
    fn planted_retention_extremes() {
        let ares = truth(5, "arescre.com", Sector::RealEstate);
        let stated: Vec<_> = ares
            .retention
            .iter()
            .filter(|p| p.label == RetentionLabel::Stated)
            .collect();
        assert_eq!(stated.len(), 1);
        assert_eq!(stated[0].period_days, Some(1));
        let bms = truth(5, "bms.com", Sector::HealthCare);
        assert!(bms
            .retention
            .iter()
            .any(|p| p.period_days == Some(50 * 365)));
    }

    #[test]
    fn stated_periods_in_bounds_with_sane_median() {
        let mut periods: Vec<u32> = Vec::new();
        for i in 0..3000 {
            let t = truth(6, &format!("p{i}.com"), Sector::InformationTechnology);
            for p in &t.retention {
                if let Some(d) = p.period_days {
                    periods.push(d);
                }
            }
        }
        assert!(periods.len() > 100, "got {}", periods.len());
        periods.sort_unstable();
        let median = periods[periods.len() / 2];
        assert!((300..1500).contains(&median), "median {median}");
        assert!(*periods.first().unwrap() >= 1);
        assert!(*periods.last().unwrap() <= 18_250);
    }

    #[test]
    fn zero_shot_rate_near_target() {
        let n = 2000;
        let with_zs = (0..n)
            .filter(|i| {
                truth(7, &format!("z{i}.com"), Sector::ConsumerStaples)
                    .types
                    .iter()
                    .any(|m| m.zero_shot)
            })
            .count();
        let rate = with_zs as f64 / n as f64;
        assert!((rate - ZERO_SHOT_TYPE_RATE).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn revision_zero_is_identity() {
        let t = truth(21, "rev.com", Sector::InformationTechnology);
        assert_eq!(t.revise(21, 0), t);
    }

    #[test]
    fn revisions_are_deterministic_and_cumulative() {
        let t = truth(21, "rev.com", Sector::InformationTechnology);
        assert_eq!(t.revise(21, 3), t.revise(21, 3));
        // Revision 3 builds on revision 2.
        let via_two = t.revise(21, 2).retention.len();
        let _ = via_two;
        // Across many companies, some revision must change something.
        let changed = (0..60)
            .filter(|i| {
                let t = truth(21, &format!("rv{i}.com"), Sector::Financials);
                t.revise(21, 2) != t
            })
            .count();
        assert!(changed > 10, "revisions too inert: {changed}/60");
    }

    #[test]
    fn revisions_never_contradict_negations() {
        for i in 0..80 {
            let t = truth(22, &format!("neg{i}.com"), Sector::ConsumerDiscretionary);
            let revised = t.revise(22, 3);
            for neg in &revised.negated_types {
                assert!(
                    revised.types.iter().all(|p| p.descriptor != neg.descriptor),
                    "revision contradicted negation of {}",
                    neg.descriptor
                );
            }
        }
    }

    #[test]
    fn revised_labels_stay_unique() {
        for i in 0..40 {
            let t = truth(23, &format!("uq{i}.com"), Sector::HealthCare).revise(23, 4);
            let mut seen = std::collections::HashSet::new();
            for m in &t.types {
                assert!(
                    seen.insert(m.descriptor.clone()),
                    "dup descriptor {}",
                    m.descriptor
                );
            }
            let mut labels = std::collections::HashSet::new();
            for l in &t.access {
                assert!(labels.insert(*l), "dup access label {l:?}");
            }
        }
    }

    #[test]
    fn missing_aspect_rate_plausible() {
        // §4: 375/2545 (≈15%) of successfully extracted policies lack at
        // least one of the four aspects; our planted truth should produce a
        // broadly similar rate (most of it from handling/rights).
        let n = 2000;
        let missing = (0..n)
            .filter(|i| {
                let t = truth(8, &format!("m{i}.com"), Sector::Industrials);
                !(t.has_types() && t.has_purposes() && t.has_handling() && t.has_rights())
            })
            .count();
        let rate = missing as f64 / n as f64;
        assert!((0.02..0.30).contains(&rate), "missing-aspect rate {rate}");
    }
}
