//! # aipan-webgen
//!
//! The synthetic web: a deterministic Russell-3000-like company universe,
//! a simulated search index, and a privacy-policy website generator that
//! **plants ground truth**.
//!
//! Every company's policy is authored from a sampled
//! [`groundtruth::GroundTruth`]: the exact set of data types, purposes,
//! retention/protection practices, and user rights the policy discusses,
//! drawn from sector-calibrated distributions fit to Tables 2, 3, and 5 of
//! the paper. Because the truth is known, the pipeline's precision and
//! recall can be measured exactly — something the paper could only estimate
//! by manual inspection.
//!
//! Failure modes observed in the paper's §4 audit (sites without policies,
//! PDF policies, JavaScript-loaded content, image-based policies, policies
//! behind consent boxes or non-"privacy" link text, non-English and
//! mixed-language pages) are injected at the audited rates via
//! deterministic per-company fates.
//!
//! Modules:
//!
//! * [`universe`] — companies, tickers, sectors, domains (with duplicate
//!   tickers sharing one domain, like GOOG/GOOGL).
//! * [`search`] — the simulated "first Google result" domain lookup.
//! * [`calibration`] — coverage / mean±SD targets per category and sector.
//! * [`groundtruth`] — sampling a company's planted annotation set.
//! * [`policy`] — rendering a ground truth into realistic legalese HTML.
//! * [`site`] — assembling full sites (homepage, privacy center, fates) and
//!   registering them on an [`aipan_net::Internet`].

#![warn(missing_docs)]

pub mod calibration;
pub mod groundtruth;
pub mod policy;
pub mod rng;
pub mod search;
pub mod site;
pub mod universe;

pub use groundtruth::{GroundTruth, PlantedMention};
pub use search::SearchIndex;
pub use site::{
    build_world, build_world_lazy, CompanyFate, LazySite, MemoryGauge, World, WorldConfig,
};
pub use universe::{Company, Universe};
