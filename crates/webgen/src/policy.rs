//! Rendering a [`GroundTruth`] into realistic privacy-policy HTML.
//!
//! The renderer guarantees that **every planted surface form appears
//! verbatim, exactly where the ground truth says** (in its aspect's
//! section), and that the surrounding boilerplate is free of taxonomy
//! surface forms — so a perfect extractor recovers exactly the planted
//! truth. This invariant is enforced corpus-wide by integration tests.
//!
//! Styles vary per company: `<h2>` headings, bold-line headings (the
//! Appendix-B bold-heading case), or no headings at all (short policies
//! that force the paper's segmentation-via-text-analysis path); prose
//! sentences vs bullet lists; and "inline" aspects folded into a generic
//! section (which triggers the §3.2.2 full-text fallback).

use crate::groundtruth::{GroundTruth, PlantedMention, PlantedPurpose};
use crate::rng;
use aipan_taxonomy::records::AspectKind;
use aipan_taxonomy::{AccessLabel, ChoiceLabel, ProtectionLabel, RetentionLabel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How section headings are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeadingStyle {
    /// `<h2>` headings (detected via heading tags).
    H2,
    /// `<p><strong>…</strong></p>` headings (detected via bold-line rule).
    BoldLines,
    /// No headings at all (short policies; text-analysis segmentation).
    None,
}

/// Per-company rendering style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyStyle {
    /// Heading rendering.
    pub heading: HeadingStyle,
    /// Aspects folded into a generic "Additional Information" section
    /// instead of a dedicated one (triggers the full-text fallback).
    pub inline_aspects: Vec<AspectKind>,
    /// Render mention lists as bullets (vs prose sentences).
    pub bullets: bool,
    /// Filler verbosity 0–2 (scales policy word count).
    pub filler_level: u8,
}

impl PolicyStyle {
    /// Sample the style for `(seed, domain)`.
    pub fn sample(seed: u64, domain: &str) -> PolicyStyle {
        let mut r = rng::stream(seed, "policy-style", domain);
        let heading = match r.gen::<f64>() {
            x if x < 0.62 => HeadingStyle::H2,
            x if x < 0.93 => HeadingStyle::BoldLines,
            _ => HeadingStyle::None,
        };
        let mut inline_aspects = Vec::new();
        if heading != HeadingStyle::None && r.gen::<f64>() < 0.30 {
            // Fold one aspect inline; handling and rights are the usual
            // victims in real policies.
            let pick = match r.gen_range(0..10) {
                0..=4 => AspectKind::Handling,
                5..=7 => AspectKind::Rights,
                8 => AspectKind::Purposes,
                _ => AspectKind::Types,
            };
            inline_aspects.push(pick);
        }
        PolicyStyle {
            heading,
            inline_aspects,
            bullets: r.gen::<f64>() < 0.5,
            filler_level: if heading == HeadingStyle::None {
                0
            } else {
                1 + u8::from(r.gen::<f64>() < 0.5)
            },
        }
    }
}

/// Filler paragraphs (taxonomy-surface-free legalese) used to give policies
/// realistic length; the §3.2.1 median core length of 2671 words is mostly
/// boilerplate in real policies too. Each entry is safe to place in any
/// core section.
const FILLER: &[&str] = &[
    "This document is intended to be read together with any supplemental notices we \
     provide for particular offerings. Where a supplemental notice conflicts with this \
     document, the supplemental notice governs for the offering it describes. Nothing in \
     this document limits any protection afforded to you by applicable law, and nothing \
     here creates contractual duties beyond those required by applicable law.",
    "Our practices are designed to be proportionate to the nature of our relationship \
     with you. A casual visitor interacts with us differently than a long-standing \
     customer, and the handling described in this document reflects those differences. \
     We periodically evaluate whether what we maintain remains necessary for the \
     operation of our business and the delivery of our offerings.",
    "We work with carefully selected vendors that support the operation of our \
     business. These vendors are evaluated before engagement and periodically \
     thereafter, and they are held to contractual commitments appropriate to the \
     sensitivity of what they handle on our behalf. Our vendor management procedures \
     are part of our broader governance framework.",
    "Where our offerings are provided through intermediaries, distributors, or \
     franchisees, those parties maintain their own notices and their own obligations \
     under applicable law. We encourage you to review the notices of any party you \
     deal with directly, because this document describes only our own practices and \
     not the practices of independent businesses.",
    "If any portion of this document is found to be unenforceable, the remaining \
     portions continue in full force. Headings are provided for convenience only and \
     do not affect interpretation. References to applicable law include statutes, \
     regulations, and binding guidance issued by competent authorities in the \
     jurisdictions where we operate.",
    "We recognize that expectations differ across jurisdictions, and we aim to apply a \
     consistent baseline worldwide while honoring stricter local requirements where \
     they apply. Our legal and compliance teams monitor regulatory developments and \
     update our internal procedures when obligations change.",
    "Questions about the scope of this document arise from time to time, and we \
     maintain internal escalation procedures so that novel questions receive \
     appropriate review. Our personnel receive periodic training on the handling \
     practices described here, and violations of our internal procedures are subject \
     to disciplinary action.",
    "When you interact with us on behalf of an organization, this document applies to \
     you as an individual, while separate agreements may govern the organization's \
     relationship with us. We may maintain business records about organizations that \
     are outside the scope of this document.",
    "From time to time we participate in industry initiatives that promote responsible \
     handling practices. Participation in such initiatives does not modify this \
     document, but it informs the evolution of our internal procedures and our \
     assessment of emerging norms.",
    "Our offerings may contain links to destinations operated by others. Once you \
     leave our properties, this document no longer applies, and we encourage you to \
     review the notices published at any destination you visit. We are not responsible \
     for the practices of destinations we do not operate.",
    "We keep documentation of our processing activities where required by applicable \
     law, and we cooperate with competent supervisory authorities in the exercise of \
     their duties. Where a legal obligation requires us to act in a particular way, \
     that obligation takes precedence over the discretionary practices described in \
     this document.",
    "The examples provided throughout this document are illustrative rather than \
     exhaustive. Our business evolves, and the precise details of our operations may \
     vary by offering, by market, and over time, always within the boundaries \
     described here and required by applicable law.",
];

/// Render the policy for `truth` with `style` as an HTML document body
/// fragment (the site builder wraps it in a full page).
pub fn render_policy(
    truth: &GroundTruth,
    style: &PolicyStyle,
    _company_name: &str,
    seed: u64,
) -> String {
    let mut w = Writer::new(style.clone());
    let mut vr = rng::stream(seed, "label-variants", &truth.domain);
    // The company name is deliberately NOT interpolated into the English
    // policy body: generated names reuse sector words ("... Diagnostics",
    // "... Analytica") that collide with taxonomy surface forms, and a name
    // in the matcher-visible text would leak spurious annotations into
    // otherwise collision-free worlds (the oracle-exactness invariant). The
    // name still appears in the page <title> and the contact email, which
    // the text extraction keeps out of annotation input.
    w.para(
        "This Privacy Policy explains how our company handles information in connection \
         with our websites, products, and services. Please read it carefully. By accessing \
         our services, you acknowledge the practices described in this policy.",
    );
    w.filler_block(0);

    // Dedicated sections for aspects not folded inline.
    let inline = |k: AspectKind| style.inline_aspects.contains(&k);

    if !inline(AspectKind::Types) {
        w.heading("Information We Collect");
        render_types(&mut w, truth, style);
        w.filler_block(1);
    }

    w.heading("How We Collect Information");
    w.para(
        "We obtain information directly from you when you fill out forms, place orders, or \
         correspond with us. We also receive information through automated technologies when \
         you visit our websites, and occasionally from commercial sources where permitted by \
         applicable law.",
    );
    if style.filler_level >= 2 {
        w.para(
            "The technologies we use may change over time as our services evolve. Where \
             required, we will request permission before deploying technologies that are not \
             strictly necessary for the operation of our services.",
        );
    }
    w.filler_block(2);

    if !inline(AspectKind::Purposes) {
        w.heading("How We Use Your Information");
        render_purposes(&mut w, truth, style);
        w.filler_block(3);
    }

    w.heading("How We Share Your Information");
    w.para(
        "We do not make personal information available to unaffiliated companies for their \
         own independent purposes except as described in this policy. Corporate transactions \
         such as a merger, acquisition, or sale of assets may involve the transfer of \
         business records as permitted by applicable law.",
    );
    if style.filler_level >= 1 {
        w.para(
            "Vendors that perform functions on our behalf are held to contractual \
             commitments consistent with this policy and are permitted to use what they \
             receive only to perform those functions.",
        );
    }
    w.filler_block(4);

    if !inline(AspectKind::Handling) {
        w.heading("Data Retention and Security");
        render_handling(&mut w, truth, style, &mut vr);
        w.filler_block(5);
    }

    if !inline(AspectKind::Rights) {
        w.heading("Your Rights and Choices");
        render_rights(&mut w, truth, style, &mut vr);
        w.filler_block(6);
    }

    // Inline (fallback-triggering) content goes under a generic heading.
    if !style.inline_aspects.is_empty() {
        w.heading("Additional Information");
        for aspect in style.inline_aspects.clone() {
            match aspect {
                AspectKind::Types => render_types(&mut w, truth, style),
                AspectKind::Purposes => render_purposes(&mut w, truth, style),
                AspectKind::Handling => render_handling(&mut w, truth, style, &mut vr),
                AspectKind::Rights => render_rights(&mut w, truth, style, &mut vr),
            }
        }
    }

    w.heading("Specific Audiences");
    w.para(
        "Our services are not directed to minors under sixteen, and we ask that they not \
         submit information to us. California residents and residents of the European \
         Economic Area may have additional rights described in supplemental notices.",
    );

    w.heading("Changes to This Policy");
    w.para(
        "We may update this policy from time to time. When we make material updates, we \
         will revise the date below and, where required, provide additional notice. Your \
         continued use of the services after an update constitutes acceptance of the \
         revised policy.",
    );

    w.heading("Contact Us");
    w.para(&format!(
        "If you have questions about this policy or our practices, please reach out to our \
         privacy office at privacy@{} or by mail at our corporate headquarters.",
        truth.domain
    ));

    w.finish()
}

/// Render the German-language policy used by the non-English fate.
pub fn render_policy_german(company_name: &str) -> String {
    format!(
        "<h2>Datenschutzerkl\u{e4}rung</h2>\
         <p>Diese Datenschutzerkl\u{e4}rung beschreibt, wie {company_name} Ihre Daten \
         verarbeitet, wenn Sie unsere Dienste nutzen. Der Schutz Ihrer Daten ist uns ein \
         wichtiges Anliegen, und wir verarbeiten Ihre Angaben ausschlie\u{df}lich im Rahmen \
         der gesetzlichen Bestimmungen.</p>\
         <p>Wir erheben Angaben, wenn Sie unsere Webseiten besuchen oder mit uns in Kontakt \
         treten. Die Verarbeitung erfolgt zur Bereitstellung unserer Dienste, zur Erf\u{fc}llung \
         vertraglicher Pflichten sowie zur Wahrung berechtigter Interessen.</p>\
         <p>Sie haben jederzeit das Recht auf Auskunft, Berichtigung und L\u{f6}schung Ihrer \
         gespeicherten Angaben. Bitte wenden Sie sich hierzu an unseren \
         Datenschutzbeauftragten.</p>\
         <p>Weitere Hinweise erhalten Sie auf Anfrage. Wir aktualisieren diese Erkl\u{e4}rung \
         regelm\u{e4}\u{df}ig und ver\u{f6}ffentlichen \u{c4}nderungen auf dieser Seite.</p>"
    )
}

/// Render a mixed-language policy (English + German halves): the paper's
/// pre-processing discards such pages.
pub fn render_policy_mixed(
    truth: &GroundTruth,
    style: &PolicyStyle,
    company_name: &str,
    seed: u64,
) -> String {
    let english = render_policy(truth, style, company_name, seed);
    let german = render_policy_german(company_name);
    // Size the German half to outweigh the English half so the aggregate
    // stop-word score drops below the English threshold (the paper's
    // pre-processing then discards the page).
    let english_words = english.split_whitespace().count();
    let german_words = german.split_whitespace().count().max(1);
    let repeats = (english_words * 3 / german_words).max(3);
    let mut out = english;
    for _ in 0..repeats {
        out.push_str(&german);
    }
    out
}

// ---------------------------------------------------------------------------
// Section renderers
// ---------------------------------------------------------------------------

fn render_types(w: &mut Writer, truth: &GroundTruth, style: &PolicyStyle) {
    if truth.types.is_empty() {
        w.para(
            "We limit collection to what is reasonably necessary to operate our services, \
             as described at the point of collection.",
        );
    } else if style.bullets {
        w.para(
            "Depending on how you interact with us, the personal information we collect includes:",
        );
        let items: Vec<String> = truth.types.iter().map(|m| m.surface.clone()).collect();
        w.bullets(&items);
    } else {
        let openers = [
            "We may collect",
            "The categories of personal information we collect include",
            "When you interact with our services, we collect",
            "Our systems may automatically record",
            "In the course of providing our services, we also collect",
        ];
        for (i, chunk) in truth.types.chunks(3).enumerate() {
            let list = oxford(&surfaces(chunk));
            w.para(&format!("{} {list}.", openers[i % openers.len().max(1)]));
        }
    }
    if style.filler_level >= 1 {
        w.para(
            "The specific categories collected depend on how you interact with us. Where \
             required by applicable law, we will provide additional notice at the point of \
             collection and honor any legal limits on collection.",
        );
    }
    for neg in &truth.negated_types {
        w.para(&format!(
            "For the avoidance of doubt, we do not collect {} in connection with the \
             services covered by this policy.",
            neg.surface
        ));
    }
}

fn render_purposes(w: &mut Writer, truth: &GroundTruth, style: &PolicyStyle) {
    if truth.purposes.is_empty() {
        w.para("We process information as reasonably necessary to operate our business.");
        return;
    }
    if style.bullets {
        w.para("We use the information we collect for the following purposes:");
        let items: Vec<String> = truth.purposes.iter().map(|p| p.surface.clone()).collect();
        w.bullets(&items);
    } else {
        for chunk in truth.purposes.chunks(4) {
            let list = oxford(&purpose_surfaces(chunk));
            w.para(&format!("We use the information we collect for: {list}."));
        }
    }
    if style.filler_level >= 1 {
        w.para(
            "We rely on several legal bases for processing where applicable law requires \
             one, and we will not process information in ways that are incompatible with \
             the purposes described in this policy without providing appropriate notice.",
        );
    }
}

fn render_handling(w: &mut Writer, truth: &GroundTruth, _style: &PolicyStyle, vr: &mut impl Rng) {
    // Real policies restate the same practice in several places (per data
    // class, per jurisdiction); the paper's Table 1 counts each distinct
    // mention. Render 1–3 phrasing variants per planted label.
    for ret in &truth.retention {
        let variants = retention_sentences(ret.label, ret.period_days);
        let k = variant_count(vr, variants.len(), 3);
        for sentence in variants.iter().take(k) {
            w.para(sentence);
        }
    }
    for prot in &truth.protection {
        let variants = protection_sentences(*prot);
        let k = variant_count(vr, variants.len(), 2);
        for sentence in variants.iter().take(k) {
            w.para(sentence);
        }
    }
    w.para(
        "No method of transmission over the Internet is completely secure. While we work \
         hard to protect the information we maintain, we cannot guarantee absolute \
         security, and we encourage caution when submitting information online.",
    );
}

/// How many phrasing variants to render (1..=max, capped by availability).
fn variant_count(vr: &mut impl Rng, available: usize, max: usize) -> usize {
    vr.gen_range(1..=max.min(available).max(1))
}

fn render_rights(w: &mut Writer, truth: &GroundTruth, _style: &PolicyStyle, vr: &mut impl Rng) {
    for choice in &truth.choices {
        let variants = choice_sentences(*choice, &truth.domain);
        let k = variant_count(vr, variants.len(), 3);
        for sentence in variants.iter().take(k) {
            w.para(sentence);
        }
    }
    for access in &truth.access {
        let variants = access_sentences(*access);
        let k = variant_count(vr, variants.len(), 2);
        for sentence in variants.iter().take(k) {
            w.para(sentence);
        }
    }
    w.para(
        "We will not discriminate against you for exercising any right described in this \
         section, and we may need to validate a request before fulfilling it.",
    );
}

/// Phrasing variants for a retention label (first is canonical).
pub fn retention_sentences(label: RetentionLabel, period_days: Option<u32>) -> Vec<String> {
    match label {
        RetentionLabel::Limited => vec![
            "We retain your personal information only for as long as necessary to fulfill \
             the purposes described in this policy, unless a longer period is required by \
             applicable law."
                .to_string(),
            "Retention periods are limited: records are kept no longer than necessary for \
             the purposes for which they were collected."
                .to_string(),
            "We periodically review what we hold and retain information only as long as \
             necessary for legitimate business needs."
                .to_string(),
        ],
        RetentionLabel::Stated => {
            let period = period_text(period_days.unwrap_or(730));
            vec![
                format!(
                    "We retain your personal information for {period} after your last \
                     interaction with our services, after which it is destroyed or \
                     de-identified."
                ),
                format!(
                    "Account records are retained for {period} following the closure of \
                     your relationship with us."
                ),
                format!(
                    "As a rule, we keep transactional records for {period} to satisfy our \
                     obligations under applicable law."
                ),
            ]
        }
        RetentionLabel::Indefinitely => vec![
            "Certain records may be retained indefinitely where permitted, including \
             archival copies maintained for business continuity."
                .to_string(),
            "Aggregated records may be retained indefinitely for historical comparison."
                .to_string(),
            "Backup archives may retain information indefinitely unless deletion is \
             required by applicable law."
                .to_string(),
        ],
    }
}

/// Phrasing variants for a protection label (first is canonical).
pub fn protection_sentences(label: ProtectionLabel) -> &'static [&'static str] {
    match label {
        ProtectionLabel::Generic => &[
            "We maintain commercially reasonable administrative, technical, and \
             organizational safeguards designed to protect the information we hold.",
            "Our information security framework relies on administrative, technical, and \
             physical safeguards appropriate to the sensitivity of the information.",
        ],
        ProtectionLabel::AccessLimit => &[
            "Access to personal information is restricted to personnel with a need to know \
             and is revoked when no longer required.",
            "Internal access follows the principle of least privilege: only personnel with \
             a need-to-know may view records.",
        ],
        ProtectionLabel::SecureTransfer => &[
            "Information transmitted to us is protected in transit using Secure Socket \
             Layer (SSL) or Transport Layer Security (TLS) encryption.",
            "All traffic between your browser and our servers is encrypted in transit.",
        ],
        ProtectionLabel::SecureStorage => &[
            "Personal information at rest is stored in encrypted databases hosted in \
             access-controlled facilities.",
            "Records are maintained in an encrypted format at rest within hardened \
             facilities.",
        ],
        ProtectionLabel::PrivacyProgram => &[
            "We maintain a comprehensive privacy program overseen by a dedicated data \
             protection officer.",
            "Our enterprise privacy program assigns accountability for handling practices \
             across every business unit.",
        ],
        ProtectionLabel::PrivacyReview => &[
            "Our security measures and data protection practices are regularly reviewed \
             and audited by internal and independent assessors.",
            "Our controls are audited periodically, and findings are tracked to closure.",
        ],
        ProtectionLabel::SecureAuthentication => &[
            "We offer two-factor sign-in verification and encrypted credentials to help \
             secure your account.",
            "Multi-factor verification is available on all accounts to deter unauthorized \
             sign-ins.",
        ],
    }
}

/// Phrasing variants for a user-choice label (first is canonical).
pub fn choice_sentences(label: ChoiceLabel, domain: &str) -> Vec<String> {
    match label {
        ChoiceLabel::OptOutViaContact => vec![
            format!(
                "To opt out of marketing communications, please contact us directly at \
                 privacy@{domain} with your request."
            ),
            format!(
                "You can opt out of these communications at any time; simply write to us \
                 at privacy@{domain}."
            ),
            "To opt out of the data uses described above, contact us and our team will \
             process the request promptly."
                .to_string(),
        ],
        ChoiceLabel::OptOutViaLink => vec![
            "You may opt out at any time by clicking the unsubscribe link included in our \
             communications or the Opt-Out Request link on this page."
                .to_string(),
            "Click the opt-out link at the bottom of any message to stop receiving them."
                .to_string(),
            "You may opt out of interest-based messaging by clicking the preference link \
             provided with each campaign."
                .to_string(),
        ],
        ChoiceLabel::PrivacySettings => vec![
            "You can manage your choices at any time through the privacy settings page \
             available in your account dashboard."
                .to_string(),
            "The privacy settings page lets you adjust how information about you is used."
                .to_string(),
            "Visit your privacy settings to switch individual features on or off.".to_string(),
        ],
        ChoiceLabel::OptIn => vec![
            "Where the law requires it, we will obtain your consent before we collect, \
             use, or disclose this information."
                .to_string(),
            "These features operate only with your prior consent.".to_string(),
            "We will obtain your consent before enabling any optional data uses.".to_string(),
        ],
        ChoiceLabel::DoNotUse => vec![
            "If you do not agree with the practices described in this policy, your sole \
             remedy is to discontinue use of the affected feature or service."
                .to_string(),
            "If these practices are unacceptable to you, the only available option is to \
             discontinue use of the service."
                .to_string(),
            "Users who do not agree with this policy should not use our services.".to_string(),
        ],
    }
}

/// Phrasing variants for a user-access label (first is canonical).
pub fn access_sentences(label: AccessLabel) -> &'static [&'static str] {
    match label {
        AccessLabel::Edit => &[
            "You may update or correct your personal information at any time by signing in \
             or submitting a request.",
            "Signed-in users can update or correct details directly from the account page.",
        ],
        AccessLabel::FullDelete => &[
            "You may request that we delete your account and all associated personal \
             information from our servers and databases.",
            "Upon request, we will delete your account and all associated records from our \
             production systems.",
        ],
        AccessLabel::View => &[
            "You may request access to review the personal information we hold about you.",
            "You can request access to the personal information we maintain about you.",
        ],
        AccessLabel::Export => &[
            "You may request a copy of your personal information in a portable, \
             machine-readable format.",
            "A machine-readable export of the information we hold is available upon \
             verified request.",
        ],
        AccessLabel::PartialDelete => &[
            "You may request deletion of certain personal information, although we may \
             retain some records where required by applicable law.",
            "You may seek deletion of certain records, though we may retain some \
             information to meet statutory duties.",
        ],
        AccessLabel::Deactivate => &[
            "You may deactivate your account at any time through your account dashboard; \
             deactivated records remain on our systems.",
            "Accounts may be deactivated at any time from the account page; deactivated \
             records remain available to us.",
        ],
    }
}

// ---------------------------------------------------------------------------
// Retention-period text
// ---------------------------------------------------------------------------

/// Spell a retention period in the "two (2) years" notation the paper's
/// Table 6 exhibits.
pub fn period_text(days: u32) -> String {
    let (n, unit) = if days.is_multiple_of(365) && days >= 365 {
        (days / 365, if days == 365 { "year" } else { "years" })
    } else if days.is_multiple_of(30) && (30..365).contains(&days) {
        (days / 30, if days == 30 { "month" } else { "months" })
    } else {
        (days, if days == 1 { "day" } else { "days" })
    };
    format!("{} ({}) {}", spell_number(n), n, unit)
}

/// Spell numbers up to 100 in words (digits beyond that).
pub fn spell_number(n: u32) -> String {
    const ONES: [&str; 20] = [
        "zero",
        "one",
        "two",
        "three",
        "four",
        "five",
        "six",
        "seven",
        "eight",
        "nine",
        "ten",
        "eleven",
        "twelve",
        "thirteen",
        "fourteen",
        "fifteen",
        "sixteen",
        "seventeen",
        "eighteen",
        "nineteen",
    ];
    const TENS: [&str; 10] = [
        "", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety",
    ];
    match n {
        0..=19 => ONES.get(n as usize).copied().unwrap_or("").to_string(),
        20..=99 => {
            let t = TENS[(n / 10) as usize];
            if n.is_multiple_of(10) {
                t.to_string()
            } else {
                format!("{t}-{}", ONES[(n % 10) as usize])
            }
        }
        _ => n.to_string(),
    }
}

// ---------------------------------------------------------------------------
// HTML writing helpers
// ---------------------------------------------------------------------------

struct Writer {
    style: PolicyStyle,
    html: String,
}

impl Writer {
    fn new(style: PolicyStyle) -> Writer {
        Writer {
            style,
            html: String::with_capacity(16 * 1024),
        }
    }

    fn heading(&mut self, text: &str) {
        match self.style.heading {
            HeadingStyle::H2 => {
                self.html.push_str("<h2>");
                self.html.push_str(text);
                self.html.push_str("</h2>\n");
            }
            HeadingStyle::BoldLines => {
                self.html.push_str("<p><strong>");
                self.html.push_str(text);
                self.html.push_str("</strong></p>\n");
            }
            HeadingStyle::None => {}
        }
    }

    fn para(&mut self, text: &str) {
        self.html.push_str("<p>");
        self.html.push_str(text);
        self.html.push_str("</p>\n");
    }

    /// Emit the section's share of filler paragraphs (rotating through the
    /// pool by section index so sections don't repeat each other).
    fn filler_block(&mut self, section: usize) {
        let count = match self.style.filler_level {
            0 => 0,
            1 => 7,
            _ => 10,
        };
        for k in 0..count {
            let idx = (section * 5 + k * 3) % FILLER.len();
            self.para(FILLER[idx]);
        }
    }

    fn bullets(&mut self, items: &[String]) {
        self.html.push_str("<ul>\n");
        for item in items {
            self.html.push_str("<li>");
            self.html.push_str(item);
            self.html.push_str("</li>\n");
        }
        self.html.push_str("</ul>\n");
    }

    fn finish(self) -> String {
        self.html
    }
}

fn surfaces(mentions: &[PlantedMention]) -> Vec<String> {
    mentions
        .iter()
        .map(|m| format!("your {}", m.surface))
        .collect()
}

fn purpose_surfaces(purposes: &[PlantedPurpose]) -> Vec<String> {
    purposes.iter().map(|p| p.surface.clone()).collect()
}

fn oxford(items: &[String]) -> String {
    match items.len() {
        0 => String::new(),
        1 => items[0].clone(),
        2 => format!("{} and {}", items[0], items[1]),
        _ => {
            let head = items[..items.len() - 1].join(", ");
            format!("{head}, and {}", items[items.len() - 1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::GroundTruth;
    use aipan_taxonomy::Sector;

    fn sample(seed: u64, domain: &str) -> (GroundTruth, PolicyStyle) {
        let t = GroundTruth::sample(seed, domain, Sector::InformationTechnology);
        let s = PolicyStyle::sample(seed, domain);
        (t, s)
    }

    #[test]
    fn every_planted_surface_appears_verbatim() {
        for i in 0..40 {
            let (t, s) = sample(1, &format!("d{i}.com"));
            let html = render_policy(&t, &s, "Test Corp", 1);
            let lower = html.to_lowercase();
            for m in t.types.iter().chain(t.negated_types.iter()) {
                assert!(
                    lower.contains(&m.surface.to_lowercase()),
                    "missing surface {:?} in policy for d{i}.com",
                    m.surface
                );
            }
            for p in &t.purposes {
                assert!(
                    lower.contains(&p.surface.to_lowercase()),
                    "missing {:?}",
                    p.surface
                );
            }
        }
    }

    #[test]
    fn negated_mentions_preceded_by_negation() {
        let t = GroundTruth {
            negated_types: vec![crate::groundtruth::PlantedMention {
                descriptor: "biometric data".into(),
                category: aipan_taxonomy::DataTypeCategory::BiometricData,
                surface: "biometric data".into(),
                zero_shot: false,
            }],
            ..GroundTruth::sample(2, "x.com", Sector::Energy)
        };
        let s = PolicyStyle::sample(2, "x.com");
        let html = render_policy(&t, &s, "X Corp", 2);
        assert!(html.contains("we do not collect biometric data"));
    }

    #[test]
    fn period_text_forms() {
        assert_eq!(period_text(730), "two (2) years");
        assert_eq!(period_text(365), "one (1) year");
        assert_eq!(period_text(90), "three (3) months");
        assert_eq!(period_text(45), "forty-five (45) days");
        assert_eq!(period_text(180), "six (6) months");
        assert_eq!(period_text(1), "one (1) day");
        assert_eq!(period_text(18250), "fifty (50) years");
    }

    #[test]
    fn spell_numbers() {
        assert_eq!(spell_number(0), "zero");
        assert_eq!(spell_number(13), "thirteen");
        assert_eq!(spell_number(21), "twenty-one");
        assert_eq!(spell_number(50), "fifty");
        assert_eq!(spell_number(101), "101");
    }

    #[test]
    fn heading_styles_render_differently() {
        let (t, _) = sample(3, "h.com");
        let mk = |heading| PolicyStyle {
            heading,
            inline_aspects: vec![],
            bullets: false,
            filler_level: 1,
        };
        let h2 = render_policy(&t, &mk(HeadingStyle::H2), "H Corp", 3);
        let bold = render_policy(&t, &mk(HeadingStyle::BoldLines), "H Corp", 3);
        let none = render_policy(&t, &mk(HeadingStyle::None), "H Corp", 3);
        assert!(h2.contains("<h2>Information We Collect</h2>"));
        assert!(bold.contains("<strong>Information We Collect</strong>"));
        assert!(!none.contains("<h2>") && !none.contains("<strong>"));
    }

    #[test]
    fn inline_aspect_moves_content_to_additional_section() {
        let (t, _) = sample(4, "i.com");
        let style = PolicyStyle {
            heading: HeadingStyle::H2,
            inline_aspects: vec![AspectKind::Handling],
            bullets: false,
            filler_level: 1,
        };
        let html = render_policy(&t, &style, "I Corp", 4);
        assert!(!html.contains("<h2>Data Retention and Security</h2>"));
        assert!(html.contains("<h2>Additional Information</h2>"));
    }

    #[test]
    fn german_policy_is_not_english() {
        let html = render_policy_german("Müller AG");
        let doc = aipan_html::extract(&html);
        assert!(!aipan_html::lang::is_english(&doc.text()));
    }

    #[test]
    fn mixed_policy_scores_below_english_threshold() {
        let (t, s) = sample(5, "mix.com");
        let html = render_policy_mixed(&t, &s, "Mix Corp", 5);
        let doc = aipan_html::extract(&html);
        assert!(
            !aipan_html::lang::is_english(&doc.text()),
            "mixed text should be discarded"
        );
    }

    #[test]
    fn english_policy_is_english() {
        let (t, s) = sample(6, "en.com");
        let html = render_policy(&t, &s, "En Corp", 6);
        let doc = aipan_html::extract(&html);
        assert!(aipan_html::lang::is_english(&doc.text()));
    }

    #[test]
    fn style_sampling_deterministic_and_varied() {
        let a = PolicyStyle::sample(7, "a.com");
        assert_eq!(a, PolicyStyle::sample(7, "a.com"));
        let styles: std::collections::HashSet<String> = (0..50)
            .map(|i| format!("{:?}", PolicyStyle::sample(7, &format!("v{i}.com")).heading))
            .collect();
        assert!(styles.len() > 1, "heading styles should vary");
    }
}
