//! Keyed deterministic random streams.
//!
//! Every stochastic decision in the generator draws from a ChaCha stream
//! keyed by `(master_seed, component_label, entity_key)`. This makes the
//! generated world independent of iteration order and thread scheduling:
//! company #1742's policy is identical whether generated first, last, or in
//! parallel.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hash::{Hash, Hasher};

/// Derive a ChaCha8 stream for `(seed, component, key)`.
pub fn stream(seed: u64, component: &str, key: &str) -> ChaCha8Rng {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut hasher);
    component.hash(&mut hasher);
    key.hash(&mut hasher);
    let h1 = hasher.finish();
    // Widen to 256 bits by re-hashing with counters.
    let mut material = [0u8; 32];
    for (i, chunk) in material.chunks_mut(8).enumerate() {
        let mut hx = std::collections::hash_map::DefaultHasher::new();
        h1.hash(&mut hx);
        (i as u64).hash(&mut hx);
        component.hash(&mut hx);
        chunk.copy_from_slice(&hx.finish().to_le_bytes());
    }
    ChaCha8Rng::from_seed(material)
}

/// Uniform float in [0,1) keyed by `(seed, component, key)` — for one-shot
/// decisions where creating a full stream is overkill.
pub fn unit(seed: u64, component: &str, key: &str) -> f64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut hasher);
    component.hash(&mut hasher);
    key.hash(&mut hasher);
    (hasher.finish() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream(7, "policy", "acme.com");
        let mut b = stream(7, "policy", "acme.com");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ_by_key_and_component() {
        let mut base = stream(7, "policy", "acme.com");
        let mut other_key = stream(7, "policy", "globex.com");
        let mut other_comp = stream(7, "site", "acme.com");
        let mut other_seed = stream(8, "policy", "acme.com");
        let v = base.gen::<u64>();
        assert_ne!(v, other_key.gen::<u64>());
        assert_ne!(v, other_comp.gen::<u64>());
        assert_ne!(v, other_seed.gen::<u64>());
    }

    #[test]
    fn unit_in_range_and_deterministic() {
        for i in 0..100 {
            let k = format!("k{i}");
            let u = unit(3, "c", &k);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, unit(3, "c", &k));
        }
    }

    #[test]
    fn unit_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit(1, "u", &format!("{i}"))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
