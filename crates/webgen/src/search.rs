//! The simulated search engine used for domain acquisition.
//!
//! The paper finds each company's domain by taking "the first Google search
//! result for the associated company name" and manually reviewing the
//! result. We model that as a name → domain index built from the universe,
//! with a small, deterministic rate of wrong-first-result lookups that the
//! manual-review step corrects (mirroring the paper's workflow).

use crate::rng;
use crate::universe::Universe;
use std::collections::HashMap;

/// A simulated search index over the company universe.
#[derive(Debug, Clone)]
pub struct SearchIndex {
    by_name: HashMap<String, String>,
    /// Names whose raw first result is wrong (fixed by manual review).
    misleading: std::collections::HashSet<String>,
}

/// Result of a company-name search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// The first result's domain.
    pub domain: String,
    /// Whether the raw first result was wrong and manual review corrected
    /// it (the returned `domain` is always the corrected one).
    pub needed_review: bool,
}

impl SearchIndex {
    /// Rate of misleading first results (corrected by manual review).
    pub const MISLEADING_RATE: f64 = 0.02;

    /// Build the index for a universe.
    pub fn build(seed: u64, universe: &Universe) -> SearchIndex {
        let mut by_name = HashMap::new();
        let mut misleading = std::collections::HashSet::new();
        for c in &universe.companies {
            by_name.insert(c.name.clone(), c.domain.clone());
            if rng::unit(seed, "search-misleading", &c.name) < Self::MISLEADING_RATE {
                misleading.insert(c.name.clone());
            }
        }
        SearchIndex {
            by_name,
            misleading,
        }
    }

    /// Search for a company name; `None` if the name is unknown.
    pub fn first_result(&self, company_name: &str) -> Option<SearchHit> {
        let domain = self.by_name.get(company_name)?.clone();
        Some(SearchHit {
            domain,
            needed_review: self.misleading.contains(company_name),
        })
    }

    /// Number of indexed names.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_company_resolvable() {
        let u = Universe::generate_sized(1, 200);
        let idx = SearchIndex::build(1, &u);
        for c in &u.companies {
            let hit = idx.first_result(&c.name).expect("indexed");
            assert_eq!(hit.domain, c.domain);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        let u = Universe::generate_sized(1, 50);
        let idx = SearchIndex::build(1, &u);
        assert!(idx.first_result("Nonexistent Conglomerate LLC").is_none());
    }

    #[test]
    fn misleading_rate_small_but_nonzero() {
        let u = Universe::generate_sized(2, 2000);
        let idx = SearchIndex::build(2, &u);
        let flagged = u
            .companies
            .iter()
            .filter(|c| idx.first_result(&c.name).unwrap().needed_review)
            .count();
        let rate = flagged as f64 / u.len() as f64;
        assert!(rate > 0.001 && rate < 0.06, "rate={rate}");
    }

    #[test]
    fn deterministic() {
        let u = Universe::generate_sized(3, 100);
        let a = SearchIndex::build(3, &u);
        let b = SearchIndex::build(3, &u);
        for c in &u.companies {
            assert_eq!(a.first_result(&c.name), b.first_result(&c.name));
        }
    }
}
