//! Assembling company websites and the full simulated world.
//!
//! Each domain gets a deterministic [`CompanyFate`] that reproduces one of
//! the §4 failure classes (or `Normal`), a site layout variant (canonical
//! `/privacy-policy`, `/privacy`, custom paths, or a privacy-center
//! arrangement — calibrated so the §3.1 path-existence rates hold), and its
//! rendered pages registered on an [`Internet`].

use crate::groundtruth::GroundTruth;
use crate::policy::{render_policy, render_policy_german, render_policy_mixed, PolicyStyle};
use crate::rng;
use crate::search::SearchIndex;
use crate::universe::{Company, Universe, UNIVERSE_SIZE};
use aipan_net::fault::FaultConfig;
use aipan_net::host::{StaticSite, VirtualHost};
use aipan_net::http::{Request, Response, Status};
use aipan_net::Internet;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The fate assigned to a company's website, reproducing the §4 audit
/// classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CompanyFate {
    /// Policy present and extractable.
    Normal,
    /// The site has no privacy policy at all.
    NoPolicy,
    /// Policy exists but is linked as "Legal Notices" (no "privacy" in the
    /// link text or target).
    HiddenLegalLink,
    /// The footer privacy link triggers a JavaScript action instead of
    /// navigation.
    JsActionLink,
    /// The privacy link lives only inside a collapsed consent box.
    ConsentBoxLink,
    /// The policy is served as a PDF.
    PdfPolicy,
    /// The site (and policy) is in German.
    NonEnglish,
    /// The policy mixes English and German; pre-processing discards it.
    MixedLanguage,
    /// The privacy page is an empty JavaScript-rendered shell.
    JsLoadedPolicy,
    /// The policy is embedded as an image.
    ImagePolicy,
    /// The policy body is hidden inside collapsed expandable elements.
    ExpandablePolicy,
}

impl CompanyFate {
    /// Assign the fate for `(seed, domain)` at the calibrated rates.
    pub fn assign(seed: u64, domain: &str) -> CompanyFate {
        let u = rng::unit(seed, "fate", domain);
        match u {
            x if x < 0.072 => CompanyFate::NoPolicy,
            x if x < 0.079 => CompanyFate::HiddenLegalLink,
            x if x < 0.0815 => CompanyFate::JsActionLink,
            x if x < 0.084 => CompanyFate::ConsentBoxLink,
            x if x < 0.098 => CompanyFate::PdfPolicy,
            x if x < 0.103 => CompanyFate::NonEnglish,
            x if x < 0.1045 => CompanyFate::MixedLanguage,
            x if x < 0.1105 => CompanyFate::JsLoadedPolicy,
            x if x < 0.113 => CompanyFate::ImagePolicy,
            x if x < 0.116 => CompanyFate::ExpandablePolicy,
            _ => CompanyFate::Normal,
        }
    }

    /// Whether a correctly functioning pipeline should fully annotate this
    /// site.
    pub fn expect_extraction(self) -> bool {
        self == CompanyFate::Normal
    }

    /// Path of the page actually containing the policy under this fate —
    /// the single source of truth shared by eager metadata construction and
    /// lazy site assembly (`None` for [`CompanyFate::NoPolicy`]).
    pub fn policy_path(self, seed: u64, domain: &str) -> Option<&'static str> {
        match self {
            CompanyFate::NoPolicy => None,
            CompanyFate::Normal => Some(SiteLayout::assign(seed, domain).policy_path()),
            CompanyFate::HiddenLegalLink => Some("/legal-notices"),
            CompanyFate::JsActionLink => Some("/modal/privacy-content"),
            CompanyFate::ConsentBoxLink => Some("/legal/privacy-statement"),
            CompanyFate::PdfPolicy => Some("/docs/privacy-policy.pdf"),
            CompanyFate::NonEnglish => Some("/privacy"),
            CompanyFate::MixedLanguage
            | CompanyFate::JsLoadedPolicy
            | CompanyFate::ImagePolicy
            | CompanyFate::ExpandablePolicy => Some("/privacy-policy"),
        }
    }
}

/// Layout variant of a normal site's privacy pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteLayout {
    /// `/privacy-policy` real page, `/privacy` redirects to it.
    Both,
    /// Only `/privacy-policy`.
    PolicyPathOnly,
    /// Only `/privacy`.
    PrivacyPathOnly,
    /// Custom path (`/legal/privacy-notice`), neither standard path exists.
    Custom,
    /// A privacy center at `/privacy` with the actual policy one link
    /// deeper at `/privacy/policy`.
    Center,
}

impl SiteLayout {
    /// Assign the layout for `(seed, domain)` at rates calibrated to the
    /// §3.1 path-existence statistics (54.5% `/privacy-policy`, 48.6%
    /// `/privacy` over all domains).
    pub fn assign(seed: u64, domain: &str) -> SiteLayout {
        let u = rng::unit(seed, "layout", domain);
        match u {
            x if x < 0.30 => SiteLayout::Both,
            x if x < 0.60 => SiteLayout::PolicyPathOnly,
            x if x < 0.76 => SiteLayout::PrivacyPathOnly,
            x if x < 0.92 => SiteLayout::Custom,
            _ => SiteLayout::Center,
        }
    }

    /// Path of the page that actually contains the policy.
    pub fn policy_path(self) -> &'static str {
        match self {
            SiteLayout::Both | SiteLayout::PolicyPathOnly => "/privacy-policy",
            SiteLayout::PrivacyPathOnly => "/privacy",
            SiteLayout::Custom => "/legal/privacy-notice",
            SiteLayout::Center => "/privacy/policy",
        }
    }
}

/// Configuration for building a world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of index constituents (2916 reproduces the paper).
    pub universe_size: usize,
    /// Network fault configuration.
    pub faults: FaultConfig,
    /// Policy revision number: 0 is the initial snapshot; higher values
    /// apply that many update cycles to every policy (longitudinal trend
    /// analysis).
    pub revision: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            universe_size: UNIVERSE_SIZE,
            faults: FaultConfig::default(),
            revision: 0,
        }
    }
}

impl WorldConfig {
    /// A small world for tests and examples.
    pub fn small(seed: u64, universe_size: usize) -> WorldConfig {
        WorldConfig {
            seed,
            universe_size,
            faults: FaultConfig::default(),
            revision: 0,
        }
    }

    /// The same world at a later policy revision.
    pub fn at_revision(mut self, revision: u32) -> WorldConfig {
        self.revision = revision;
        self
    }
}

/// The fully built simulated world.
pub struct World {
    /// The configuration used.
    pub config: WorldConfig,
    /// The company universe.
    pub universe: Universe,
    /// The simulated search index.
    pub search: SearchIndex,
    /// The simulated web.
    pub internet: Internet,
    /// Per-domain fates.
    pub fates: BTreeMap<String, CompanyFate>,
    /// Per-domain planted ground truth (absent for [`CompanyFate::NoPolicy`]).
    pub truths: BTreeMap<String, GroundTruth>,
    /// Per-domain policy rendering style.
    pub styles: BTreeMap<String, PolicyStyle>,
    /// Per-domain path of the page actually containing the policy (absent
    /// for `NoPolicy`).
    pub policy_paths: BTreeMap<String, String>,
    /// Lazily generated hosts by domain (empty for eagerly built worlds):
    /// each site is materialized on first fetch and can be released once
    /// its domain has been processed, bounding resident memory by the
    /// number of in-flight domains instead of the universe size.
    pub lazy_hosts: BTreeMap<String, Arc<LazySite>>,
    /// Resident-site memory gauge. Lazy worlds track the live total and
    /// high-water mark across materialize/release cycles; eager worlds
    /// record the full registered byte count once at build time.
    pub site_memory: Arc<MemoryGauge>,
}

impl World {
    /// Fate of a domain (`Normal` for unknown domains).
    pub fn fate(&self, domain: &str) -> CompanyFate {
        self.fates
            .get(domain)
            .copied()
            .unwrap_or(CompanyFate::Normal)
    }

    /// Ground truth of a domain.
    pub fn truth(&self, domain: &str) -> Option<&GroundTruth> {
        self.truths.get(domain)
    }

    /// The first-listed company for a domain.
    pub fn company(&self, domain: &str) -> Option<&Company> {
        self.universe.by_domain(domain)
    }

    /// Count of domains with each fate.
    pub fn fate_histogram(&self) -> BTreeMap<CompanyFate, usize> {
        let mut h = BTreeMap::new();
        for &fate in self.fates.values() {
            *h.entry(fate).or_insert(0) += 1;
        }
        h
    }

    /// Whether this world generates sites lazily (see [`build_world_lazy`]).
    pub fn is_lazy(&self) -> bool {
        !self.lazy_hosts.is_empty()
    }

    /// Release `domain`'s materialized site, if this world is lazy and the
    /// site has been built. The next fetch re-materializes it from the same
    /// keyed RNG, byte-identical. No-op for eager worlds.
    pub fn release_site(&self, domain: &str) {
        if let Some(host) = self.lazy_hosts.get(domain) {
            host.release();
        }
    }
}

/// Current and peak resident bytes, tracked with commutative atomic ops so
/// worker threads never serialize on the gauge.
#[derive(Debug, Default)]
pub struct MemoryGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryGauge {
    /// Account `bytes` newly resident and advance the high-water mark.
    pub fn add(&self, bytes: usize) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Account `bytes` released. Saturates at zero: a double release (or a
    /// release racing a concurrent accounting reset) must not wrap
    /// `current` to ~`usize::MAX` and poison every later backpressure
    /// decision made against the gauge.
    pub fn sub(&self, bytes: usize) {
        let _prev = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    /// Bytes currently resident.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A virtual host whose site is generated on first fetch.
///
/// Site assembly is a pure function of `(seed, revision, company, fate)` —
/// all per-domain randomness is drawn from keyed RNG streams — so a lazily
/// materialized site is byte-identical to the one eager [`build_world`]
/// would have registered, regardless of fetch order or worker count. The
/// site is cached behind a mutex; [`LazySite::release`] drops the cache so
/// a streaming pipeline holds only its in-flight domains' sites.
pub struct LazySite {
    seed: u64,
    revision: u32,
    company: Company,
    fate: CompanyFate,
    gauge: Arc<MemoryGauge>,
    built: Mutex<Option<Arc<StaticSite>>>,
}

impl LazySite {
    /// The cached site, materializing it on first use. Assembly runs
    /// outside the cache lock (the lock guards only the install), so a
    /// racing fetch at worst assembles a duplicate that is then discarded
    /// in favor of the winner's — never a torn or double-counted site.
    fn materialize(&self) -> Arc<StaticSite> {
        if let Some(site) = self.built.lock().clone() {
            return site;
        }
        let assembled = Arc::new(assemble_site(
            self.seed,
            self.revision,
            &self.company,
            self.fate,
        ));
        let bytes = assembled.resident_bytes();
        {
            let mut slot = self.built.lock();
            if let Some(existing) = slot.as_ref() {
                return existing.clone();
            }
            *slot = Some(assembled.clone());
        }
        self.gauge.add(bytes);
        assembled
    }

    /// Drop the cached site (it rebuilds, byte-identical, on next fetch).
    pub fn release(&self) {
        if let Some(site) = self.built.lock().take() {
            self.gauge.sub(site.resident_bytes());
        }
    }

    /// Whether the site is currently materialized.
    pub fn is_built(&self) -> bool {
        self.built.lock().is_some()
    }
}

impl VirtualHost for LazySite {
    fn handle(&self, request: &Request) -> Response {
        self.materialize().handle(request)
    }
}

/// Build the full simulated world for `config`, with every site rendered
/// and registered eagerly.
pub fn build_world(config: WorldConfig) -> World {
    build_world_mode(config, false)
}

/// Build the world with **lazy** per-domain site generation: metadata
/// (universe, search index, fates, ground truths, styles, policy paths) is
/// constructed eagerly exactly as [`build_world`] does, but each domain's
/// pages are only rendered on its first fetch, and can be dropped again
/// via [`World::release_site`]. Crawl results are byte-identical to the
/// eager world's; resident site memory is bounded by the number of
/// materialized (in-flight) domains rather than the universe size.
pub fn build_world_lazy(config: WorldConfig) -> World {
    build_world_mode(config, true)
}

fn build_world_mode(config: WorldConfig, lazy: bool) -> World {
    let universe = Universe::generate_sized(config.seed, config.universe_size);
    let search = SearchIndex::build(config.seed, &universe);
    let internet = Internet::new();
    let site_memory = Arc::new(MemoryGauge::default());
    let mut fates = BTreeMap::new();
    let mut truths = BTreeMap::new();
    let mut styles = BTreeMap::new();
    let mut policy_paths = BTreeMap::new();
    let mut lazy_hosts = BTreeMap::new();

    for company in universe.unique_domains() {
        let domain = company.domain.clone();
        let fate = CompanyFate::assign(config.seed, &domain);
        fates.insert(domain.clone(), fate);
        if let Some(path) = fate.policy_path(config.seed, &domain) {
            policy_paths.insert(domain.clone(), path.to_string());
        }
        let style = PolicyStyle::sample(config.seed, &domain);
        let truth = match fate {
            CompanyFate::NoPolicy => None,
            _ => Some(
                GroundTruth::sample(config.seed, &domain, company.sector)
                    .revise(config.seed, config.revision),
            ),
        };

        if lazy {
            let host = Arc::new(LazySite {
                seed: config.seed,
                revision: config.revision,
                company: company.clone(),
                fate,
                gauge: site_memory.clone(),
                built: Mutex::new(None),
            });
            internet.register_shared(&domain, host.clone());
            lazy_hosts.insert(domain.clone(), host);
        } else {
            let site = assemble_site_with(config.seed, company, fate, truth.as_ref(), &style);
            site_memory.add(site.resident_bytes());
            internet.register(&domain, site);
        }

        if let Some(truth) = truth {
            truths.insert(domain.clone(), truth);
        }
        styles.insert(domain, style);
    }

    World {
        config,
        universe,
        search,
        internet,
        fates,
        truths,
        styles,
        policy_paths,
        lazy_hosts,
        site_memory,
    }
}

/// Assemble one domain's full site from scratch — the lazy-generation
/// entry point. Pure in `(seed, revision, company, fate)`.
fn assemble_site(seed: u64, revision: u32, company: &Company, fate: CompanyFate) -> StaticSite {
    let style = PolicyStyle::sample(seed, &company.domain);
    let truth = match fate {
        CompanyFate::NoPolicy => None,
        _ => {
            Some(GroundTruth::sample(seed, &company.domain, company.sector).revise(seed, revision))
        }
    };
    assemble_site_with(seed, company, fate, truth.as_ref(), &style)
}

/// Assemble one domain's site from pre-sampled metadata (shared by the
/// eager build loop, which already holds the truth and style).
fn assemble_site_with(
    seed: u64,
    company: &Company,
    fate: CompanyFate,
    truth: Option<&GroundTruth>,
    style: &PolicyStyle,
) -> StaticSite {
    let mut site = match (fate, truth) {
        (CompanyFate::NoPolicy, _) | (_, None) => build_no_policy_site(company),
        (_, Some(truth)) => build_site(seed, company, truth, style, fate),
    };
    if let Some(robots) = robots_txt(seed, &company.domain) {
        site = site.page("/robots.txt", robots);
    }
    site
}

// ---------------------------------------------------------------------------
// Page assembly
// ---------------------------------------------------------------------------

fn page(title: &str, header: &str, main: &str, footer: &str) -> Response {
    Response::html(format!(
        "<!DOCTYPE html><html><head><title>{title}</title></head><body>\
         <header><nav>{header}</nav></header>\
         <main>{main}</main>\
         <footer>{footer}</footer>\
         </body></html>"
    ))
}

/// Whether `domain`'s robots.txt disallows all crawling (a compliant
/// crawler then fetches nothing; used by the §4 failure audit).
pub fn robots_blocks_all(seed: u64, domain: &str) -> bool {
    rng::unit(seed, "robots", domain) < 0.002
}

/// robots.txt for a site: ~75% of sites publish one (benign rules plus an
/// occasional crawl-delay); a tiny fraction disallow all crawling, which a
/// compliant crawler must honor (one of the §4 blocked-crawl flavors).
fn robots_txt(seed: u64, domain: &str) -> Option<Response> {
    let u = rng::unit(seed, "robots", domain);
    if u > 0.75 {
        return None; // no robots.txt → 404
    }
    let body = if u < 0.002 {
        "User-agent: *\nDisallow: /\n".to_string()
    } else if u < 0.20 {
        "User-agent: *\nCrawl-delay: 2\nDisallow: /admin\nDisallow: /cart\n".to_string()
    } else {
        format!(
            "# robots.txt for {domain}\nUser-agent: *\nDisallow: /admin\n\
             Disallow: /internal\nSitemap: https://{domain}/sitemap.xml\n"
        )
    };
    Some(Response {
        status: aipan_net::http::Status::OK,
        content_type: aipan_net::http::ContentType::Plain,
        body: body.into(),
        location: None,
    })
}

fn standard_header() -> String {
    "<a href=\"/\">Home</a> <a href=\"/about\">About</a> \
     <a href=\"/products\">Products</a> <a href=\"/careers\">Careers</a>"
        .to_string()
}

fn footer_links(privacy_links: &[(&str, &str)]) -> String {
    let mut f = String::from("<a href=\"/terms\">Terms of Use</a> ");
    for (text, href) in privacy_links {
        f.push_str(&format!("<a href=\"{href}\">{text}</a> "));
    }
    f.push_str("<a href=\"/accessibility\">Accessibility</a> <a href=\"/sitemap\">Sitemap</a>");
    f
}

fn marketing(company: &Company) -> String {
    format!(
        "<h1>{0}</h1>\
         <p>Welcome to {0}, a leader in the {1} space. Explore what makes our team \
         different and how we deliver for our stakeholders every day.</p>\
         <p>Founded on a commitment to excellence, {0} operates across multiple markets \
         and is proud of the communities we serve.</p>",
        company.name,
        company.sector.name().to_lowercase()
    )
}

/// Build the site for one company under its fate. Returns the site and the
/// path of the page actually containing the policy.
fn build_site(
    seed: u64,
    company: &Company,
    truth: &GroundTruth,
    style: &PolicyStyle,
    fate: CompanyFate,
) -> StaticSite {
    let domain = &company.domain;
    let layout = SiteLayout::assign(seed, domain);
    let policy_html = render_policy(truth, style, &company.name, seed);
    let extra_choices_link = rng::unit(seed, "extra-link", domain) < 0.40;
    let california_link = rng::unit(seed, "ca-link", domain) < 0.30;

    let policy_page = |body: &str| {
        page(
            &format!("Privacy Policy | {}", company.name),
            &standard_header(),
            body,
            &footer_links(&[("Privacy Policy", layout.policy_path())]),
        )
    };

    match fate {
        CompanyFate::Normal => {
            let mut privacy_links: Vec<(&str, &str)> = Vec::new();
            let policy_path = layout.policy_path();
            let footer_label = match layout {
                SiteLayout::Custom => "Privacy Notice",
                SiteLayout::Center => "Privacy Center",
                _ => "Privacy Policy",
            };
            let footer_target = match layout {
                SiteLayout::Center => "/privacy",
                _ => policy_path,
            };
            privacy_links.push((footer_label, footer_target));
            if extra_choices_link {
                privacy_links.push(("Your Privacy Choices", "/your-privacy-choices"));
            }
            if california_link {
                privacy_links.push(("California Privacy Notice", "/california-privacy"));
            }

            let mut site = StaticSite::new().page(
                "/",
                page(
                    &company.name,
                    &standard_header(),
                    &marketing(company),
                    &footer_links(&privacy_links),
                ),
            );
            site = site.page(policy_path, policy_page(&policy_html));
            match layout {
                SiteLayout::Both => {
                    site = site.page(
                        "/privacy",
                        Response::redirect(Status::MOVED_PERMANENTLY, "/privacy-policy"),
                    );
                }
                SiteLayout::Center => {
                    // The center page links to the real policy from its top
                    // navigation (the "dedicated privacy home/center page"
                    // case of §3.1).
                    let center = page(
                        &format!("Privacy Center | {}", company.name),
                        "<a href=\"/privacy/policy\">Privacy Policy</a> \
                         <a href=\"/privacy/faqs\">Privacy FAQs</a> \
                         <a href=\"/privacy/choices\">Privacy Choices</a>",
                        "<h1>Privacy Center</h1><p>Learn how we approach responsible \
                         information handling, and find the documents that govern our \
                         practices.</p>",
                        &footer_links(&[("Privacy Center", "/privacy")]),
                    );
                    site = site.page("/privacy", center);
                    site = site.page(
                        "/privacy/faqs",
                        page(
                            &format!("Privacy FAQs | {}", company.name),
                            &standard_header(),
                            "<h1>Privacy FAQs</h1><p>Answers to common questions about \
                             our approach are collected here for convenience.</p>",
                            &footer_links(&[("Privacy Center", "/privacy")]),
                        ),
                    );
                    site = site.page(
                        "/privacy/choices",
                        page(
                            &format!("Privacy Choices | {}", company.name),
                            &standard_header(),
                            "<h1>Privacy Choices</h1><p>Controls available to you are \
                             described in the policy document.</p>",
                            &footer_links(&[("Privacy Center", "/privacy")]),
                        ),
                    );
                }
                _ => {}
            }
            if california_link {
                site = site.page(
                    "/california-privacy",
                    page(
                        &format!("California Privacy Notice | {}", company.name),
                        &standard_header(),
                        "<h1>California Privacy Notice</h1><p>This supplemental notice \
                         applies to residents of California and describes rights available \
                         under state law. The main policy document governs where this \
                         notice is silent.</p>",
                        &footer_links(&[("Privacy Policy", policy_path)]),
                    ),
                );
            }
            if extra_choices_link {
                site = site.page(
                    "/your-privacy-choices",
                    page(
                        &format!("Your Privacy Choices | {}", company.name),
                        &format!("<a href=\"{policy_path}\">Privacy Policy</a>"),
                        "<h1>Your Privacy Choices</h1><p>This page summarizes the controls \
                         available to you. The full policy document governs.</p>",
                        &footer_links(&[("Privacy Policy", policy_path)]),
                    ),
                );
            }
            site
        }
        CompanyFate::HiddenLegalLink => {
            // Footer says "Legal Notices"; policy lives at a path without
            // the word "privacy".
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        &footer_links(&[("Legal Notices", "/legal-notices")]),
                    ),
                )
                .page(
                    "/legal-notices",
                    page(
                        &format!("Legal Notices | {}", company.name),
                        &standard_header(),
                        &policy_html,
                        &footer_links(&[("Legal Notices", "/legal-notices")]),
                    ),
                );
            site
        }
        CompanyFate::JsActionLink => {
            let footer = "<a href=\"/terms\">Terms of Use</a> \
                          <a href=\"javascript:openPrivacyModal()\">Privacy Policy</a> \
                          <a href=\"/accessibility\">Accessibility</a>";
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        footer,
                    ),
                )
                .page("/modal/privacy-content", policy_page(&policy_html));
            site
        }
        CompanyFate::ConsentBoxLink => {
            let main = format!(
                "{}<details class=\"consent\"><summary>We value your privacy</summary>\
                 <p>Manage preferences or read the <a href=\"/legal/privacy-statement\">\
                 Privacy Statement</a>.</p></details>",
                marketing(company)
            );
            let site = StaticSite::new()
                .page(
                    "/",
                    page(&company.name, &standard_header(), &main, &footer_links(&[])),
                )
                .page("/legal/privacy-statement", policy_page(&policy_html));
            site
        }
        CompanyFate::PdfPolicy => {
            let pdf_body = format!("%PDF-1.7 privacy policy of {}", company.name);
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        &footer_links(&[("Privacy Policy", "/docs/privacy-policy.pdf")]),
                    ),
                )
                .page("/docs/privacy-policy.pdf", Response::pdf(pdf_body));
            site
        }
        CompanyFate::NonEnglish => {
            let german = render_policy_german(&company.name);
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        "<a href=\"/\">Startseite</a> <a href=\"/ueber-uns\">\u{dc}ber uns</a>",
                        &format!(
                            "<h1>{0}</h1><p>Willkommen bei {0}. Wir freuen uns \u{fc}ber Ihren \
                             Besuch und stehen Ihnen gerne zur Verf\u{fc}gung.</p>",
                            company.name
                        ),
                        &footer_links(&[("Privacy Policy", "/privacy")]),
                    ),
                )
                .page(
                    "/privacy",
                    page(
                        &format!("Datenschutz | {}", company.name),
                        "",
                        &german,
                        &footer_links(&[("Privacy Policy", "/privacy")]),
                    ),
                );
            site
        }
        CompanyFate::MixedLanguage => {
            let mixed = render_policy_mixed(truth, style, &company.name, seed);
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        &footer_links(&[("Privacy Policy", "/privacy-policy")]),
                    ),
                )
                .page("/privacy-policy", policy_page(&mixed));
            site
        }
        CompanyFate::JsLoadedPolicy => {
            let shell = "<div id=\"root\"></div>\
                         <script src=\"/static/bundle.js\"></script>\
                         <script>window.__APP__ = { page: 'privacy' };</script>";
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        &footer_links(&[("Privacy Policy", "/privacy-policy")]),
                    ),
                )
                .page("/privacy-policy", policy_page(shell));
            site
        }
        CompanyFate::ImagePolicy => {
            let main = "<h1>Privacy Policy</h1>\
                        <img src=\"/assets/privacy-policy.png\" \
                        alt=\"Scanned privacy policy document\">";
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        &footer_links(&[("Privacy Policy", "/privacy-policy")]),
                    ),
                )
                .page("/privacy-policy", policy_page(main));
            site
        }
        CompanyFate::ExpandablePolicy => {
            let main = format!(
                "<h1>Privacy Policy</h1>\
                 <details><summary>Read our full privacy policy</summary>{policy_html}</details>"
            );
            let site = StaticSite::new()
                .page(
                    "/",
                    page(
                        &company.name,
                        &standard_header(),
                        &marketing(company),
                        &footer_links(&[("Privacy Policy", "/privacy-policy")]),
                    ),
                )
                .page("/privacy-policy", policy_page(&main));
            site
        }
        // Callers route NoPolicy to `build_no_policy_site` directly; fall
        // back to it here too rather than aborting.
        CompanyFate::NoPolicy => build_no_policy_site(company),
    }
}

fn build_no_policy_site(company: &Company) -> StaticSite {
    StaticSite::new().page(
        "/",
        page(
            &company.name,
            &standard_header(),
            &marketing(company),
            &footer_links(&[]),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aipan_net::fault::FaultInjector;
    use aipan_net::{Client, Url};

    fn small_world() -> World {
        build_world(WorldConfig::small(11, 300))
    }

    #[test]
    fn world_registers_all_unique_domains() {
        let w = small_world();
        assert_eq!(w.internet.len(), w.universe.unique_domains().len());
    }

    #[test]
    fn fates_mostly_normal() {
        let w = small_world();
        let hist = w.fate_histogram();
        let normal = hist.get(&CompanyFate::Normal).copied().unwrap_or(0);
        let total: usize = hist.values().sum();
        let rate = normal as f64 / total as f64;
        assert!((0.82..0.97).contains(&rate), "normal rate {rate}");
    }

    #[test]
    fn normal_site_serves_policy_with_planted_surfaces() {
        let w = small_world();
        let client = Client::new(
            w.internet.clone(),
            FaultInjector::new(0, FaultConfig::none()),
        );
        let (domain, _) = w
            .fates
            .iter()
            .find(|(_, f)| **f == CompanyFate::Normal)
            .expect("some normal site");
        let path = w.policy_paths.get(domain).unwrap();
        let url = Url::parse(&format!("https://{domain}{path}")).unwrap();
        let res = client.fetch(&url).unwrap();
        assert!(res.response.status.is_success());
        let body = res.response.body_text().to_lowercase();
        let truth = w.truth(domain).unwrap();
        for m in &truth.types {
            assert!(
                body.contains(&m.surface.to_lowercase()),
                "missing {}",
                m.surface
            );
        }
    }

    #[test]
    fn no_policy_sites_404_standard_paths() {
        let w = small_world();
        let client = Client::new(
            w.internet.clone(),
            FaultInjector::new(0, FaultConfig::none()),
        );
        if let Some((domain, _)) = w.fates.iter().find(|(_, f)| **f == CompanyFate::NoPolicy) {
            for path in ["/privacy-policy", "/privacy"] {
                let url = Url::parse(&format!("https://{domain}{path}")).unwrap();
                let res = client.fetch(&url).unwrap();
                assert_eq!(res.response.status, Status::NOT_FOUND);
            }
            assert!(w.truth(domain).is_none());
        }
    }

    #[test]
    fn homepage_privacy_link_presence_by_fate() {
        let w = small_world();
        let client = Client::new(
            w.internet.clone(),
            FaultInjector::new(0, FaultConfig::none()),
        );
        for (domain, fate) in &w.fates {
            let url = Url::parse(&format!("https://{domain}/")).unwrap();
            let res = client.fetch(&url).unwrap();
            let doc = aipan_html::extract(&res.response.body_text());
            let has_privacy_link = doc.links_containing("privacy").next().is_some();
            match fate {
                CompanyFate::Normal
                | CompanyFate::PdfPolicy
                | CompanyFate::NonEnglish
                | CompanyFate::MixedLanguage
                | CompanyFate::JsLoadedPolicy
                | CompanyFate::ImagePolicy
                | CompanyFate::ExpandablePolicy => {
                    assert!(has_privacy_link, "{domain} ({fate:?}) should link privacy");
                }
                CompanyFate::NoPolicy | CompanyFate::HiddenLegalLink => {
                    assert!(
                        !has_privacy_link,
                        "{domain} ({fate:?}) must not link privacy"
                    );
                }
                // JsActionLink has a privacy link but it's a javascript: URL;
                // ConsentBoxLink's link is hidden in collapsed details.
                CompanyFate::JsActionLink => {}
                CompanyFate::ConsentBoxLink => {
                    assert!(
                        !has_privacy_link,
                        "{domain}: consent-box link must be hidden"
                    );
                }
            }
        }
    }

    #[test]
    fn layout_rates_give_path_existence_near_paper() {
        let w = build_world(WorldConfig::small(13, 1500));
        let client = Client::new(
            w.internet.clone(),
            FaultInjector::new(0, FaultConfig::none()),
        );
        let mut pp = 0usize;
        let mut p = 0usize;
        let domains: Vec<String> = w.fates.keys().cloned().collect();
        for domain in &domains {
            for (path, counter) in [("/privacy-policy", &mut pp), ("/privacy", &mut p)] {
                let url = Url::parse(&format!("https://{domain}{path}")).unwrap();
                if let Ok(res) = client.fetch(&url) {
                    if res.response.status.is_success() && res.response.status != Status::FORBIDDEN
                    {
                        *counter += 1;
                    }
                }
            }
        }
        let pp_rate = pp as f64 / domains.len() as f64;
        let p_rate = p as f64 / domains.len() as f64;
        // Paper: 54.5% and 48.6%.
        assert!(
            (pp_rate - 0.545).abs() < 0.08,
            "/privacy-policy rate {pp_rate}"
        );
        assert!((p_rate - 0.486).abs() < 0.08, "/privacy rate {p_rate}");
    }

    #[test]
    fn lazy_world_serves_byte_identical_pages() {
        let eager = build_world(WorldConfig::small(17, 200));
        let lazy = build_world_lazy(WorldConfig::small(17, 200));
        assert!(lazy.is_lazy() && !eager.is_lazy());
        assert_eq!(eager.fates, lazy.fates);
        assert_eq!(eager.truths, lazy.truths);
        assert_eq!(eager.policy_paths, lazy.policy_paths);
        assert_eq!(eager.internet.len(), lazy.internet.len());
        // Nothing is materialized until fetched.
        assert_eq!(lazy.site_memory.current_bytes(), 0);

        let fetch = |world: &World, domain: &str, path: &str| {
            let host = world.internet.resolve(domain).unwrap();
            let url = Url::parse(&format!("https://{domain}{path}")).unwrap();
            host.handle(&aipan_net::Request::get(url))
        };
        for (domain, _) in eager.fates.iter().take(40) {
            let paths: Vec<String> = {
                let mut p = vec!["/".to_string(), "/robots.txt".to_string()];
                if let Some(policy) = eager.policy_paths.get(domain) {
                    p.push(policy.clone());
                }
                p
            };
            for path in &paths {
                let a = fetch(&eager, domain, path);
                let b = fetch(&lazy, domain, path);
                assert_eq!(a, b, "{domain}{path} differs between eager and lazy");
            }
        }
        assert!(lazy.site_memory.current_bytes() > 0);
        assert!(lazy.site_memory.peak_bytes() >= lazy.site_memory.current_bytes());
    }

    #[test]
    fn released_sites_rematerialize_identically_and_free_memory() {
        let lazy = build_world_lazy(WorldConfig::small(23, 120));
        let (domain, host) = lazy.lazy_hosts.iter().next().unwrap();
        let url = Url::parse(&format!("https://{domain}/")).unwrap();
        let req = aipan_net::Request::get(url);
        let first = host.handle(&req);
        assert!(host.is_built());
        let resident = lazy.site_memory.current_bytes();
        assert!(resident > 0);

        lazy.release_site(domain);
        assert!(!host.is_built());
        assert_eq!(lazy.site_memory.current_bytes(), 0);

        let again = host.handle(&req);
        assert_eq!(first, again, "rematerialized site must be byte-identical");
        assert_eq!(lazy.site_memory.current_bytes(), resident);
        // Peak never decreases.
        assert!(lazy.site_memory.peak_bytes() >= resident);
    }

    #[test]
    fn eager_world_gauge_records_total_universe_bytes() {
        let eager = build_world(WorldConfig::small(29, 80));
        let lazy = build_world_lazy(WorldConfig::small(29, 80));
        // Materialize everything on the lazy side: totals must agree.
        for (domain, host) in &lazy.lazy_hosts {
            let url = Url::parse(&format!("https://{domain}/")).unwrap();
            host.handle(&aipan_net::Request::get(url));
        }
        assert_eq!(
            eager.site_memory.current_bytes(),
            lazy.site_memory.current_bytes()
        );
    }

    #[test]
    fn deterministic_world() {
        let a = build_world(WorldConfig::small(21, 100));
        let b = build_world(WorldConfig::small(21, 100));
        assert_eq!(a.fates, b.fates);
        assert_eq!(a.policy_paths, b.policy_paths);
        for (d, t) in &a.truths {
            assert_eq!(Some(t), b.truths.get(d));
        }
    }

    #[test]
    fn expandable_policy_hides_text_from_extractor() {
        let w = build_world(WorldConfig::small(31, 2000));
        let client = Client::new(
            w.internet.clone(),
            FaultInjector::new(0, FaultConfig::none()),
        );
        let found = w
            .fates
            .iter()
            .find(|(_, f)| **f == CompanyFate::ExpandablePolicy);
        if let Some((domain, _)) = found {
            let path = w.policy_paths.get(domain).unwrap();
            let url = Url::parse(&format!("https://{domain}{path}")).unwrap();
            let res = client.fetch(&url).unwrap();
            let doc = aipan_html::extract(&res.response.body_text());
            assert!(
                doc.word_count() < 80,
                "expandable policy leaked {} words",
                doc.word_count()
            );
        }
    }
}
