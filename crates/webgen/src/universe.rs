//! The synthetic company universe: a Russell-3000-like index constituent
//! list with tickers, names, S&P sectors, and Internet domains.
//!
//! Matches the paper's acquisition numbers (§3.1): 2916 constituents whose
//! domains deduplicate to 2892 (duplicate tickers of one issuer — the
//! GOOG/GOOGL situation — share a domain). Three real-world companies the
//! paper names for its retention extremes (arescre.com, pg.com, bms.com)
//! are planted so the §5 retention analysis can reference them.

use crate::rng;
use aipan_taxonomy::Sector;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One index constituent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Company {
    /// Ticker symbol (unique).
    pub ticker: String,
    /// Company name.
    pub name: String,
    /// S&P sector.
    pub sector: Sector,
    /// Internet domain (shared between duplicate tickers of one issuer).
    pub domain: String,
}

/// The full constituent universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Universe {
    /// Constituents in index order.
    pub companies: Vec<Company>,
}

/// Number of constituents, as in the paper (Vanguard Russell 3000 ETF,
/// 2024-03-31).
pub const UNIVERSE_SIZE: usize = 2916;
/// Unique domains after deduplication, as in the paper.
pub const UNIQUE_DOMAINS: usize = 2892;

const NAME_HEADS: &[&str] = &[
    "Apex",
    "Blue",
    "Cedar",
    "Delta",
    "Echo",
    "First",
    "Global",
    "Harbor",
    "Iron",
    "Jade",
    "Keystone",
    "Lake",
    "Meridian",
    "North",
    "Omni",
    "Pioneer",
    "Quantum",
    "River",
    "Summit",
    "Titan",
    "Union",
    "Vertex",
    "West",
    "Zenith",
    "Atlas",
    "Beacon",
    "Crown",
    "Dynamo",
    "Evergreen",
    "Frontier",
    "Granite",
    "Horizon",
    "Ivory",
    "Juniper",
    "Kinetic",
    "Liberty",
    "Monarch",
    "Nova",
    "Orchard",
    "Paragon",
    "Redwood",
    "Sterling",
    "Trident",
    "Vanguard",
    "Willow",
    "Amber",
    "Bolt",
    "Cascade",
    "Drift",
    "Ember",
    "Falcon",
    "Grove",
    "Helix",
    "Inlet",
    "Jet",
    "Krypton",
    "Lumen",
    "Mosaic",
    "Nimbus",
    "Onyx",
    "Pinnacle",
    "Quarry",
    "Ridge",
    "Slate",
    "Terra",
    "Ultra",
    "Vista",
    "Wave",
    "Xenon",
    "Yield",
    "Zephyr",
];

const NAME_CORES: &[&str] = &[
    "Tech",
    "Health",
    "Energy",
    "Financial",
    "Consumer",
    "Industrial",
    "Material",
    "Media",
    "Realty",
    "Utility",
    "Data",
    "Micro",
    "Bio",
    "Pharma",
    "Retail",
    "Logistics",
    "Capital",
    "Grid",
    "Steel",
    "Foods",
    "Brands",
    "Systems",
    "Networks",
    "Dynamics",
    "Analytica",
    "Therapeutics",
    "Diagnostics",
    "Petroleum",
    "Mining",
    "Properties",
    "Bancorp",
    "Insurance",
    "Aerospace",
    "Motors",
    "Chemical",
    "Paper",
    "Water",
    "Power",
    "Telecom",
    "Broadcast",
    "Software",
    "Semiconductor",
    "Robotics",
    "Marine",
    "Rail",
    "Apparel",
    "Hospitality",
    "Gaming",
    "Fitness",
    "Education",
];

const NAME_TAILS: &[&str] = &[
    "Inc",
    "Corp",
    "Group",
    "Holdings",
    "Partners",
    "Industries",
    "Enterprises",
    "Company",
    "International",
    "Solutions",
    "Labs",
    "Trust",
    "PLC",
    "Co",
];

impl Universe {
    /// Generate the standard universe for `seed`.
    pub fn generate(seed: u64) -> Universe {
        Universe::generate_sized(seed, UNIVERSE_SIZE)
    }

    /// Generate a smaller universe (for tests/benches). `n >= 8`.
    ///
    /// Duplicate-share pairs scale proportionally so that
    /// `unique_domains() ≈ n - 24·n/2916`.
    pub fn generate_sized(seed: u64, n: usize) -> Universe {
        assert!(n >= 8, "universe too small");
        let mut rng = rng::stream(seed, "universe", "companies");
        let mut used_names: HashMap<String, u32> = HashMap::new();
        let mut companies: Vec<Company> = Vec::with_capacity(n);

        // Sector quota allocation by share, largest remainder.
        let quotas = sector_quotas(n);

        // Planted real-name companies (retention-extreme references in §5).
        let planted: &[(&str, &str, Sector, &str)] = &[
            (
                "ACRE",
                "Ares Commercial Real Estate",
                Sector::RealEstate,
                "arescre.com",
            ),
            ("PG", "Procter & Gamble", Sector::ConsumerStaples, "pg.com"),
            ("BMY", "Bristol-Myers Squibb", Sector::HealthCare, "bms.com"),
        ];
        let mut remaining = quotas;
        for (ticker, name, sector, domain) in planted {
            companies.push(Company {
                ticker: ticker.to_string(),
                name: name.to_string(),
                sector: *sector,
                domain: domain.to_string(),
            });
            let idx = sector.index();
            if let Some(slot) = remaining.get_mut(idx) {
                *slot = slot.saturating_sub(1);
            }
        }

        // Duplicate-ticker issuers: 24 per 2916 constituents.
        let dup_pairs = (n * (UNIVERSE_SIZE - UNIQUE_DOMAINS) / UNIVERSE_SIZE.max(1))
            .max(if n >= 200 { 1 } else { 0 });

        for (sector_idx, &quota) in remaining.iter().enumerate() {
            let Some(sector) = Sector::ALL.get(sector_idx).copied() else {
                continue;
            };
            for _ in 0..quota {
                if companies.len() >= n {
                    break;
                }
                let (name, domain, ticker) = fresh_company(&mut rng, &mut used_names);
                companies.push(Company {
                    ticker,
                    name,
                    sector,
                    domain,
                });
            }
        }
        // Top up (rounding slack) with random sectors.
        while companies.len() < n {
            // Same draw as `choose`, but indexing a non-empty const array
            // cannot fail.
            let sector = Sector::ALL[rng.gen_range(0..Sector::ALL.len())];
            let (name, domain, ticker) = fresh_company(&mut rng, &mut used_names);
            companies.push(Company {
                ticker,
                name,
                sector,
                domain,
            });
        }

        // Create duplicate-ticker share classes: clone an existing company
        // under a new ticker, same domain (replacing the tail entries so the
        // total count stays n).
        for d in 0..dup_pairs {
            let src_idx = 3 + d; // skip planted
            if src_idx >= companies.len() || companies.len() < 2 {
                break;
            }
            let src = companies[src_idx].clone();
            let tail = companies.len() - 1 - d;
            if tail <= src_idx {
                break;
            }
            if let Some(slot) = companies.get_mut(tail) {
                *slot = Company {
                    ticker: format!("{}.B", src.ticker),
                    name: format!("{} Class B", src.name),
                    sector: src.sector,
                    domain: src.domain.clone(),
                };
            }
        }

        // Deterministic shuffle so sectors are interleaved like a real index
        // listing.
        companies.shuffle(&mut rng);
        Universe { companies }
    }

    /// Unique domains in the universe, sorted.
    pub fn unique_domains(&self) -> Vec<&Company> {
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<&Company> = Vec::new();
        let mut sorted: Vec<&Company> = self.companies.iter().collect();
        sorted.sort_by(|a, b| a.domain.cmp(&b.domain).then(a.ticker.cmp(&b.ticker)));
        for c in sorted {
            if seen.insert(c.domain.as_str()) {
                out.push(c);
            }
        }
        out
    }

    /// Number of constituents.
    pub fn len(&self) -> usize {
        self.companies.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.companies.is_empty()
    }

    /// Look up a company by domain (the first listed share class).
    pub fn by_domain(&self, domain: &str) -> Option<&Company> {
        self.companies.iter().find(|c| c.domain == domain)
    }
}

/// Sector quotas by universe share, largest-remainder rounding.
fn sector_quotas(n: usize) -> [usize; 11] {
    let mut quotas = [0usize; 11];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(11);
    let mut assigned = 0usize;
    for (i, s) in Sector::ALL.iter().enumerate() {
        let exact = s.universe_share() * n as f64;
        let floor = exact.floor() as usize;
        if let Some(slot) = quotas.get_mut(i) {
            *slot = floor;
        }
        assigned += floor;
        remainders.push((i, exact - exact.floor()));
    }
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (i, _) in remainders.into_iter().take(n.saturating_sub(assigned)) {
        if let Some(slot) = quotas.get_mut(i) {
            *slot += 1;
        }
    }
    quotas
}

fn fresh_company(rng: &mut impl Rng, used: &mut HashMap<String, u32>) -> (String, String, String) {
    loop {
        let head = NAME_HEADS[rng.gen_range(0..NAME_HEADS.len())];
        let core = NAME_CORES[rng.gen_range(0..NAME_CORES.len())];
        let tail = NAME_TAILS[rng.gen_range(0..NAME_TAILS.len())];
        let base = format!("{head} {core}");
        let count = used.entry(base.clone()).or_insert(0);
        *count += 1;
        let (name, slug) = if *count == 1 {
            (
                format!("{base} {tail}"),
                format!("{}{}", head.to_lowercase(), core.to_lowercase()),
            )
        } else if *count <= 3 {
            (
                format!("{base} {tail} {count}"),
                format!("{}{}{}", head.to_lowercase(), core.to_lowercase(), count),
            )
        } else {
            continue;
        };
        let domain = format!("{slug}.com");
        let ticker = make_ticker(&name, used);
        return (name, domain, ticker);
    }
}

fn make_ticker(name: &str, used: &mut HashMap<String, u32>) -> String {
    let letters: String = name
        .chars()
        .filter(|c| c.is_ascii_uppercase())
        .take(4)
        .collect();
    let base = if letters.len() >= 2 {
        letters
    } else {
        "XX".to_string()
    };
    let key = format!("ticker:{base}");
    let count = used.entry(key).or_insert(0);
    *count += 1;
    if *count == 1 {
        base
    } else {
        format!("{base}{count}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_universe_counts_match_paper() {
        let u = Universe::generate(42);
        assert_eq!(u.len(), UNIVERSE_SIZE);
        let unique = u.unique_domains().len();
        assert_eq!(unique, UNIQUE_DOMAINS, "unique domains {unique}");
    }

    #[test]
    fn deterministic_across_calls() {
        let a = Universe::generate_sized(7, 300);
        let b = Universe::generate_sized(7, 300);
        assert_eq!(a.companies, b.companies);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Universe::generate_sized(1, 300);
        let b = Universe::generate_sized(2, 300);
        assert_ne!(a.companies, b.companies);
    }

    #[test]
    fn tickers_unique() {
        let u = Universe::generate(3);
        let mut seen = std::collections::HashSet::new();
        for c in &u.companies {
            assert!(seen.insert(&c.ticker), "duplicate ticker {}", c.ticker);
        }
    }

    #[test]
    fn sector_proportions_approximate_shares() {
        let u = Universe::generate(5);
        for s in Sector::ALL {
            let count = u.companies.iter().filter(|c| c.sector == s).count();
            let share = count as f64 / u.len() as f64;
            assert!(
                (share - s.universe_share()).abs() < 0.02,
                "{s}: {share} vs {}",
                s.universe_share()
            );
        }
    }

    #[test]
    fn planted_companies_present() {
        let u = Universe::generate(11);
        for d in ["arescre.com", "pg.com", "bms.com"] {
            assert!(u.by_domain(d).is_some(), "missing planted {d}");
        }
        assert_eq!(
            u.by_domain("pg.com").unwrap().sector,
            Sector::ConsumerStaples
        );
    }

    #[test]
    fn duplicate_tickers_share_domain_and_sector() {
        let u = Universe::generate(9);
        let mut by_domain: HashMap<&str, Vec<&Company>> = HashMap::new();
        for c in &u.companies {
            by_domain.entry(&c.domain).or_default().push(c);
        }
        let dups: Vec<_> = by_domain.values().filter(|v| v.len() > 1).collect();
        assert_eq!(dups.len(), UNIVERSE_SIZE - UNIQUE_DOMAINS);
        for group in dups {
            let sector = group[0].sector;
            assert!(group.iter().all(|c| c.sector == sector));
        }
    }

    #[test]
    fn small_universe_generation() {
        let u = Universe::generate_sized(1, 50);
        assert_eq!(u.len(), 50);
        assert!(u.unique_domains().len() <= 50);
    }
}
