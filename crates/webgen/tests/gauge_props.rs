//! Properties of the site-memory gauge the streaming supervisor's
//! backpressure decisions are made against: `current` never exceeds
//! `peak`, releases saturate at zero instead of wrapping, and balanced
//! add/sub sequences always return to zero — under any interleaving of
//! operations, including erroneous double releases.

use aipan_webgen::MemoryGauge;
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn current_never_exceeds_peak_and_never_wraps() {
    let mut gen = Gen::from_name("gauge_current_vs_peak");
    for _case in 0..64usize {
        let gauge = MemoryGauge::default();
        let ops = Strategy::generate(&(1usize..40), &mut gen);
        for _ in 0..ops {
            let bytes = Strategy::generate(&(0usize..10_000), &mut gen);
            // A third of the operations are releases — over-releasing on
            // purpose, since callers may release a site twice.
            if Strategy::generate(&(0u64..3), &mut gen) == 0 {
                gauge.sub(bytes);
            } else {
                gauge.add(bytes);
            }
            assert!(
                gauge.current_bytes() <= gauge.peak_bytes(),
                "current {} exceeded peak {}",
                gauge.current_bytes(),
                gauge.peak_bytes()
            );
            assert!(
                gauge.current_bytes() < usize::MAX / 2,
                "gauge wrapped: current {}",
                gauge.current_bytes()
            );
        }
    }
}

#[test]
fn double_release_saturates_at_zero() {
    let gauge = MemoryGauge::default();
    gauge.add(100);
    gauge.sub(100);
    gauge.sub(100); // erroneous second release of the same site
    assert_eq!(gauge.current_bytes(), 0);
    assert_eq!(gauge.peak_bytes(), 100);
    // The gauge still works after saturating.
    gauge.add(40);
    assert_eq!(gauge.current_bytes(), 40);
    assert_eq!(gauge.peak_bytes(), 100);
}

#[test]
fn balanced_sequences_return_to_zero() {
    let mut gen = Gen::from_name("gauge_balanced");
    for _case in 0..32usize {
        let gauge = MemoryGauge::default();
        let sites = Strategy::generate(&(1usize..20), &mut gen);
        let sizes: Vec<usize> = (0..sites)
            .map(|_| Strategy::generate(&(1usize..5_000), &mut gen))
            .collect();
        for &s in &sizes {
            gauge.add(s);
        }
        let total: usize = sizes.iter().sum();
        assert_eq!(gauge.peak_bytes(), total, "all sites resident at once");
        for &s in &sizes {
            gauge.sub(s);
        }
        assert_eq!(gauge.current_bytes(), 0, "balanced release must zero out");
        assert_eq!(gauge.peak_bytes(), total, "peak is a high-water mark");
    }
}

#[test]
fn concurrent_over_release_keeps_invariants() {
    let gauge = Arc::new(MemoryGauge::default());
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let gauge = Arc::clone(&gauge);
            std::thread::spawn(move || {
                for i in 0..1_000usize {
                    gauge.add(i % 97);
                    gauge.sub(i % 101); // deliberately unbalanced
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("gauge thread");
    }
    assert!(gauge.current_bytes() <= gauge.peak_bytes());
    assert!(gauge.current_bytes() < usize::MAX / 2, "gauge wrapped");
}
