//! Build and export an AIPAN-3k-style dataset as JSON — the paper's released
//! artifact — then reload it and run the analysis tables from the file, as a
//! downstream consumer would.
//!
//! Run with: `cargo run --release --example dataset_export [out.json]`

use aipan::analysis::{insights::Insights, tables};
use aipan::core::{run_pipeline, Dataset, PipelineConfig};
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join("aipan-dataset.json")
            .display()
            .to_string()
    });

    let world = build_world(WorldConfig::small(42, 500));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let json = run.dataset.to_json().expect("serialize dataset");
    std::fs::write(&out_path, &json).expect("write dataset");
    println!(
        "exported {} policies ({} bytes) to {out_path}",
        run.dataset.len(),
        json.len()
    );

    // A downstream consumer: reload and analyze without touching the
    // pipeline at all.
    let reloaded = Dataset::from_json(&std::fs::read_to_string(&out_path).expect("read back"))
        .expect("parse dataset");
    assert_eq!(reloaded.len(), run.dataset.len());
    let t1 = tables::table1(&reloaded, 3);
    println!(
        "reloaded: {} data-type annotations, {} purpose annotations",
        t1.types_total, t1.purposes_total
    );
    let insights = Insights::compute(&reloaded);
    println!(
        "retention median from file: {} days; {} data-for-sale companies",
        insights.retention_median_days,
        insights.data_for_sale.len()
    );
}
