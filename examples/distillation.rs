//! Knowledge distillation — the paper's §6 future work ("training offline
//! LLMs to replicate the chatbot-generated annotations") with a classical
//! student: train naive-Bayes models on chatbot-labeled lines and measure
//! how well they replicate the teacher on held-out companies.
//!
//! Run with: `cargo run --release --example distillation [n_policies]`

use aipan::chatbot::SimulatedChatbot;
use aipan::ml::train::split_by_domain;
use aipan::ml::{build_aspect_corpus, build_rights_corpus, eval, Featurizer};
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let world = build_world(WorldConfig::small(42, n.max(50)));
    let teacher = SimulatedChatbot::gpt4(42);
    let featurizer = Featurizer::default();

    println!("== task 1: line → aspect segmentation (9 classes) ==");
    let corpus = build_aspect_corpus(&world, &teacher, n);
    let (train, test) = split_by_domain(&corpus);
    println!(
        "corpus: {} labeled lines from teacher; train {} / test {} (split by company)",
        corpus.len(),
        train.len(),
        test.len()
    );
    let student = eval::train_student(&featurizer, &train);
    let report = eval::evaluate(&student, &featurizer, &test);
    print!("{}", report.render());

    println!("\n== task 2: line → user-rights label (12 classes incl. none) ==");
    let corpus = build_rights_corpus(&world, &teacher, n);
    let (train, test) = split_by_domain(&corpus);
    println!(
        "corpus: {} labeled lines; train {} / test {}",
        corpus.len(),
        train.len(),
        test.len()
    );
    let student = eval::train_student(&featurizer, &train);
    let report = eval::evaluate(&student, &featurizer, &test);
    print!("{}", report.render());

    println!(
        "\nA student this cheap cannot annotate open-vocabulary data types, but for \
         segmentation and closed-label tasks it can replace most chatbot calls — the \
         deployment the paper's future work anticipates."
    );
}
