//! Model shootout — the §6 experiment as a standalone tool: compare chatbot
//! profiles (GPT-4-Turbo, Llama-3.1, GPT-3.5-Turbo) on extraction precision
//! against planted ground truth, including the negated-context failure mode
//! the paper observed in Llama-3.1.
//!
//! Run with: `cargo run --release --example model_shootout [n_policies]`

use aipan::analysis::validation::ModelComparison;
use aipan::chatbot::ModelProfile;
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let world = build_world(WorldConfig::small(42, 800));
    let profiles = vec![
        ModelProfile::gpt4_turbo(),
        ModelProfile::llama31(),
        ModelProfile::gpt35_turbo(),
        ModelProfile::oracle(),
    ];
    let cmp = ModelComparison::run(&world, &profiles, n, 42);
    print!("{}", cmp.render());

    println!("\nerror-profile parameters driving the differences:");
    println!(
        "  {:<24} {:>7} {:>9} {:>9} {:>12}",
        "model", "recall", "negation", "spurious", "instruction"
    );
    for p in &profiles {
        println!(
            "  {:<24} {:>7.2} {:>9.2} {:>9.3} {:>12.2}",
            p.id, p.extraction_recall, p.negation_error, p.spurious_rate, p.instruction_following
        );
    }
}
