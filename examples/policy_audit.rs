//! Single-company privacy audit: crawl one domain of the simulated web,
//! annotate its policy, and print a "privacy nutrition label" — the kind of
//! downstream application the paper's dataset enables.
//!
//! Run with: `cargo run --release --example policy_audit [domain]`
//! (defaults to a deterministic pick; try `pg.com` or `bms.com` for the
//! paper's retention-extreme companies).

use aipan::core::pipeline::{Pipeline, PipelineConfig};
use aipan::crawler::crawl_domain;
use aipan::net::fault::FaultInjector;
use aipan::net::Client;
use aipan::taxonomy::records::{AnnotationPayload, AspectKind};
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    let world = build_world(WorldConfig::small(42, 600));
    let domain = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pg.com".to_string());
    let Some(company) = world.company(&domain) else {
        eprintln!("domain {domain} not in this world; try one of:");
        for c in world.universe.unique_domains().iter().take(10) {
            eprintln!("  {}", c.domain);
        }
        std::process::exit(1);
    };

    println!(
        "auditing {} ({}, {})",
        company.name,
        domain,
        company.sector.name()
    );
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let crawl = crawl_domain(&client, &domain);
    println!(
        "crawl: {} pages fetched, {} privacy pages, outcome {:?}",
        crawl.pages.len(),
        crawl.privacy_pages().len(),
        crawl.outcome
    );

    let pipeline = Pipeline::new(PipelineConfig {
        seed: 42,
        ..Default::default()
    });
    let Some(policy) = pipeline.process_domain(&crawl, company.sector) else {
        println!(
            "no extractable policy for {domain} (fate: {:?})",
            world.fate(&domain)
        );
        return;
    };

    println!(
        "\n=== PRIVACY LABEL: {} ===  (policy at {}, {} words, segmented via {:?})",
        company.name, policy.policy_path, policy.core_word_count, policy.segmentation
    );

    println!("\nCOLLECTS:");
    for ann in policy.for_aspect(AspectKind::Types) {
        if let AnnotationPayload::DataType {
            descriptor,
            category,
        } = &ann.payload
        {
            println!("  [{}] {descriptor}", category.name());
        }
    }
    println!("\nUSES DATA FOR:");
    for ann in policy.for_aspect(AspectKind::Purposes) {
        if let AnnotationPayload::Purpose {
            descriptor,
            category,
        } = &ann.payload
        {
            println!("  [{}] {descriptor}", category.name());
        }
    }
    println!("\nHANDLING:");
    for ann in policy.for_aspect(AspectKind::Handling) {
        match &ann.payload {
            AnnotationPayload::Retention { label, period_days } => match period_days {
                Some(days) => println!("  retention: {label} ({days} days)"),
                None => println!("  retention: {label}"),
            },
            AnnotationPayload::Protection { label } => println!("  protection: {label}"),
            _ => {}
        }
    }
    println!("\nYOUR RIGHTS:");
    for ann in policy.for_aspect(AspectKind::Rights) {
        match &ann.payload {
            AnnotationPayload::Choice { label } => println!("  choice: {label}"),
            AnnotationPayload::Access { label } => println!("  access: {label}"),
            _ => {}
        }
    }

    // Grade the audit against the world's planted ground truth.
    if let Some(truth) = world.truth(&domain) {
        let correct = policy
            .annotations
            .iter()
            .filter(|a| aipan::analysis::validation::payload_correct(truth, &a.payload))
            .count();
        println!(
            "\nground truth check: {}/{} annotations correct",
            correct,
            policy.annotations.len()
        );
    }
}
