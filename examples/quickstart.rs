//! Quickstart: build a small simulated world, run the full AIPAN pipeline,
//! and print what it learned about one company.
//!
//! Run with: `cargo run --release --example quickstart`

use aipan::core::{run_pipeline, PipelineConfig};
use aipan::taxonomy::records::AspectKind;
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    // 1. A deterministic world: 300 synthetic companies with real-looking
    //    websites, privacy policies, and failure modes.
    let world = build_world(WorldConfig::small(42, 300));
    println!(
        "world: {} companies, {} unique domains",
        world.universe.len(),
        world.internet.len()
    );

    // 2. Crawl + segment + annotate everything with the GPT-4-Turbo-profile
    //    simulated chatbot.
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );
    println!(
        "pipeline: {} crawled, {} extracted, {} annotated",
        run.crawl_funnel.crawl_success, run.extraction.extraction_success, run.extraction.annotated
    );

    // 3. Inspect one company's structured annotations.
    let policy = run
        .dataset
        .policies
        .iter()
        .max_by_key(|p| p.annotations.len())
        .expect("at least one annotated policy");
    let company = world.company(&policy.domain).expect("company exists");
    println!(
        "\nmost-annotated policy: {} ({}, sector {})",
        company.name, policy.domain, policy.sector
    );
    for kind in AspectKind::ALL {
        let n = policy.for_aspect(kind).count();
        println!("  {kind:<10} {n} annotations");
    }
    println!("\nfirst few data-type annotations:");
    for ann in policy.for_aspect(AspectKind::Types).take(5) {
        println!(
            "  line {:>3}  {:?}  ← {:?}",
            ann.line, ann.payload, ann.text
        );
    }

    // 4. Token accounting, as a real chatbot deployment would need.
    let total: u64 = run.usage.iter().map(|(_, u)| u.total()).sum();
    println!("\ntotal simulated chatbot tokens: {total}");
}
