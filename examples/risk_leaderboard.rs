//! Privacy-exposure leaderboard — the "legal exposure risk analysis" use
//! case from the paper's Discussion: score every company's policy on
//! collection breadth/sensitivity, protection gaps, and rights gaps, and
//! rank them.
//!
//! Run with: `cargo run --release --example risk_leaderboard [universe_size]`

use aipan::analysis::risk;
use aipan::core::{run_pipeline, PipelineConfig};
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let world = build_world(WorldConfig::small(42, size));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );

    let scores = risk::rank(&run.dataset);
    print!("{}", risk::render(&scores, 15));

    // Decompose the single riskiest policy.
    if let Some(worst) = scores.first() {
        println!(
            "\nriskiest policy: {} ({})",
            worst.domain,
            worst.sector.name()
        );
        println!(
            "  collection {:.1}/50 · protection gap {:.1}/25 · rights gap {:.1}/25",
            worst.collection, worst.protection_gap, worst.rights_gap
        );
        let policy = run
            .dataset
            .by_domain(&worst.domain)
            .expect("scored from dataset");
        println!(
            "  {} annotations across {} aspects",
            policy.annotations.len(),
            4
        );
    }
    if let Some(best) = scores.last() {
        println!("least exposed: {} ({:.1} points)", best.domain, best.score);
    }
}
