//! Sector privacy-posture report — the §5 "consumer discretionary relies on
//! broad data collection" analysis as a reusable league table.
//!
//! For every S&P sector, reports the average number of distinct data-type
//! categories collected, the dominant collection purposes, and the share of
//! companies offering opt-outs and full deletion.
//!
//! Run with: `cargo run --release --example sector_report [universe_size]`

use aipan::core::{run_pipeline, PipelineConfig};
use aipan::taxonomy::records::AnnotationPayload;
use aipan::taxonomy::{ChoiceLabel, DataTypeCategory, PurposeMeta, Sector};
use aipan::webgen::{build_world, WorldConfig};
use std::collections::{HashMap, HashSet};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let world = build_world(WorldConfig::small(42, size));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );

    println!(
        "{:<24} {:>5} {:>10} {:>10} {:>9} {:>9}",
        "Sector", "n", "avg cats", "top purpose", "opt-out", "full-del"
    );
    let mut rows: Vec<(Sector, usize, f64, String, f64, f64)> = Vec::new();
    for sector in Sector::ALL {
        let policies: Vec<_> = run
            .dataset
            .annotated()
            .filter(|p| p.sector == sector)
            .collect();
        if policies.is_empty() {
            continue;
        }
        let mut cat_total = 0usize;
        let mut purpose_meta_counts: HashMap<PurposeMeta, usize> = HashMap::new();
        let mut optout = 0usize;
        let mut fulldel = 0usize;
        for p in &policies {
            let cats: HashSet<DataTypeCategory> = p
                .annotations
                .iter()
                .filter_map(|a| match &a.payload {
                    AnnotationPayload::DataType { category, .. } => Some(*category),
                    _ => None,
                })
                .collect();
            cat_total += cats.len();
            for a in &p.annotations {
                match &a.payload {
                    AnnotationPayload::Purpose { category, .. } => {
                        *purpose_meta_counts.entry(category.meta()).or_insert(0) += 1;
                    }
                    AnnotationPayload::Choice {
                        label: ChoiceLabel::OptOutViaContact | ChoiceLabel::OptOutViaLink,
                    } => optout += 1,
                    AnnotationPayload::Access { label } if label.name() == "Full delete" => {
                        fulldel += 1
                    }
                    _ => {}
                }
            }
        }
        let n = policies.len();
        let top_purpose = purpose_meta_counts
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(m, _)| m.name().to_string())
            .unwrap_or_else(|| "-".to_string());
        let optout_share = policies
            .iter()
            .filter(|p| {
                p.annotations.iter().any(|a| {
                    matches!(
                        a.payload,
                        AnnotationPayload::Choice {
                            label: ChoiceLabel::OptOutViaContact | ChoiceLabel::OptOutViaLink
                        }
                    )
                })
            })
            .count() as f64
            / n as f64;
        let fulldel_share = policies
            .iter()
            .filter(|p| {
                p.annotations.iter().any(|a| {
                    matches!(&a.payload, AnnotationPayload::Access { label } if label.name() == "Full delete")
                })
            })
            .count() as f64
            / n as f64;
        let _ = (optout, fulldel);
        rows.push((
            sector,
            n,
            cat_total as f64 / n as f64,
            top_purpose,
            optout_share,
            fulldel_share,
        ));
    }
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for (sector, n, avg_cats, top_purpose, optout, fulldel) in rows {
        println!(
            "{:<24} {:>5} {:>10.1} {:>10} {:>8.0}% {:>8.0}%",
            sector.name(),
            n,
            avg_cats,
            top_purpose,
            optout * 100.0,
            fulldel * 100.0
        );
    }
    println!(
        "\n(the paper's §5 finding: consumer discretionary tops the table, with \
         advertising/analytics as its dominant data uses)"
    );
}
