//! Longitudinal trend analysis — the "trends" use case the paper's
//! Discussion says the structured dataset unlocks: crawl the same universe
//! at two policy revisions and diff what companies started and stopped
//! doing.
//!
//! Run with: `cargo run --release --example trend_watch [universe_size]`

use aipan::analysis::trends::{peer_gaps, TrendReport};
use aipan::core::{run_pipeline, PipelineConfig};
use aipan::webgen::{build_world, WorldConfig};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);

    println!("snapshot 1: initial policies");
    let world_v1 = build_world(WorldConfig::small(42, size));
    let run_v1 = run_pipeline(
        &world_v1,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );

    println!("snapshot 2: after two policy-update cycles");
    let world_v2 = build_world(WorldConfig::small(42, size).at_revision(2));
    let run_v2 = run_pipeline(
        &world_v2,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );

    let report = TrendReport::diff(&run_v1.dataset, &run_v2.dataset);
    print!("{}", report.render(12));

    // Peer-group comparison for the most-changed company.
    if let Some(diff) = report
        .diffs
        .iter()
        .max_by_key(|d| d.added.len() + d.removed.len())
    {
        println!("\nmost-changed company: {}", diff.domain);
        println!("  added:   {:?}", diff.added);
        println!("  removed: {:?}", diff.removed);
        if let Some(gaps) = peer_gaps(&run_v2.dataset, &diff.domain, 0.6) {
            println!("  still missing vs ≥60% of sector peers: {:?}", gaps);
        }
    }
}
