//! `aipan` — the command-line interface to the AIPAN-RS stack.
//!
//! ```text
//! aipan run      [--seed N] [--size N] [--out FILE] [--resume JOURNAL] [--health-out FILE]
//!                                                     run the pipeline, write the dataset JSON;
//!                                                     with --resume, append per-domain results to
//!                                                     sharded JSONL journal segments as they finish
//!                                                     (consolidated into JOURNAL on success) and
//!                                                     skip already-journaled domains next time;
//!                                                     with --health-out, write the supervisor's
//!                                                     RunHealth report (verdict, per-stage error
//!                                                     taxonomy, quarantine list) as sorted JSON
//! aipan audit    <domain> [--seed N] [--size N]       crawl + annotate one company
//! aipan tables   [--seed N] [--size N]                print Tables 1–5 from a fresh run
//! aipan validate [--seed N] [--size N]                run the §4 validation harness
//! aipan distill  [--seed N] [--size N]                train + evaluate offline student models
//! aipan analyze  <dataset.json>                       analyze a previously exported dataset
//! ```

use aipan::analysis::validation::{FailureAudit, MissingAspectAudit, PrecisionReport};
use aipan::analysis::{insights::Insights, tables, trends};
use aipan::chatbot::SimulatedChatbot;
use aipan::core::pipeline::Pipeline;
use aipan::core::{
    run_pipeline, run_pipeline_sharded, Dataset, PipelineConfig, ShardedJournal, DEFAULT_SHARDS,
};
use aipan::crawler::crawl_domain;
use aipan::ml::{
    build_aspect_corpus, build_rights_corpus, eval, train::split_by_domain, Featurizer,
};
use aipan::net::fault::FaultInjector;
use aipan::net::Client;
use aipan::taxonomy::datatypes::DataTypeMeta;
use aipan::taxonomy::purposes::PurposeMeta;
use aipan::taxonomy::sector::Sector;
use aipan::webgen::{build_world, SearchIndex, World, WorldConfig};
use std::collections::BTreeMap;

struct Args {
    command: String,
    positional: Vec<String>,
    seed: u64,
    size: usize,
    out: Option<String>,
    sector: Option<String>,
    resume: Option<String>,
    health_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        positional: Vec::new(),
        seed: 42,
        size: 600,
        out: None,
        sector: None,
        resume: None,
        health_out: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--sector" => args.sector = iter.next(),
            "--seed" => {
                args.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.seed)
            }
            "--size" => {
                args.size = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.size)
            }
            "--out" => args.out = iter.next(),
            "--resume" => args.resume = iter.next(),
            "--health-out" => args.health_out = iter.next(),
            other if args.command.is_empty() => args.command = other.to_string(),
            other => args.positional.push(other.to_string()),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: aipan <run|audit|tables|validate|distill|analyze> [args]\n\
         \n\
         run      [--seed N] [--size N] [--out FILE] [--resume JOURNAL] [--health-out FILE]\n\
         \x20                                              run the pipeline, export dataset JSON;\n\
         \x20                                              checkpoint/resume via a JSONL journal;\n\
         \x20                                              --health-out writes the RunHealth report\n\
         \x20                                              (verdict, error taxonomy, quarantine)\n\
         audit    <domain>   [--seed N] [--size N]     crawl + annotate one company\n\
         tables              [--seed N] [--size N]     print Tables 1-5\n\
         validate            [--seed N] [--size N]     run the §4 validation harness\n\
         distill             [--seed N] [--size N]     train offline student models\n\
         analyze  <dataset.json> [--sector ABBREV]     analyze an exported dataset"
    );
    std::process::exit(2);
}

fn build(args: &Args) -> World {
    eprintln!(
        "building world (seed {}, {} constituents)...",
        args.seed, args.size
    );
    build_world(WorldConfig {
        seed: args.seed,
        universe_size: args.size,
        ..Default::default()
    })
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "run" => cmd_run(&args),
        "audit" => cmd_audit(&args),
        "tables" => cmd_tables(&args),
        "validate" => cmd_validate(&args),
        "distill" => cmd_distill(&args),
        "analyze" => cmd_analyze(&args),
        _ => usage(),
    }
}

fn cmd_run(args: &Args) {
    let world = build(args);
    let fates: Vec<String> = world
        .fate_histogram()
        .iter()
        .map(|(fate, n)| format!("{fate:?} {n}"))
        .collect();
    println!("company fates: {}", fates.join(", "));
    let config = PipelineConfig {
        seed: args.seed,
        ..Default::default()
    };
    let run = match &args.resume {
        Some(path) => {
            // Durable streaming checkpoints: every finished domain is
            // appended to one of the journal's shard segments immediately,
            // so a killed run resumes losing at most one torn line per
            // segment. On success the segments are consolidated back into
            // the single JSONL file at `path`.
            let base = std::path::Path::new(path);
            let journal = ShardedJournal::open(base, DEFAULT_SHARDS);
            let resumed_from = journal.len();
            println!(
                "journal: {} segment(s), {resumed_from} checkpointed domain(s)",
                journal.shard_count()
            );
            let run = run_pipeline_sharded(&world, config, &journal);
            if journal.write_errors() > 0 {
                eprintln!(
                    "journal: {} segment append(s) failed; affected domains will re-process on resume",
                    journal.write_errors()
                );
            }
            journal.consolidate(base).expect("consolidate journal");
            println!(
                "journal: resumed {resumed_from} domains, {} entries now in {path}",
                journal.len()
            );
            run
        }
        None => run_pipeline(&world, config),
    };
    println!(
        "crawled {} domains ({} ok), annotated {} policies",
        run.crawl_funnel.domains_total, run.crawl_funnel.crawl_success, run.extraction.annotated
    );
    println!(
        "health: {} ({} quarantined, {} poisoned skipped, {} backpressure stall(s))",
        run.health.verdict,
        run.health.quarantine.len(),
        run.health.poisoned_skipped.len(),
        run.health.backpressure_stalls
    );
    for reason in &run.health.reasons {
        println!("  - {reason}");
    }
    if let Some(path) = &args.health_out {
        let json = run.health.to_json();
        std::fs::write(path, &json).expect("write health report");
        println!("health report written to {path} ({} bytes)", json.len());
    }
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "aipan-dataset.json".to_string());
    let json = run.dataset.to_json().expect("serialize dataset");
    std::fs::write(&out, &json).expect("write dataset");
    println!("dataset written to {out} ({} bytes)", json.len());
}

fn cmd_audit(args: &Args) {
    let Some(target) = args.positional.first() else {
        usage()
    };
    let world = build(args);
    let domain = match world.company(target) {
        Some(_) => target.clone(),
        None => {
            // Not a domain in this world — treat the argument as a company
            // name and resolve it the way the paper does: first search
            // result, corrected by manual review.
            let index = SearchIndex::build(args.seed, &world.universe);
            let Some(hit) = index.first_result(target) else {
                eprintln!(
                    "{target} is neither a domain nor a company name in this world \
                     (seed {}, size {})",
                    args.seed, args.size
                );
                std::process::exit(1);
            };
            println!(
                "search: {target} → {}{}",
                hit.domain,
                if hit.needed_review {
                    " (misleading first result corrected by manual review)"
                } else {
                    ""
                }
            );
            hit.domain
        }
    };
    let domain = domain.as_str();
    let client = Client::new(
        world.internet.clone(),
        FaultInjector::new(world.config.seed, world.config.faults),
    );
    let crawl = crawl_domain(&client, domain);
    println!(
        "crawl: {:?}, {} pages, {} privacy pages, robots skipped {}",
        crawl.outcome,
        crawl.pages.len(),
        crawl.privacy_pages().len(),
        crawl.robots_skipped
    );
    for page in &crawl.pages {
        println!(
            "  {:?} {} [{}] via {:?}",
            page.status,
            page.url,
            page.content_type.mime(),
            page.via
        );
    }
    let pipeline = Pipeline::new(PipelineConfig {
        seed: args.seed,
        ..Default::default()
    });
    let sector = world.company(domain).expect("checked").sector;
    match pipeline.process_domain(&crawl, sector) {
        Some(policy) => {
            println!(
                "policy at {} ({} words): {} annotations, fallbacks {:?}",
                policy.policy_path,
                policy.core_word_count,
                policy.annotations.len(),
                policy.fallbacks
            );
            for ann in &policy.annotations {
                println!("  L{:>3} {:?} ← {:?}", ann.line, ann.payload, ann.text);
            }
        }
        None => println!("no extractable policy (fate {:?})", world.fate(domain)),
    }
}

fn cmd_tables(args: &Args) {
    let world = build(args);
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: args.seed,
            ..Default::default()
        },
    );
    println!(
        "{}",
        tables::render_table1(&tables::table1(&run.dataset, 3))
    );
    println!(
        "{}",
        tables::render_breakdown(
            "Table 2a — data-type meta-categories",
            &tables::table2a(&run.dataset)
        )
    );
    println!(
        "{}",
        tables::render_breakdown("Table 2b — purposes", &tables::table2b(&run.dataset))
    );
    println!("{}", tables::render_table3(&tables::table3(&run.dataset)));
    println!(
        "{}",
        tables::render_breakdown(
            "Table 5 — all data-type categories",
            &tables::table5(&run.dataset)
        )
    );
    println!("{}", Insights::compute(&run.dataset).render());
}

fn cmd_validate(args: &Args) {
    let world = build(args);
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: args.seed,
            ..Default::default()
        },
    );
    println!(
        "{}",
        FailureAudit::run(&world, &run.dataset, 50, args.seed).render()
    );
    println!(
        "{}",
        MissingAspectAudit::run(&world, &run.dataset, 20, args.seed).render()
    );
    println!(
        "{}",
        PrecisionReport::run(&world, &run.dataset, args.seed).render()
    );
}

fn cmd_distill(args: &Args) {
    let world = build(args);
    let teacher = SimulatedChatbot::gpt4(args.seed);
    let featurizer = Featurizer::default();
    for (name, corpus) in [
        (
            "aspect segmentation",
            build_aspect_corpus(&world, &teacher, args.size),
        ),
        (
            "rights labeling",
            build_rights_corpus(&world, &teacher, args.size),
        ),
    ] {
        let (train, test) = split_by_domain(&corpus);
        let model = eval::train_student(&featurizer, &train);
        let report = eval::evaluate(&model, &featurizer, &test);
        let top1_sum: f64 = test
            .iter()
            .map(|line| {
                model
                    .predict_proba(&featurizer.featurize(&line.text))
                    .into_iter()
                    .map(|(_, p)| p)
                    .fold(0.0, f64::max)
            })
            .sum();
        let mean_top1 = if test.is_empty() {
            0.0
        } else {
            top1_sum / test.len() as f64
        };
        println!(
            "== {name}: {} train / {} test lines, {} classes, mean top-1 confidence {:.3} ==\n{}",
            train.len(),
            test.len(),
            model.class_count(),
            mean_top1,
            report.render()
        );
    }
}

fn cmd_analyze(args: &Args) {
    let Some(path) = args.positional.first() else {
        usage()
    };
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut dataset = Dataset::from_json(&json).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    if let Some(abbrev) = &args.sector {
        let Some(sector) = Sector::from_abbrev(abbrev) else {
            eprintln!("unknown sector abbreviation: {abbrev}");
            std::process::exit(2);
        };
        dataset.policies.retain(|p| p.sector == sector);
        println!("sector filter: {abbrev} ({sector:?})");
    }
    println!(
        "{} policies, {} annotated",
        dataset.len(),
        dataset.annotated().count()
    );
    let counts = trends::aspect_counts(&dataset);
    let rendered: Vec<String> = counts
        .iter()
        .map(|(kind, n)| format!("{kind:?} {n}"))
        .collect();
    println!("annotations per aspect: {}", rendered.join(", "));
    let mut type_meta: BTreeMap<DataTypeMeta, usize> = BTreeMap::new();
    let mut purpose_meta: BTreeMap<PurposeMeta, usize> = BTreeMap::new();
    for policy in dataset.annotated() {
        for ann in &policy.annotations {
            if let Some(meta) = ann.payload.datatype_meta() {
                *type_meta.entry(meta).or_default() += 1;
            }
            if let Some(meta) = ann.payload.purpose_meta() {
                *purpose_meta.entry(meta).or_default() += 1;
            }
        }
    }
    println!("data-type annotations by meta-category:");
    for (meta, n) in &type_meta {
        println!("  {meta:?}: {n}");
    }
    println!("purpose annotations by meta-category:");
    for (meta, n) in &purpose_meta {
        println!("  {meta:?}: {n}");
    }
    println!("{}", tables::render_table1(&tables::table1(&dataset, 3)));
    println!("{}", Insights::compute(&dataset).render());
}
