//! # aipan — AI-driven Privacy policy ANnotations
//!
//! Umbrella crate for **AIPAN-RS**, a Rust reproduction of *"Analyzing
//! Corporate Privacy Policies using AI Chatbots"* (IMC 2024).
//!
//! This crate re-exports the workspace's subsystems under one roof so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`taxonomy`] — the annotation taxonomy (data types, purposes, handling,
//!   rights, aspects, sectors).
//! * [`textindex`] — fold-once text engine: Aho–Corasick vocabulary
//!   automaton and fold-once document index backing matching/verification.
//! * [`html`] — HTML parsing and inscriptis-style text extraction.
//! * [`net`] — the simulated HTTP substrate with fault injection.
//! * [`webgen`] — the synthetic company universe and policy generator.
//! * [`crawler`] — the privacy-page crawler (§3.1 navigation policy).
//! * [`chatbot`] — the simulated AI-chatbot annotation engine with model
//!   profiles (GPT-4-Turbo / GPT-3.5-Turbo / Llama-3.1).
//! * [`core`] — the end-to-end pipeline and dataset types.
//! * [`analysis`] — statistics, validation, and table regeneration.
//! * [`ml`] — offline student models distilled from chatbot annotations.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment index.

#![warn(missing_docs)]

pub use aipan_analysis as analysis;
pub use aipan_chatbot as chatbot;
pub use aipan_core as core;
pub use aipan_crawler as crawler;
pub use aipan_html as html;
pub use aipan_ml as ml;
pub use aipan_net as net;
pub use aipan_taxonomy as taxonomy;
pub use aipan_textindex as textindex;
pub use aipan_webgen as webgen;
