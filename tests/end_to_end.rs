//! Cross-crate end-to-end tests: the full pipeline over a mid-size world,
//! funnel-shape assertions, determinism, dataset round-tripping, and the
//! validation harness.

use aipan::analysis::validation::{
    FailureAudit, FailureClass, MissingAspectAudit, PrecisionReport,
};
use aipan::analysis::{insights::Insights, tables};
use aipan::core::{run_pipeline, Dataset, PipelineConfig};
use aipan::taxonomy::records::AspectKind;
use aipan::taxonomy::Sector;
use aipan::webgen::{build_world, WorldConfig};
use std::sync::OnceLock;

const SEED: u64 = 1234;
const SIZE: usize = 700;

fn fixture() -> &'static (aipan::webgen::World, aipan::core::PipelineRun) {
    static FIX: OnceLock<(aipan::webgen::World, aipan::core::PipelineRun)> = OnceLock::new();
    FIX.get_or_init(|| {
        let world = build_world(WorldConfig::small(SEED, SIZE));
        let run = run_pipeline(
            &world,
            PipelineConfig {
                seed: SEED,
                ..Default::default()
            },
        );
        (world, run)
    })
}

#[test]
fn funnel_shape_matches_paper() {
    let (_, run) = fixture();
    let f = &run.crawl_funnel;
    let e = &run.extraction;

    // §3.1: ~91.6% crawl success.
    let success = f.success_rate();
    assert!((0.86..=0.96).contains(&success), "crawl success {success}");

    // §3.1: path-existence rates around 54.5% and 48.6%.
    assert!(
        (0.44..=0.64).contains(&f.policy_path_rate()),
        "{}",
        f.policy_path_rate()
    );
    assert!(
        (0.38..=0.58).contains(&f.privacy_path_rate()),
        "{}",
        f.privacy_path_rate()
    );

    // §3.2.1: extraction ≈ 88% of all, ≈96% of crawled.
    assert!(
        (0.82..=0.94).contains(&e.extraction_rate()),
        "{}",
        e.extraction_rate()
    );
    assert!(
        (0.92..=0.99).contains(&e.extraction_rate_of_crawled()),
        "{}",
        e.extraction_rate_of_crawled()
    );

    // §3.2.1: median core policy length ≈ 2671 words.
    assert!(
        (1800..=3600).contains(&e.median_core_words),
        "median {} words",
        e.median_core_words
    );

    // §3.2.2 footnote: fallback for roughly a quarter of policies.
    let fallback_rate = e.policies_with_fallback as f64 / e.extraction_success.max(1) as f64;
    assert!(
        (0.12..=0.45).contains(&fallback_rate),
        "fallback rate {fallback_rate}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let world = build_world(WorldConfig::small(55, 150));
    let a = run_pipeline(
        &world,
        PipelineConfig {
            seed: 55,
            ..Default::default()
        },
    );
    let b = run_pipeline(
        &world,
        PipelineConfig {
            seed: 55,
            ..Default::default()
        },
    );
    assert_eq!(a.dataset.len(), b.dataset.len());
    for (x, y) in a.dataset.policies.iter().zip(&b.dataset.policies) {
        assert_eq!(x.domain, y.domain);
        assert_eq!(x.annotations, y.annotations);
        assert_eq!(x.fallbacks, y.fallbacks);
    }
    assert_eq!(a.extraction, b.extraction);
    assert_eq!(a.crawl_funnel, b.crawl_funnel);
}

#[test]
fn different_seeds_produce_different_worlds() {
    let a = build_world(WorldConfig::small(1, 100));
    let b = build_world(WorldConfig::small(2, 100));
    let da: Vec<_> = a
        .universe
        .unique_domains()
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    let db: Vec<_> = b
        .universe
        .unique_domains()
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    assert_ne!(da, db);
}

#[test]
fn dataset_json_roundtrip_preserves_analysis() {
    let (_, run) = fixture();
    let json = run.dataset.to_json().expect("serialize");
    let reloaded = Dataset::from_json(&json).expect("parse");
    assert_eq!(reloaded.len(), run.dataset.len());
    let before = tables::table1(&run.dataset, 3);
    let after = tables::table1(&reloaded, 3);
    assert_eq!(before.types_total, after.types_total);
    assert_eq!(before.purposes_total, after.purposes_total);
    let ins_before = Insights::compute(&run.dataset);
    let ins_after = Insights::compute(&reloaded);
    assert_eq!(
        ins_before.retention_median_days,
        ins_after.retention_median_days
    );
    assert_eq!(ins_before.data_for_sale, ins_after.data_for_sale);
}

#[test]
fn precision_bands_match_section4() {
    let (world, run) = fixture();
    let report = PrecisionReport::run(world, &run.dataset, SEED);
    let types = PrecisionReport::precision(report.types);
    let purposes = PrecisionReport::precision(report.purposes);
    let handling = PrecisionReport::precision(report.handling);
    let rights = PrecisionReport::precision(report.rights);
    // Paper: 89.7 / 94.3 / 97.5 / 90.5 (±generous band for a smaller world).
    assert!((0.80..=0.97).contains(&types), "types {types}");
    assert!((0.87..=1.0).contains(&purposes), "purposes {purposes}");
    assert!((0.90..=1.0).contains(&handling), "handling {handling}");
    assert!((0.80..=0.98).contains(&rights), "rights {rights}");
    // Purposes and handling must be cleaner than types, as in the paper.
    assert!(purposes > types, "purposes {purposes} vs types {types}");
    assert!(handling > types, "handling {handling} vs types {types}");
}

#[test]
fn failure_audit_dominated_by_missing_policies() {
    let (world, run) = fixture();
    let audit = FailureAudit::run(world, &run.dataset, 50, SEED);
    assert!(audit.failed_total > 0);
    let no_policy = audit
        .counts
        .iter()
        .find(|(c, _)| *c == FailureClass::NoPolicy)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    // Paper: 27/50 had no policy — the plurality class.
    assert!(
        no_policy * 2 >= audit.sample_size,
        "no-policy {no_policy} of {}",
        audit.sample_size
    );
}

#[test]
fn missing_aspect_audit_mostly_genuine() {
    let (world, run) = fixture();
    let audit = MissingAspectAudit::run(world, &run.dataset, 20, SEED);
    // Paper: 16/20 genuinely absent.
    assert!(
        audit.truly_absent as f64 >= 0.7 * audit.sample_size as f64,
        "{audit:?}"
    );
}

#[test]
fn annotations_cover_all_four_aspects_corpus_wide() {
    let (_, run) = fixture();
    for kind in AspectKind::ALL {
        let n = run.dataset.annotation_count(kind);
        assert!(n > 100, "{kind} has only {n} annotations corpus-wide");
    }
}

#[test]
fn every_sector_represented_in_dataset() {
    let (_, run) = fixture();
    for sector in Sector::ALL {
        let n = run
            .dataset
            .annotated()
            .filter(|p| p.sector == sector)
            .count();
        assert!(n > 0, "sector {sector} missing from dataset");
    }
}

#[test]
fn planted_retention_extremes_survive_pipeline() {
    // Full-size check on the three real-name companies the paper cites.
    let world = build_world(WorldConfig::small(42, 2916));
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let insights = Insights::compute(&run.dataset);
    assert_eq!(
        insights.retention_min.0, 1,
        "min stated period should be 1 day"
    );
    assert!(insights
        .retention_min
        .1
        .contains(&"arescre.com".to_string()));
    assert!(insights.retention_min.1.contains(&"pg.com".to_string()));
    assert_eq!(insights.retention_max.0, 18_250, "max should be 50 years");
    assert!(insights.retention_max.1.contains(&"bms.com".to_string()));
    // §5: median stated retention ≈ 2 years.
    assert!(
        (540..=920).contains(&insights.retention_median_days),
        "median {}",
        insights.retention_median_days
    );
}
