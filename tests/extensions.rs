//! Integration tests for the beyond-the-paper extensions: longitudinal
//! trends, risk scoring, and chatbot→student distillation.

use aipan::analysis::risk;
use aipan::analysis::trends::{peer_gaps, TrendReport};
use aipan::chatbot::SimulatedChatbot;
use aipan::core::{run_pipeline, PipelineConfig};
use aipan::ml::{build_aspect_corpus, eval, train::split_by_domain, Featurizer};
use aipan::webgen::{build_world, WorldConfig};
use std::sync::OnceLock;

const SEED: u64 = 777;
const SIZE: usize = 250;

fn snapshot(revision: u32) -> aipan::core::PipelineRun {
    let world = build_world(WorldConfig::small(SEED, SIZE).at_revision(revision));
    run_pipeline(
        &world,
        PipelineConfig {
            seed: SEED,
            ..Default::default()
        },
    )
}

fn fixture() -> &'static (aipan::core::PipelineRun, aipan::core::PipelineRun) {
    static FIX: OnceLock<(aipan::core::PipelineRun, aipan::core::PipelineRun)> = OnceLock::new();
    FIX.get_or_init(|| (snapshot(0), snapshot(2)))
}

#[test]
fn trend_report_detects_policy_evolution() {
    let (v0, v2) = fixture();
    let report = TrendReport::diff(&v0.dataset, &v2.dataset);
    assert!(
        report.companies_compared > 150,
        "{}",
        report.companies_compared
    );
    // Two update cycles must change a nontrivial but minority share.
    let churn = report.churn_rate();
    assert!((0.05..0.95).contains(&churn), "churn {churn}");
    // Flux totals must agree with the per-company diffs.
    let added_total: usize = report.diffs.iter().map(|d| d.added.len()).sum();
    let flux_added: usize = report.practice_flux.values().map(|(a, _)| a).sum();
    assert_eq!(added_total, flux_added);
    assert!(report.render(5).contains("Trend report"));
}

#[test]
fn same_revision_diff_is_empty() {
    let (v0, _) = fixture();
    let report = TrendReport::diff(&v0.dataset, &v0.dataset);
    assert!(report.diffs.is_empty());
    assert_eq!(report.disappeared, 0);
    assert_eq!(report.appeared, 0);
}

#[test]
fn risk_scores_cover_dataset_and_are_bounded() {
    let (v0, _) = fixture();
    let scores = risk::rank(&v0.dataset);
    assert_eq!(scores.len(), v0.dataset.annotated().count());
    for s in &scores {
        assert!(
            (0.0..=100.0).contains(&s.score),
            "{} scored {}",
            s.domain,
            s.score
        );
    }
    // Ranked descending.
    for pair in scores.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
    // Spread: the riskiest must be meaningfully above the safest.
    let spread = scores.first().unwrap().score - scores.last().unwrap().score;
    assert!(spread > 15.0, "risk spread only {spread}");
}

#[test]
fn peer_gaps_only_report_safeguard_practices() {
    let (v0, _) = fixture();
    let domain = &v0.dataset.annotated().next().unwrap().domain.clone();
    let gaps = peer_gaps(&v0.dataset, domain, 0.5).expect("domain in dataset");
    for gap in &gaps {
        assert!(
            gap.starts_with("choice:")
                || gap.starts_with("access:")
                || gap.starts_with("protection:")
                || gap.starts_with("retention:"),
            "unexpected gap kind {gap}"
        );
    }
}

#[test]
fn distillation_beats_majority_class_on_aspects() {
    let world = build_world(WorldConfig::small(SEED, SIZE));
    let teacher = SimulatedChatbot::gpt4(SEED);
    let corpus = build_aspect_corpus(&world, &teacher, 120);
    let (train, test) = split_by_domain(&corpus);
    let featurizer = Featurizer::default();
    let model = eval::train_student(&featurizer, &train);
    let report = eval::evaluate(&model, &featurizer, &test);

    // Majority-class baseline.
    let mut counts: std::collections::HashMap<&str, usize> = Default::default();
    for example in &test {
        *counts.entry(example.label.as_str()).or_default() += 1;
    }
    let majority = counts.values().copied().max().unwrap_or(0) as f64 / test.len() as f64;
    assert!(
        report.accuracy() > majority + 0.05,
        "student {:.3} must beat majority baseline {:.3}",
        report.accuracy(),
        majority
    );
    assert!(report.accuracy() > 0.6, "accuracy {:.3}", report.accuracy());
}
