//! The repository's strongest invariant: with a *perfect* chatbot (the
//! oracle profile) and no network faults, the pipeline recovers **exactly**
//! the planted ground truth for every Normal-fate domain — no missing
//! annotations, no extras.
//!
//! This is what ties the whole system together: the generator's surface
//! forms, the HTML extraction, the two-step segmentation, the per-aspect
//! fallback, the vocabulary matchers, and the normalization must all agree.
//! Any cross-vocabulary collision or template leak breaks this test.

use aipan::chatbot::ModelProfile;
use aipan::core::{run_pipeline, PipelineConfig};
use aipan::net::fault::FaultConfig;
use aipan::taxonomy::records::AnnotationPayload;
use aipan::webgen::{build_world, CompanyFate, WorldConfig};
use std::collections::BTreeSet;

#[test]
fn oracle_pipeline_recovers_planted_truth_exactly() {
    let mut cfg = WorldConfig::small(42, 500);
    cfg.faults = FaultConfig::none();
    let world = build_world(cfg);
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 42,
            profile: ModelProfile::oracle(),
            ..Default::default()
        },
    );

    let mut checked = 0usize;
    for policy in run.dataset.annotated() {
        if world.fate(&policy.domain) != CompanyFate::Normal {
            continue;
        }
        let truth = world
            .truth(&policy.domain)
            .expect("normal domains have truth");
        checked += 1;

        // Data types: exact (descriptor, category) set equality.
        let got: BTreeSet<(String, String)> = policy
            .annotations
            .iter()
            .filter_map(|a| match &a.payload {
                AnnotationPayload::DataType {
                    descriptor,
                    category,
                } => Some((descriptor.clone(), category.name().to_string())),
                _ => None,
            })
            .collect();
        let want: BTreeSet<(String, String)> = truth
            .types
            .iter()
            .map(|m| (m.descriptor.clone(), m.category.name().to_string()))
            .collect();
        assert_eq!(got, want, "data types diverge for {}", policy.domain);

        // Purposes: exact set equality.
        let got: BTreeSet<(String, String)> = policy
            .annotations
            .iter()
            .filter_map(|a| match &a.payload {
                AnnotationPayload::Purpose {
                    descriptor,
                    category,
                } => Some((descriptor.clone(), category.name().to_string())),
                _ => None,
            })
            .collect();
        let want: BTreeSet<(String, String)> = truth
            .purposes
            .iter()
            .map(|m| (m.descriptor.clone(), m.category.name().to_string()))
            .collect();
        assert_eq!(got, want, "purposes diverge for {}", policy.domain);

        // Handling and rights: exact label-set equality.
        let got: BTreeSet<String> = policy
            .annotations
            .iter()
            .filter_map(|a| match &a.payload {
                AnnotationPayload::Retention { label, .. } => Some(format!("ret:{label}")),
                AnnotationPayload::Protection { label } => Some(format!("prot:{label}")),
                AnnotationPayload::Choice { label } => Some(format!("choice:{label}")),
                AnnotationPayload::Access { label } => Some(format!("access:{label}")),
                _ => None,
            })
            .collect();
        let mut want: BTreeSet<String> = BTreeSet::new();
        want.extend(truth.retention.iter().map(|r| format!("ret:{}", r.label)));
        want.extend(truth.protection.iter().map(|l| format!("prot:{l}")));
        want.extend(truth.choices.iter().map(|l| format!("choice:{l}")));
        want.extend(truth.access.iter().map(|l| format!("access:{l}")));
        assert_eq!(
            got, want,
            "handling/rights labels diverge for {}",
            policy.domain
        );

        // Stated retention periods must round-trip through the text.
        for planted in &truth.retention {
            if let Some(days) = planted.period_days {
                let recovered = policy.annotations.iter().any(|a| {
                    matches!(a.payload, AnnotationPayload::Retention { period_days: Some(d), .. } if d == days)
                });
                assert!(recovered, "period {days}d lost for {}", policy.domain);
            }
        }

        // Negated mentions must never be annotated.
        for neg in &truth.negated_types {
            let leaked = policy.annotations.iter().any(|a| {
                matches!(&a.payload, AnnotationPayload::DataType { descriptor, .. }
                    if *descriptor == neg.descriptor)
            });
            assert!(
                leaked == truth.types.iter().any(|t| t.descriptor == neg.descriptor),
                "negated mention {:?} leaked into annotations for {}",
                neg.descriptor,
                policy.domain
            );
        }
    }
    assert!(checked >= 350, "only {checked} normal policies checked");
}

#[test]
fn oracle_pipeline_removes_no_hallucinations() {
    let mut cfg = WorldConfig::small(7, 150);
    cfg.faults = FaultConfig::none();
    let world = build_world(cfg);
    let run = run_pipeline(
        &world,
        PipelineConfig {
            seed: 7,
            profile: ModelProfile::oracle(),
            ..Default::default()
        },
    );
    assert_eq!(
        run.extraction.hallucinations_removed, 0,
        "the oracle never hallucinates, so verification should remove nothing"
    );
}
