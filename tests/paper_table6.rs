//! Fidelity test against the paper's Table 6: the *actual contextual
//! sentences* the paper published (examples of validated annotations) are
//! fed to the simulated chatbot, which must produce the same annotations
//! the paper's GPT-4-Turbo produced.
//!
//! This pins the annotation engine to real-world policy language, not just
//! the synthetic generator's templates.

use aipan::chatbot::prompt::{TaskKind, TaskPrompt};
use aipan::chatbot::{protocol, Chatbot, ModelProfile, SimulatedChatbot};

fn oracle() -> SimulatedChatbot {
    SimulatedChatbot::new(ModelProfile::oracle(), 1)
}

fn extract_types(text: &str) -> Vec<(String, String)> {
    let bot = oracle();
    let input = protocol::number_lines([text]);
    let out = bot.complete(&TaskPrompt::build(TaskKind::ExtractDataTypes), &input);
    let mentions = protocol::parse_extractions(&out);
    let norm_input = protocol::number_lines(mentions.iter().map(|(_, t)| t.as_str()));
    let out = bot.complete(
        &TaskPrompt::build(TaskKind::NormalizeDataTypes),
        &norm_input,
    );
    protocol::parse_normalizations(&out)
        .into_iter()
        .map(|(_, descriptor, category)| (descriptor, category))
        .collect()
}

#[test]
fn biometric_row_iris_retina() {
    // Table 6: Biometric data → "retina scan" from "imagery of the iris or
    // retina", alongside voice prints, face geometry, and palm prints.
    let got = extract_types(
        "Biometric Information, such as voice prints, imagery of the iris or retina, \
         face geometry, and palm prints or fingerprints",
    );
    let descriptors: Vec<&str> = got.iter().map(|(d, _)| d.as_str()).collect();
    assert!(descriptors.contains(&"retina scan"), "{descriptors:?}");
    assert!(descriptors.contains(&"voice print"), "{descriptors:?}");
    assert!(descriptors.contains(&"facial data"), "{descriptors:?}");
    assert!(descriptors.contains(&"fingerprint"), "{descriptors:?}");
    assert!(got.iter().all(|(_, c)| c == "Biometric data"), "{got:?}");
}

#[test]
fn demographic_row_citizenship() {
    // Table 6: Demographic info → "citizenship" from "citizenships held".
    let got = extract_types(
        "Passport details, place of birth, citizenships held (past and present), and \
         residency status",
    );
    assert!(
        got.iter()
            .any(|(d, c)| d == "citizenship" && c == "Demographic info"),
        "{got:?}"
    );
    assert!(got.iter().any(|(d, _)| d == "passport"), "{got:?}");
}

#[test]
fn device_row_browser_type() {
    // Table 6: Device info → "browser type" from "type of browser software".
    let got = extract_types(
        "X logs your current Internet address (this is usually a temporary address \
         assigned by your Internet service provider when you log in), the type of \
         operating system you are using, and the type of browser software used.",
    );
    assert!(
        got.iter()
            .any(|(d, c)| d == "browser type" && c == "Device info"),
        "{got:?}"
    );
    assert!(got.iter().any(|(d, _)| d == "operating system"), "{got:?}");
    assert!(
        got.iter()
            .any(|(d, c)| d == "isp" && c == "Network connectivity"),
        "internet service provider should map to isp: {got:?}"
    );
}

#[test]
fn financial_capability_row_student_loans() {
    // Table 6: Financial capability → "student loan information".
    let got = extract_types(
        "Information regarding your education history, including degrees earned and \
         student loan financial information.",
    );
    assert!(
        got.iter()
            .any(|(d, c)| d == "student loan information" && c == "Financial capability"),
        "{got:?}"
    );
    assert!(
        got.iter().any(|(_, c)| c == "Educational info"),
        "education history / degrees earned: {got:?}"
    );
}

#[test]
fn precise_location_row_gps() {
    // Table 6: Precise Location → "gps location" from "latitude and
    // longitude coordinates".
    let got = extract_types(
        "X collects latitude and longitude coordinates from the device as part of the \
         timekeeping process when geolocation services are enabled",
    );
    assert!(
        got.iter()
            .any(|(d, c)| d == "gps location" && c == "Precise location"),
        "{got:?}"
    );
}

#[test]
fn product_usage_row_website_usage() {
    // Table 6: Product/service usage → "website usage" from "use of our
    // website".
    let got = extract_types(
        "For example, from observing your actions as a candidate, from records of your \
         use of our website, network, or other technology systems.",
    );
    assert!(
        got.iter()
            .any(|(d, c)| d == "website usage" && c == "Product/service usage"),
        "{got:?}"
    );
}

#[test]
fn purposes_rows_contract_and_affiliate_sharing() {
    let bot = oracle();
    let input = protocol::number_lines([
        "For the performance of a contract or to conduct business with you (e.g., \
         consulting; speaker agreement).",
        "To the extent permitted by applicable law, we may provide personal information \
         to our affiliated businesses or to our business partners, who may use it to \
         send you marketing and other communications.",
    ]);
    let out = bot.complete(&TaskPrompt::build(TaskKind::AnnotatePurposes), &input);
    let rows = protocol::parse_purposes(&out);
    assert!(
        rows.iter()
            .any(|(_, _, d, c)| d == "contract fulfillment" && c == "Basic functioning"),
        "{rows:?}"
    );
    assert!(
        rows.iter()
            .any(|(_, _, d, c)| d == "sharing with partners" && c == "Data sharing"),
        "affiliate sharing: {rows:?}"
    );
}

#[test]
fn handling_rows_stated_retention_and_protection() {
    let bot = oracle();
    let input = protocol::number_lines([
        "We retain your personal information for the period you are actively using our \
         services plus six (6) years.",
        "We strive to protect the information you provide to us when you use our \
         Services through commercially reasonable administrative, technical, and \
         organizational safeguards.",
        "Steps we have taken to enhance network and information security include \
         industry standard infrastructure security, the implementation of Secure Socket \
         Layer (SSL) encryption technology for payment transactions, and digital \
         certificates.",
    ]);
    let out = bot.complete(&TaskPrompt::build(TaskKind::AnnotateHandling), &input);
    let rows = protocol::parse_handling(&out);
    assert!(
        rows.iter()
            .any(|(n, _, l, p)| *n == 1 && l == "Stated" && p.as_deref() == Some("6 years")),
        "{rows:?}"
    );
    assert!(
        rows.iter().any(|(n, _, l, _)| *n == 2 && l == "Generic"),
        "{rows:?}"
    );
    assert!(
        rows.iter()
            .any(|(n, _, l, _)| *n == 3 && l == "Secure transfer"),
        "{rows:?}"
    );
}

#[test]
fn rights_rows_settings_link_and_edit() {
    let bot = oracle();
    let input = protocol::number_lines([
        "If you have a registered account, you may be able to change your preferences \
         as well as update your Personal Information through your account settings.",
        "To submit a request to opt out of the sale or sharing of your personal \
         information, please click the Opt-Out of Sale/Sharing Request tab on this page.",
        "We offer various self-help tools that will allow you to see and/or update \
         certain of your personal information in our records.",
    ]);
    let out = bot.complete(&TaskPrompt::build(TaskKind::AnnotateRights), &input);
    let rows = protocol::parse_rights(&out);
    assert!(
        rows.iter()
            .any(|(n, _, l)| *n == 1 && l == "Privacy settings"),
        "{rows:?}"
    );
    assert!(
        rows.iter()
            .any(|(n, _, l)| *n == 2 && l == "Opt-out via link"),
        "{rows:?}"
    );
    assert!(
        rows.iter().any(|(n, _, l)| *n == 3 && l == "Edit"),
        "{rows:?}"
    );
}

#[test]
fn negated_real_world_context_ignored() {
    // §6: "data mentioned after 'this privacy notice does not apply to'"
    // must not be extracted (GPT-4 behaviour; Llama-3.1 fails this).
    let got = extract_types(
        "This privacy notice does not apply to employment history or medical info \
         collected by our insurance subsidiaries.",
    );
    assert!(got.is_empty(), "negated mentions extracted: {got:?}");

    let llama = SimulatedChatbot::new(ModelProfile::llama31(), 99);
    let input = protocol::number_lines([
        "This privacy notice does not apply to employment history or medical info \
         collected by our insurance subsidiaries.",
    ]);
    let out = llama.complete(&TaskPrompt::build(TaskKind::ExtractDataTypes), &input);
    // With negation_error = 0.7, at least one of the two negated mentions is
    // very likely extracted under this seed.
    let rows = protocol::parse_extractions(&out);
    assert!(
        !rows.is_empty(),
        "llama profile should extract negated mentions (seed-dependent but \
         deterministic for seed 99)"
    );
}
