//! Cross-crate property-based tests (proptest): robustness of the parsing
//! layers on arbitrary input and invariants of the core data structures.

use aipan::chatbot::protocol;
use aipan::html::entity;
use aipan::net::Url;
use aipan::taxonomy::normalize::fold;
use aipan::taxonomy::{Aspect, Normalizer, Sector};
use aipan::webgen::GroundTruth;
use proptest::prelude::*;

proptest! {
    // ---- HTML layer ----

    #[test]
    fn html_extract_never_panics(input in ".{0,800}") {
        let _ = aipan::html::extract(&input);
    }

    #[test]
    fn html_extract_never_panics_on_taggy_soup(
        parts in proptest::collection::vec("(<[a-z]{1,6}>|</[a-z]{1,6}>|[a-z ]{1,12}|<!--|-->|&[a-z]{2,6};|<)", 0..60)
    ) {
        let input: String = parts.concat();
        let doc = aipan::html::extract(&input);
        // Line numbering is dense and 1-based.
        for (i, line) in doc.lines.iter().enumerate() {
            prop_assert!(!line.text.is_empty() || i == usize::MAX);
        }
    }

    #[test]
    fn entity_escape_roundtrips(input in "[ -~]{0,200}") {
        prop_assert_eq!(entity::decode(&entity::escape(&input)), input);
    }

    #[test]
    fn extracted_text_contains_no_tags(words in proptest::collection::vec("[a-z]{1,10}", 1..20)) {
        let html = format!("<div><p>{}</p></div>", words.join(" "));
        let doc = aipan::html::extract(&html);
        prop_assert!(!doc.text().contains('<'));
        prop_assert_eq!(doc.word_count(), words.len());
    }

    // ---- URL layer ----

    #[test]
    fn url_join_never_panics(base_path in "(/[a-z0-9.-]{0,12}){0,4}", reference in ".{0,60}") {
        let base = Url::parse(&format!("https://example.com{}", base_path)).unwrap();
        let _ = base.join(&reference);
    }

    #[test]
    fn url_join_same_scheme_for_relative(path in "[a-z0-9/.-]{0,40}") {
        let base = Url::parse("https://acme.com/a/b").unwrap();
        if let Ok(joined) = base.join(&path) {
            // Protocol-relative ("//host/...") and absolute references may
            // legitimately change the host.
            if !path.contains("://") && !path.starts_with("//") {
                prop_assert_eq!(joined.scheme.as_str(), "https");
                prop_assert_eq!(joined.host.as_str(), "acme.com");
            }
        }
    }

    #[test]
    fn url_parse_display_roundtrip(host in "[a-z]{1,10}\\.(com|org|net)", path in "(/[a-z0-9-]{1,8}){0,4}") {
        let url = Url::parse(&format!("https://{host}{path}")).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url, reparsed);
    }

    // ---- Taxonomy / normalization ----

    #[test]
    fn fold_is_idempotent(input in ".{0,120}") {
        let once = fold(&input);
        prop_assert_eq!(fold(&once), once);
    }

    #[test]
    fn normalizer_is_case_and_space_insensitive(extra_spaces in 1usize..4) {
        let n = Normalizer::new();
        let spaced = format!("Mailing{}Address", " ".repeat(extra_spaces));
        let hit = n.datatype(&spaced);
        prop_assert!(hit.is_some());
        prop_assert_eq!(hit.unwrap().descriptor, "postal address");
    }

    // ---- Chatbot protocol ----

    #[test]
    fn protocol_parse_tolerates_arbitrary_output(output in ".{0,300}") {
        let _ = protocol::parse_labels(&output);
        let _ = protocol::parse_extractions(&output);
        let _ = protocol::parse_normalizations(&output);
        let _ = protocol::parse_purposes(&output);
        let _ = protocol::parse_handling(&output);
        let _ = protocol::parse_rights(&output);
    }

    #[test]
    fn protocol_extraction_roundtrip(
        rows in proptest::collection::vec((1usize..1000, "[ -~&&[^\"\\\\]]{0,40}"), 0..20)
    ) {
        let rows: Vec<(usize, String)> = rows;
        let encoded = protocol::encode_extractions(&rows);
        prop_assert_eq!(protocol::parse_extractions(&encoded), rows);
    }

    #[test]
    fn protocol_label_roundtrip(
        rows in proptest::collection::vec(
            (1usize..500, proptest::collection::vec(0usize..9, 0..4)),
            0..12
        )
    ) {
        let rows: Vec<(usize, Vec<Aspect>)> = rows
            .into_iter()
            .map(|(n, idxs)| (n, idxs.into_iter().map(|i| Aspect::ALL[i]).collect()))
            .collect();
        let encoded = protocol::encode_labels(&rows);
        prop_assert_eq!(protocol::parse_labels(&encoded), rows);
    }

    #[test]
    fn numbered_lines_parse_back(lines in proptest::collection::vec("[ -~&&[^\\[\\]]]{0,40}", 0..15)) {
        let doc = protocol::number_lines(lines.iter().map(String::as_str));
        let parsed = aipan::chatbot::tasks::parse_numbered(&doc);
        prop_assert_eq!(parsed.len(), lines.len());
        for ((n, text), (i, original)) in parsed.iter().zip(lines.iter().enumerate()) {
            prop_assert_eq!(*n, i + 1);
            prop_assert_eq!(text.trim_end(), original.trim());
        }
    }

    // ---- Ground truth invariants ----

    #[test]
    fn groundtruth_invariants(seed in 0u64..500, sector_idx in 0usize..11) {
        let sector = Sector::ALL[sector_idx];
        let t = GroundTruth::sample(seed, "prop.com", sector);
        // Unique positive descriptors.
        let mut seen = std::collections::HashSet::new();
        for m in &t.types {
            prop_assert!(seen.insert(m.descriptor.clone()), "dup {}", m.descriptor);
        }
        // Negated mentions never overlap positives.
        for neg in &t.negated_types {
            prop_assert!(t.types.iter().all(|p| p.descriptor != neg.descriptor));
        }
        // Stated retention always carries a sane period.
        for r in &t.retention {
            match r.label {
                aipan::taxonomy::RetentionLabel::Stated => {
                    let days = r.period_days.expect("stated has period");
                    prop_assert!((1..=18_250).contains(&days));
                }
                _ => prop_assert!(r.period_days.is_none()),
            }
        }
        // Labels are unique.
        let labels: Vec<_> = t.retention.iter().map(|r| r.label).collect();
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        prop_assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn policy_rendering_always_english_and_nonempty(seed in 0u64..200) {
        let t = GroundTruth::sample(seed, "render.com", Sector::HealthCare);
        let style = aipan::webgen::policy::PolicyStyle::sample(seed, "render.com");
        let html = aipan::webgen::policy::render_policy(&t, &style, "Render Corp", seed);
        let doc = aipan::html::extract(&html);
        prop_assert!(doc.word_count() > 100);
        prop_assert!(aipan::html::lang::is_english(&doc.text()));
    }
}
