//! Offline stand-in for `bytes`: [`Bytes`], a cheaply cloneable, immutable,
//! reference-counted byte buffer. Covers the subset of the real crate's API
//! this workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
///
/// Clones share the same allocation; static slices do not allocate.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a static byte slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from("hello");
        let b = Bytes::from_static(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_contents() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&*b, &[1, 2, 3]);
    }
}
