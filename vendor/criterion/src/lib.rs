//! Offline stand-in for `criterion`: the macro/builder surface the bench
//! targets use (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `black_box`, `Throughput`, `BenchmarkId`), backed by a simple
//! median-of-samples wall-clock timer instead of criterion's statistics.

use std::time::Instant;

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Drives `iter` closures and records wall-clock samples.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Time `routine`, reporting the median of several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!("    median {:>12} ns over {} samples", median, times.len());
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the group's throughput basis (informational here).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.label);
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// Run a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{}", self.name, id.into().0);
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Names acceptable where criterion takes `impl Into<BenchmarkId>`-style
/// arguments for `bench_function`.
pub struct BenchId(pub String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}", name.into().0);
        let mut b = Bencher { samples: 10 };
        f(&mut b);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
