//! Offline stand-in for `crossbeam`, covering the subset this workspace
//! uses: [`scope`] (scoped threads whose spawn closures receive the scope,
//! enabling nested spawns) and [`channel`] (cloneable multi-producer
//! multi-consumer channels with bounded and unbounded flavors).
//!
//! Backed by `std::thread::scope` and a `Mutex`/`Condvar` queue. Semantics
//! relevant to callers are preserved: a bounded `send` blocks when full,
//! `send` errors once all receivers are gone, and receiver iteration ends
//! once all senders are gone and the queue drains.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Scoped-thread API.
pub mod thread {
    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// A scope in which threads borrowing local state may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread; the closure receives the scope so it can spawn
        /// further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in an unjoined thread propagates as a panic (the
    /// `Result` is for crossbeam API compatibility and is always `Ok`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

/// MPMC channel API.
pub mod channel {
    use super::*;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signaled when the queue gains an item or loses all senders.
        readable: Condvar,
        /// Signaled when the queue loses an item or loses all receivers.
        writable: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when no receiver remains.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// no sender remains.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (consumers compete for items).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel: `send` blocks while `cap` items are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full. Errors
        /// if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .shared
                    .capacity
                    .map(|cap| state.items.len() >= cap)
                    .unwrap_or(false);
                if !full {
                    state.items.push_back(value);
                    drop(state);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .writable
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.shared);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next item, blocking until one is available. Errors
        /// if the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .readable
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Blocking iterator over received items; ends when the channel
        /// closes (all senders dropped and queue drained).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.shared);
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.writable.notify_all();
            }
        }
    }

    /// Blocking receive iterator; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![1, 2, 3];
        let sum = scope(|s| {
            let h = s.spawn(|_| 10);
            let inner: i32 = data.iter().sum();
            inner + h.join().expect("spawned thread")
        })
        .expect("scope");
        assert_eq!(sum, 16);
        data.push(4); // borrow released
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let total = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 5);
                inner.join().expect("inner") + 1
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(total, 6);
    }

    #[test]
    fn channel_fan_in_fan_out() {
        let (job_tx, job_rx) = channel::bounded::<u32>(2);
        let (res_tx, res_rx) = channel::unbounded::<u32>();
        scope(|s| {
            for _ in 0..3 {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                s.spawn(move |_| {
                    for job in rx.iter() {
                        if tx.send(job * 2).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(job_rx);
            drop(res_tx);
            s.spawn(move |_| {
                for i in 0..50 {
                    job_tx.send(i).expect("send job");
                }
            });
            let mut got: Vec<u32> = res_rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<u32>>());
        })
        .expect("scope");
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_when_closed_and_empty() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }
}
