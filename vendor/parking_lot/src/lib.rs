//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (`lock()`/`read()`/`write()` return
//! guards directly). A poisoned std lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::sync;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
