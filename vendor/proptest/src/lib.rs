//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` test macro, `prop_assert!`/`prop_assert_eq!`,
//! integer-range and tuple strategies, `collection::vec`, and `&str`
//! regex strategies over a generation-oriented regex subset.
//!
//! Differences from real proptest, by design:
//! - **Deterministic**: cases derive from a fixed per-test seed (hash of
//!   the test name), so runs are reproducible — in keeping with the
//!   workspace determinism contract.
//! - **No shrinking**: a failing case reports its case index and message;
//!   rerunning reproduces it exactly.
//!
//! The supported regex subset (enough for every pattern in the repo):
//! literals, `.`, escapes (`\.`, `\[`, ...), classes `[a-z0-9-]` with
//! ranges and `&&[^...]` subtraction, groups `(a|bc|[x-z])`, and
//! repetition `{m,n}`, `{n}`, `?`, `*`, `+` (starred/plussed forms capped
//! at 8 repeats).

pub mod strategy;

pub use strategy::{Gen, Strategy};

/// Number of cases each property runs. Smaller than real proptest's 256
/// to keep tier-1 wall-clock reasonable; raise locally when hunting.
pub const CASES: usize = 64;

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Gen, Strategy, CASES};
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Gen, Strategy};

    /// Strategy producing `Vec`s whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let n = gen.usize_in(self.len.clone());
            (0..n).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Assert within a property; failure fails the enclosing case with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!("assertion failed: `{:?}` != `{:?}`", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err(format!("assertion failed: `{:?}` == `{:?}`", l, r));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        #[test]
        fn $name() {
            let mut gen = $crate::Gen::from_name(stringify!($name));
            for case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut gen);)+
                let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {message}",
                        stringify!($name),
                        $crate::CASES,
                    );
                }
            }
        }
    )+};
}
